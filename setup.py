"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so the
package can be installed editable in offline environments where pip cannot
set up an isolated PEP 517 build environment
(``pip install -e . --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Relational shortest path discovery over large graphs "
        "(FEM framework, SegTable index) — reproduction of Gao et al., VLDB 2011"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
