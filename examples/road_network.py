"""Road-network scenario: route planning on a grid-shaped transportation graph.

Transportation networks are another motivating application from the paper's
introduction.  This example models a city as a weighted grid, compares the
relational methods on a long diagonal route, and demonstrates the effect of
the SegTable threshold (the Figure 7(c)/(d) trade-off) on query cost.

Run with::

    python examples/road_network.py
"""

from __future__ import annotations

from repro import RelationalPathFinder, grid_graph
from repro.workloads.runner import run_workload


def main() -> None:
    rows, cols = 25, 25
    graph = grid_graph(rows, cols, weight_range=(1, 20), seed=3)
    print(f"road grid: {rows}x{cols} intersections, {graph.num_edges} road segments")

    source = 0
    target = rows * cols - 1  # opposite corner

    finder = RelationalPathFinder(graph)
    print("\ncorner-to-corner route without the SegTable index:")
    for method in ("BDJ", "BSDJ", "BBFS"):
        result = finder.shortest_path(source, target, method=method)
        print(f"  {method:>4}: length={result.distance:g} "
              f"({result.num_edges} segments, "
              f"{result.stats.expansions} expansions, "
              f"{result.stats.total_time:.3f} s)")

    print("\nBSEG with different index thresholds (paper Figure 7(c)):")
    for lthd in (5, 15, 30):
        build = finder.build_segtable(lthd=lthd)
        result = finder.shortest_path(source, target, method="BSEG")
        print(f"  lthd={lthd:<3} segments={build.encoding_number:<6} "
              f"expansions={result.stats.expansions:<4} "
              f"time={result.stats.total_time:.3f} s")

    workload = [(0, target), (cols - 1, rows * cols - cols), (12, 600)]
    aggregate = run_workload(finder, workload, "BSEG")
    print(f"\naverage over {aggregate.queries} routes with BSEG: "
          f"{aggregate.avg_time:.3f} s, {aggregate.avg_expansions:.1f} expansions")
    finder.close()


if __name__ == "__main__":
    main()
