"""Quickstart: host a graph in a PathService and find shortest paths.

Run with::

    python examples/quickstart.py

The example builds a small scale-free graph, hosts it in a
:class:`~repro.service.PathService`, constructs the SegTable index, shows
what the planner picks for ``method="auto"`` (via ``explain()``), answers a
query with every method the paper evaluates, and finishes with a batch of
repeated queries served from the service's result cache.

Migrating from the pre-service API? ``RelationalPathFinder(graph)`` becomes
``service.add_graph("name", graph)``; ``finder.shortest_path(s, t)`` becomes
``service.shortest_path(s, t, graph="name")``; the old classes still work
but emit a ``DeprecationWarning``.
"""

from __future__ import annotations

from repro import PathService, power_law_graph
from repro.workloads.queries import generate_queries


def main() -> None:
    graph = power_law_graph(1_000, edges_per_node=2, seed=7)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    with PathService() as service:
        service.add_graph("social", graph, backend="minidb",
                          buffer_capacity=256)
        build_stats = service.build_segtable("social", lthd=10)
        print(
            f"SegTable built: {build_stats.encoding_number} segments in "
            f"{build_stats.iterations} iterations ({build_stats.total_time:.2f} s)"
        )

        # Pick a pair of nodes that are at least a few hops apart.
        source, target = generate_queries(graph, 1, seed=3, min_hops=4).queries[0]

        # The planner picks the method from the graph's statistics.
        plan = service.explain(source, target, graph="social")
        print(f"\nplan for ({source} -> {target}) with method='auto':")
        print(plan.describe())

        print(f"\nshortest path from {source} to {target}, every method:")
        for method in ("DJ", "BDJ", "BSDJ", "BBFS", "BSEG", "MDJ", "MBDJ"):
            result = service.shortest_path(source, target, graph="social",
                                           method=method, use_cache=False)
            stats = result.stats
            print(
                f"  {method:>4}: distance={result.distance:<8g} "
                f"hops={result.num_edges:<3} time={stats.total_time:.3f}s "
                f"expansions={stats.expansions:<5} statements={stats.statements:<5} "
                f"visited={stats.visited_nodes}"
            )

        result = service.shortest_path(source, target, graph="social",
                                       method="BSEG")
        print(f"\npath found by BSEG: {result.path}")

        # Batch execution: repeated pairs hit the shared result cache.
        workload = generate_queries(graph, 10, seed=5).queries
        batch = service.shortest_path_many(workload * 3, graph="social")
        print(
            f"\nbatch: {batch.stats.total} queries in "
            f"{batch.stats.total_time:.3f}s — {batch.stats.cache_hits} cache "
            f"hits ({batch.stats.hit_rate:.0%}), {batch.stats.executed} executed"
        )


if __name__ == "__main__":
    main()
