"""Quickstart: load a graph into the relational engine and find shortest paths.

Run with::

    python examples/quickstart.py

The example builds a small scale-free graph, loads it into the built-in
relational engine, constructs the SegTable index and answers a few queries
with every method the paper evaluates, printing the statistics the paper
reports (expansions, statements, visited nodes).
"""

from __future__ import annotations

from repro import RelationalPathFinder, power_law_graph
from repro.workloads.queries import generate_queries


def main() -> None:
    graph = power_law_graph(1_000, edges_per_node=2, seed=7)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    finder = RelationalPathFinder(graph, backend="minidb", buffer_capacity=256)
    build_stats = finder.build_segtable(lthd=10)
    print(
        f"SegTable built: {build_stats.encoding_number} segments in "
        f"{build_stats.iterations} iterations ({build_stats.total_time:.2f} s)"
    )

    # Pick a pair of nodes that are at least a few hops apart.
    source, target = generate_queries(graph, 1, seed=3, min_hops=4).queries[0]
    print(f"\nshortest path from {source} to {target}:")
    for method in ("DJ", "BDJ", "BSDJ", "BBFS", "BSEG", "MDJ", "MBDJ"):
        result = finder.shortest_path(source, target, method=method)
        stats = result.stats
        print(
            f"  {method:>4}: distance={result.distance:<8g} "
            f"hops={result.num_edges:<3} time={stats.total_time:.3f}s "
            f"expansions={stats.expansions:<5} statements={stats.statements:<5} "
            f"visited={stats.visited_nodes}"
        )

    result = finder.shortest_path(source, target, method="BSEG")
    print(f"\npath found by BSEG: {result.path}")
    finder.close()


if __name__ == "__main__":
    main()
