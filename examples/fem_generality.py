"""FEM generality: the same framework runs other graph-search queries.

Section 3.1 of the paper argues that the FEM skeleton (select frontier,
expand, merge) covers many greedy graph-search algorithms beyond shortest
paths.  This example runs two of them on the relational engine — Prim's
minimal spanning tree and reachability — and also shows the two database
backends answering the same shortest-path query.

Run with::

    python examples/fem_generality.py
"""

from __future__ import annotations

from repro import RelationalPathFinder, power_law_graph
from repro.core.prim import prim_mst_fem
from repro.core.reachability import is_reachable_fem, reachable_set_fem


def main() -> None:
    graph = power_law_graph(300, edges_per_node=2, seed=11)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 1. Minimal spanning tree through the FEM framework.
    mst = prim_mst_fem(graph, root=0)
    print(f"\nPrim via FEM: {len(mst.edges)} tree edges, total weight "
          f"{mst.total_weight:g}, {mst.iterations} FEM iterations")

    # 2. Reachability through the FEM framework.
    reached = reachable_set_fem(graph, 0)
    print(f"reachability via FEM: {len(reached)} nodes reachable from node 0")
    print(f"is node 299 reachable from node 0? "
          f"{is_reachable_fem(graph, 0, 299)}")

    # 3. The same shortest-path query on both database backends.
    print("\nshortest path 0 -> 250 on both backends:")
    for backend in ("minidb", "sqlite"):
        with RelationalPathFinder(graph, backend=backend) as finder:
            finder.build_segtable(lthd=10)
            result = finder.shortest_path(0, 250, method="BSEG")
            print(f"  {backend:>7}: distance={result.distance:g} "
                  f"({result.stats.expansions} expansions, "
                  f"{result.stats.statements} statements)")


if __name__ == "__main__":
    main()
