"""Social-network scenario: how are two people connected?

The paper's introduction motivates shortest-path discovery with social
networks — the shortest path between two individuals reveals how their
relationship is built.  This example uses the LiveJournal stand-in, compares
the bi-directional set Dijkstra with the SegTable-accelerated search, and
shows the trade-off the paper's Table 3 reports: fewer SQL round trips at
the cost of a slightly larger visited set.

Run with::

    python examples/social_network.py
"""

from __future__ import annotations

import random

from repro import RelationalPathFinder, livejournal_standin
from repro.errors import PathNotFoundError
from repro.workloads.queries import generate_queries


def main() -> None:
    graph = livejournal_standin(num_nodes=2_000)
    print(f"social graph stand-in: {graph.num_nodes} members, "
          f"{graph.num_edges} friendship links")

    finder = RelationalPathFinder(graph)
    build = finder.build_segtable(lthd=3)
    print(f"SegTable(lthd=3): {build.encoding_number} segments, "
          f"built in {build.total_time:.2f} s")

    workload = generate_queries(graph, 5, seed=1, min_hops=3)
    totals = {"BSDJ": [0.0, 0, 0], "BSEG": [0.0, 0, 0]}
    for source, target in workload:
        print(f"\nconnection between member {source} and member {target}:")
        for method in ("BSDJ", "BSEG"):
            try:
                result = finder.shortest_path(source, target, method=method)
            except PathNotFoundError:
                print(f"  {method}: not connected")
                continue
            stats = result.stats
            totals[method][0] += stats.total_time
            totals[method][1] += stats.expansions
            totals[method][2] += stats.visited_nodes
            chain = " -> ".join(str(node) for node in result.path)
            print(f"  {method}: strength={result.distance:g} via {chain}")
            print(f"        ({stats.expansions} expansions, "
                  f"{stats.visited_nodes} people touched, "
                  f"{stats.total_time:.3f} s)")

    print("\naverages over the workload:")
    for method, (time_s, exps, visited) in totals.items():
        count = max(len(workload), 1)
        print(f"  {method}: {time_s / count:.3f} s, {exps / count:.1f} expansions, "
              f"{visited / count:.0f} visited")
    finder.close()


if __name__ == "__main__":
    main()
