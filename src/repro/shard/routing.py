"""The routing table: graph name → owning shard, derived from manifests.

The PR-3 catalog manifest was designed as "the routing table a shard
router would read", and this module is that reader.  It works purely on
catalog documents — no service is opened — so the same code backs both
:meth:`ShardRouter.open` validation and the offline
``python -m repro.catalog shards`` inspection command.

Ownership rules:

* every graph name maps to exactly one **owning** shard — the first shard
  (in spec order) whose catalog lists it;
* a name listed by several shards with the **same** content fingerprint is
  a *replica*: allowed, deterministic (first shard wins), and recorded on
  the route so operators can see the duplication;
* a name listed by several shards with **different** fingerprints is a
  *conflict* — two shards claim the same name for different graphs — and
  the table refuses to build (:class:`~repro.errors.ShardConflictError`)
  rather than guess which graph the caller means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.manifest import CatalogEntry
from repro.errors import ShardConflictError, UnknownGraphError


@dataclass(frozen=True)
class Route:
    """Where one graph lives.

    Attributes:
        graph: the graph name.
        shard: the owning shard's name.
        fingerprint: content fingerprint recorded by the owner's catalog.
        stale: the owning entry is flagged stale (attaches will refuse
            until it is rebuilt).
        replicas: other shards listing the same name with an identical
            fingerprint (deterministically *not* routed to; failover is a
            future transport concern).
    """

    graph: str
    shard: str
    fingerprint: str
    stale: bool = False
    replicas: Tuple[str, ...] = ()


@dataclass
class RoutingTable:
    """Immutable-by-convention mapping of graph name → :class:`Route`."""

    routes: Dict[str, Route] = field(default_factory=dict)

    def __contains__(self, graph: object) -> bool:
        return graph in self.routes

    def __len__(self) -> int:
        return len(self.routes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.routes)

    def graphs(self) -> Tuple[str, ...]:
        """Routed graph names, sorted."""
        return tuple(sorted(self.routes))

    def owner(self, graph: str) -> str:
        """Name of the shard owning ``graph``.

        Raises:
            UnknownGraphError: when no shard lists ``graph``.
        """
        return self.route(graph).shard

    def route(self, graph: str) -> Route:
        """The full :class:`Route` for ``graph``.

        Raises:
            UnknownGraphError: when no shard lists ``graph``.
        """
        route = self.routes.get(graph)
        if route is None:
            known = self.graphs() or "(no graphs routed)"
            raise UnknownGraphError(
                f"graph {graph!r} is not routed to any shard; "
                f"routed graphs: {known}"
            )
        return route

    def by_shard(self) -> Dict[str, Tuple[str, ...]]:
        """Shard name → sorted names of the graphs it owns."""
        grouped: Dict[str, List[str]] = {}
        for route in self.routes.values():
            grouped.setdefault(route.shard, []).append(route.graph)
        return {shard: tuple(sorted(names))
                for shard, names in sorted(grouped.items())}


def build_routing_table(
        shard_entries: Sequence[Tuple[str, Mapping[str, CatalogEntry]]],
) -> RoutingTable:
    """Build a :class:`RoutingTable` from ``(shard name, entries)`` pairs.

    ``shard_entries`` order is the ownership precedence: the first shard
    listing a name owns it.  Duplicate listings with an identical
    fingerprint become replicas on the route; differing fingerprints raise.

    Raises:
        ShardConflictError: two shards list the same graph name with
            different content fingerprints (conflicting ownership).
    """
    table = RoutingTable()
    conflicts: List[str] = []
    for shard, entries in shard_entries:
        for name, entry in sorted(entries.items()):
            existing = table.routes.get(name)
            if existing is None:
                table.routes[name] = Route(
                    graph=name, shard=shard,
                    fingerprint=entry.fingerprint, stale=entry.stale)
            elif existing.fingerprint == entry.fingerprint:
                table.routes[name] = Route(
                    graph=existing.graph, shard=existing.shard,
                    fingerprint=existing.fingerprint, stale=existing.stale,
                    replicas=existing.replicas + (shard,))
            else:
                conflicts.append(
                    f"graph {name!r}: shard {existing.shard!r} has "
                    f"{existing.fingerprint[:18]}..., shard {shard!r} has "
                    f"{entry.fingerprint[:18]}..."
                )
    if conflicts:
        raise ShardConflictError(
            "conflicting graph ownership across shards — the same name "
            "maps to different graph content, so routing would be "
            "ambiguous:\n  " + "\n  ".join(conflicts) +
            "\nremove or rebuild one of the conflicting catalog entries "
            "(python -m repro.catalog shards shows the full table)"
        )
    return table


def routing_table_from_catalogs(
        catalogs: Sequence[Tuple[str, Catalog]],
        reload: bool = False) -> RoutingTable:
    """Build the routing table straight from :class:`Catalog` objects
    (optionally re-reading each manifest from disk first)."""
    pairs: List[Tuple[str, Mapping[str, CatalogEntry]]] = []
    for shard, catalog in catalogs:
        if reload:
            catalog.reload()
        pairs.append((shard, catalog.entries()))
    return build_routing_table(pairs)


def format_routing_table(table: RoutingTable,
                         title: Optional[str] = None) -> List[str]:
    """Render ``table`` as aligned text lines (used by the CLI)."""
    if not table.routes:
        return [title or "(no graphs routed)"]
    header = (f"{'graph':<20} {'shard':<14} {'state':<6} "
              f"{'replicas':<14} fingerprint")
    lines = [header, "-" * len(header)]
    if title:
        lines.insert(0, title)
    for name in table.graphs():
        route = table.routes[name]
        replicas = ",".join(route.replicas) or "-"
        state = "stale" if route.stale else "ok"
        lines.append(
            f"{route.graph:<20} {route.shard:<14} {state:<6} "
            f"{replicas:<14} {route.fingerprint[:18]}..."
        )
    return lines


__all__ = [
    "Route",
    "RoutingTable",
    "build_routing_table",
    "format_routing_table",
    "routing_table_from_catalogs",
]
