"""Catalog-driven sharding: many services, one query surface.

The paper's SegTable makes single-graph queries fast on one node; this
package scales the *service* across nodes' worth of graphs.  A
:class:`ShardRouter` partitions named graphs over multiple
:class:`~repro.service.session.PathService` instances using each shard's
persistent-catalog manifest (PR 3) as its routing table:

* :class:`~repro.shard.spec.ShardSpec` names a shard and its catalog; the
  **transport seam** (:class:`~repro.shard.spec.ShardTransport`,
  :func:`~repro.shard.spec.register_transport`) keeps the router agnostic
  about whether a shard is in-process (today) or remote (a later PR);
* :mod:`repro.shard.routing` derives the graph → shard
  :class:`~repro.shard.routing.RoutingTable` from manifests alone,
  resolving same-fingerprint replicas deterministically and **refusing**
  same-name/different-fingerprint conflicts
  (:class:`~repro.errors.ShardConflictError`);
* :meth:`ShardRouter.shortest_path` routes transparently;
  :meth:`ShardRouter.shortest_path_many` **scatter-gathers** — slices a
  mixed-graph batch by owner, fans slices out concurrently through each
  shard's executor/pool, and merges answers in input order with per-shard
  :class:`~repro.core.stats.BatchStats` rolled into a
  :class:`~repro.shard.stats.RouterStats`;
* :meth:`ShardRouter.move` rebalances: the database file (SegTable
  included) is snapshotted into the target catalog via the store
  relocation capability and warm-attached with zero index rebuilds.

``python -m repro.catalog shards --catalog A --catalog B`` prints the
routing table offline.  See ``docs/sharding.md``.
"""

from repro.shard.router import ScatterResult, ShardRouter
from repro.shard.routing import (
    Route,
    RoutingTable,
    build_routing_table,
    format_routing_table,
    routing_table_from_catalogs,
)
from repro.shard.spec import (
    INPROCESS_TRANSPORT,
    InProcessTransport,
    ShardSpec,
    ShardTransport,
    available_transports,
    default_shard_name,
    register_transport,
)
from repro.shard.stats import RouterStats

__all__ = [
    "INPROCESS_TRANSPORT",
    "InProcessTransport",
    "Route",
    "RouterStats",
    "RoutingTable",
    "ScatterResult",
    "ShardRouter",
    "ShardSpec",
    "ShardTransport",
    "available_transports",
    "build_routing_table",
    "default_shard_name",
    "format_routing_table",
    "register_transport",
    "routing_table_from_catalogs",
]
