"""Catalog-driven sharding: many services, one query surface.

The paper's SegTable makes single-graph queries fast on one node; this
package scales the *service* across nodes' worth of graphs.  A
:class:`ShardRouter` partitions named graphs over multiple shard services
using each shard's persistent-catalog manifest (PR 3) as its routing
table:

* :class:`~repro.shard.spec.ShardSpec` names a shard and its catalog; the
  **transport seam** (:class:`~repro.shard.spec.ShardTransport`,
  :func:`~repro.shard.spec.register_transport`) keeps the router agnostic
  about whether a shard is in-process (``"inprocess"``) or networked
  (``"remote"`` — registered by :mod:`repro.serve`, speaking the serve
  wire protocol to a ``python -m repro.serve`` process);
* :mod:`repro.shard.routing` derives the graph → shard
  :class:`~repro.shard.routing.RoutingTable` from manifests alone,
  resolving same-fingerprint replicas deterministically and **refusing**
  same-name/different-fingerprint conflicts
  (:class:`~repro.errors.ShardConflictError`);
* :meth:`ShardRouter.shortest_path` routes transparently;
  :meth:`ShardRouter.shortest_path_many` **scatter-gathers** — slices a
  mixed-graph batch by owner, fans slices out concurrently through each
  shard's transport, and merges answers in input order with per-shard
  :class:`~repro.core.stats.BatchStats` rolled into a
  :class:`~repro.shard.stats.RouterStats`;
* identical-fingerprint **replicas** are live fallbacks: a shard failing
  at the transport level is routed around (bounded retry, exponential
  cooldown), with per-replica error accounting on the batch's
  ``RouterStats`` and the router's
  :meth:`~repro.shard.router.ShardRouter.shard_health`;
* :meth:`ShardRouter.move` rebalances: the database file (SegTable
  included) is snapshotted into the target catalog via the store
  relocation capability and warm-attached with zero index rebuilds —
  or, when the target already replica-hosts the graph, ownership just
  flips with zero bytes copied.

``python -m repro.catalog shards --catalog A --catalog B`` prints the
routing table offline.  See ``docs/sharding.md`` and ``docs/serving.md``.
"""

from repro.shard.router import (
    ScatterResult,
    ShardHealth,
    ShardRouter,
)
from repro.shard.routing import (
    Route,
    RoutingTable,
    build_routing_table,
    format_routing_table,
    routing_table_from_catalogs,
)
from repro.shard.spec import (
    INPROCESS_TRANSPORT,
    REMOTE_TRANSPORT,
    InProcessTransport,
    ShardSpec,
    ShardTransport,
    available_transports,
    default_shard_name,
    is_shard_url,
    register_transport,
)
from repro.shard.stats import RouterStats

__all__ = [
    "INPROCESS_TRANSPORT",
    "REMOTE_TRANSPORT",
    "InProcessTransport",
    "Route",
    "RouterStats",
    "RoutingTable",
    "ScatterResult",
    "ShardHealth",
    "ShardRouter",
    "ShardSpec",
    "ShardTransport",
    "available_transports",
    "build_routing_table",
    "default_shard_name",
    "format_routing_table",
    "is_shard_url",
    "register_transport",
    "routing_table_from_catalogs",
]
