"""Aggregate statistics of one scatter-gather batch.

Each shard executes its slice of the batch as an ordinary
:meth:`PathService.shortest_path_many` call and reports
:class:`~repro.core.stats.BatchStats`; :class:`RouterStats` keeps every
per-shard record *and* the rollup, because the two answer different
questions — "which shard is slow?" needs the per-shard view, "what did the
batch cost?" needs the merged one.

With replicated graphs the router also retries a failed slice on an
identical-fingerprint replica; the per-replica error accounting
(``per_shard_errors``, ``failovers``) lives here so one batch's answer
carries its own failover story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.stats import BatchStats
from repro.obs.schema import with_deprecated_aliases


@dataclass
class RouterStats:
    """Counters of one :meth:`ShardRouter.shortest_path_many` call.

    Attributes:
        total: number of queries in the batch.
        shards_touched: how many shards received a non-empty slice.
        total_time: wall-clock seconds of the whole scatter-gather —
            shards run concurrently, so this is normally well below the
            sum of per-shard ``total_time``.
        per_shard: shard name → that shard's :class:`BatchStats`.  A shard
            answering several slices (failover rounds) reports one merged
            record.
        per_shard_errors: shard name → transport failures
            (:class:`~repro.errors.ShardUnavailableError`) that shard
            produced during this batch, whether or not a replica later
            rescued the affected queries.
        failovers: queries re-routed to a replica after their assigned
            shard failed (counted once per query per re-route).
        shared_cache_hits: queries answered from the router's opt-in
            cross-shard result cache without touching any shard.
        not_found: unreachable pairs across all shards.
    """

    total: int = 0
    shards_touched: int = 0
    total_time: float = 0.0
    per_shard: Dict[str, BatchStats] = field(default_factory=dict)
    per_shard_errors: Dict[str, int] = field(default_factory=dict)
    failovers: int = 0
    shared_cache_hits: int = 0

    def record(self, shard: str, stats: BatchStats) -> None:
        """Fold one shard's batch statistics in (merging with any earlier
        slice the same shard answered this batch)."""
        existing = self.per_shard.get(shard)
        if existing is None:
            self.per_shard[shard] = stats
        else:
            existing.merge(stats)
        self.shards_touched = len(self.per_shard)

    def record_error(self, shard: str) -> None:
        """Count one transport failure against ``shard``."""
        self.per_shard_errors[shard] = self.per_shard_errors.get(shard, 0) + 1

    def rollup(self) -> BatchStats:
        """Merge every per-shard record into one fresh
        :class:`BatchStats` (see :meth:`BatchStats.merge` for the
        summation semantics); its ``total_time`` is replaced by the
        router's scatter-gather wall clock."""
        merged = BatchStats()
        for stats in self.per_shard.values():
            merged.merge(stats)
        merged.total_time = self.total_time
        return merged

    @property
    def executed(self) -> int:
        """Queries that actually ran against a store, across shards."""
        return sum(stats.executed for stats in self.per_shard.values())

    @property
    def cache_hits(self) -> int:
        """Result-cache hits across shards (shard-local caches only; the
        router's shared cache reports :attr:`shared_cache_hits`)."""
        return sum(stats.cache_hits for stats in self.per_shard.values())

    @property
    def not_found(self) -> int:
        """Unreachable pairs across shards."""
        return sum(stats.not_found for stats in self.per_shard.values())

    @property
    def transport_errors(self) -> int:
        """Transport failures across shards during this batch."""
        return sum(self.per_shard_errors.values())

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict summary (used by the scatter benchmark's JSON).

        Durations use the canonical ``_s``-suffixed keys
        (``total_time_s``); the historical ``total_time`` key is kept as
        a deprecated alias for one release (see
        :data:`repro.obs.schema.DEPRECATED_STATS_ALIASES`).
        """
        return with_deprecated_aliases({
            "total": self.total,
            "shards_touched": self.shards_touched,
            "total_time_s": self.total_time,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "shared_cache_hits": self.shared_cache_hits,
            "not_found": self.not_found,
            "failovers": self.failovers,
            "transport_errors": self.transport_errors,
            "per_shard_errors": dict(sorted(self.per_shard_errors.items())),
            "per_shard": {shard: stats.as_dict()
                          for shard, stats in sorted(self.per_shard.items())},
            "rollup": self.rollup().as_dict(),
        }, "router")


__all__ = ["RouterStats"]
