"""The :class:`ShardRouter`: one query surface over many shards.

A router partitions named graphs across multiple
:class:`~repro.service.session.PathService` instances — the *shards* —
using each shard's catalog manifest as its routing table::

    router = ShardRouter.open(catalog_paths=["catalogs/a", "catalogs/b"])
    router.shortest_path(0, 42, graph="social")          # routed to its owner
    scatter = router.shortest_path_many(
        [("social", 0, 42), ("roads", 3, 99)], concurrency=4)

Single queries route transparently to the owning shard.  Batches are
**scatter-gather**: the router splits a mixed-graph batch by owning shard,
fans the slices out concurrently — each through the shard service's
existing executor/pool machinery — and merges the answers back in input
order, with every shard's :class:`~repro.core.stats.BatchStats` kept (and
rolled up) in a :class:`~repro.shard.stats.RouterStats`.

Rebalancing is :meth:`ShardRouter.move`: the graph's database file — with
its already-built SegTable inside — is snapshotted into the target shard's
catalog via the store's relocation capability, the two manifests are
rewritten (each write is atomic; the ordering makes a crash mid-move
resolve as a benign replica, never a conflict), and the target shard
warm-attaches the graph with **zero** SegTable reconstructions.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.store.registry import create_store
from repro.errors import (
    PathNotFoundError,
    ShardError,
    UnknownShardError,
)
from repro.service.batch import execute_batch, normalize_queries
from repro.service.planner import QueryPlan, QuerySpec
from repro.shard.routing import (
    Route,
    RoutingTable,
    routing_table_from_catalogs,
)
from repro.shard.spec import ShardSpec, ShardTransport, default_shard_name
from repro.shard.stats import RouterStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.batch import BatchResult
    from repro.service.costmodel import CostProfile
    from repro.service.session import BatchQuery, PathService

DEFAULT_GRAPH = "default"


@dataclass
class ScatterResult:
    """Results of one scatter-gather batch, merged back in input order.

    Mirrors :class:`~repro.service.batch.BatchResult` (iteration,
    indexing, ``distances()``, ``found()``) and adds the per-query shard
    assignment plus router-level statistics.

    Attributes:
        specs: the normalized query specs, in input order.
        results: one entry per spec (``None`` marks an unreachable pair).
        from_cache: per spec, whether the owning shard answered from its
            result cache (single-flight piggybacks included).
        shard_of: per spec, the shard that answered it.
        stats: the :class:`RouterStats` of this scatter-gather.
    """

    specs: List[QuerySpec] = field(default_factory=list)
    results: List[Optional[PathResult]] = field(default_factory=list)
    from_cache: List[bool] = field(default_factory=list)
    shard_of: List[str] = field(default_factory=list)
    stats: RouterStats = field(default_factory=RouterStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Optional[PathResult]:
        return self.results[index]

    def distances(self) -> List[Optional[float]]:
        """Distances in input order (``None`` for unreachable pairs)."""
        return [None if result is None else result.distance
                for result in self.results]

    def found(self) -> List[PathResult]:
        """Only the successful results (input order preserved)."""
        return [result for result in self.results if result is not None]


class ShardRouter:
    """Routes queries over named graphs to the shards that own them.

    Construct through :meth:`open`.  The router owns its shard services:
    :meth:`close` (or the context manager) shuts every one of them down.
    """

    def __init__(self, transports: Sequence[ShardTransport],
                 table: RoutingTable) -> None:
        self._transports: Dict[str, ShardTransport] = {
            transport.spec.name: transport for transport in transports}
        self._table = table
        self._closed = False

    # -- construction ------------------------------------------------------------

    @classmethod
    def open(cls, catalog_paths: Optional[Sequence[str]] = None, *,
             specs: Optional[Sequence[ShardSpec]] = None,
             names: Optional[Sequence[str]] = None,
             strict: bool = True,
             stamp_ownership: bool = True,
             **service_options: object) -> "ShardRouter":
        """Open one shard per catalog and build the routing table.

        Args:
            catalog_paths: one catalog directory per shard; each shard's
                service is warm-started from it (``PathService.open``).
                Shard names default to the catalog directories' basenames.
            specs: full :class:`ShardSpec` objects instead of
                ``catalog_paths`` (exactly one of the two is required).
            names: explicit shard names matching ``catalog_paths``
                positionally — required when two catalog directories share
                a basename.
            strict: forwarded to every shard's warm start; ``False`` skips
                entries that fail to attach instead of raising.
            stamp_ownership: write each owned entry's shard name into its
                manifest (the durable ownership record).  Stamping is
                skipped when the record already matches.
            **service_options: forwarded to every shard service
                constructor (cache knobs, ``default_backend``, ...).

        Raises:
            ShardError: no shards, duplicate shard names, or both/neither
                of ``catalog_paths`` and ``specs`` given.
            ShardConflictError: two shards list the same graph name with
                different content fingerprints.
            PersistentCatalogError: a shard catalog failed to load (or, in
                strict mode, an entry failed to attach).
        """
        if (catalog_paths is None) == (specs is None):
            raise ShardError(
                "pass exactly one of catalog_paths=[...] or specs=[...]"
            )
        if specs is None:
            assert catalog_paths is not None
            if names is None:
                names = [default_shard_name(path) for path in catalog_paths]
            elif len(names) != len(catalog_paths):
                raise ShardError(
                    f"got {len(names)} shard names for "
                    f"{len(catalog_paths)} catalog paths"
                )
            specs = [ShardSpec(name=name, catalog_path=path,
                               service_options=dict(service_options))
                     for name, path in zip(names, catalog_paths)]
        else:
            if names is not None:
                raise ShardError(
                    "names=[...] applies to catalog_paths; set each "
                    "ShardSpec's name when opening from specs"
                )
            if service_options:
                raise ShardError(
                    "service options go inside each "
                    "ShardSpec.service_options when opening from specs"
                )
        if not specs:
            raise ShardError("a shard router needs at least one shard")
        seen: Dict[str, str] = {}
        for spec in specs:
            if spec.name in seen:
                raise ShardError(
                    f"duplicate shard name {spec.name!r} (catalogs "
                    f"{seen[spec.name]!r} and {spec.catalog_path!r}); pass "
                    f"names=[...] to disambiguate"
                )
            seen[spec.name] = spec.catalog_path
        transports: List[ShardTransport] = []
        try:
            for spec in specs:
                transports.append(spec.open(strict=strict))
            table = routing_table_from_catalogs(
                [(transport.spec.name, transport.service.catalog)
                 for transport in transports])
            # Routes must point at graphs the owning service actually
            # hosts: with strict=False a warm start skips stale/missing
            # entries, and routing to a skipped entry would raise a
            # misleading "not hosted" error mid-batch instead of the
            # clean "not routed" one up front.  (With strict=True every
            # entry attached or the open already raised, so this drops
            # nothing.)
            for name, route in list(table.routes.items()):
                owner_service = next(
                    transport.service for transport in transports
                    if transport.spec.name == route.shard)
                if name not in owner_service.graphs():
                    del table.routes[name]
        except BaseException:
            for transport in transports:
                transport.close()
            raise
        router = cls(transports, table)
        if stamp_ownership:
            router._stamp_ownership()
        return router

    def _stamp_ownership(self) -> None:
        """Record each route's owner in the owning catalog's manifest (a
        no-op per entry when the record is already correct)."""
        for route in self._table.routes.values():
            catalog = self._transports[route.shard].service.catalog
            assert catalog is not None  # shard services are catalog-bound
            catalog.set_shard(route.graph, route.shard)

    # -- topology ----------------------------------------------------------------

    def shards(self) -> Tuple[str, ...]:
        """Shard names, in spec order."""
        return tuple(self._transports)

    def graphs(self) -> Tuple[str, ...]:
        """All routed graph names, sorted."""
        return self._table.graphs()

    def owner(self, graph: str) -> str:
        """Name of the shard owning ``graph``."""
        return self._table.owner(graph)

    def routing_table(self) -> RoutingTable:
        """The live routing table (treat as read-only)."""
        return self._table

    def service(self, shard: str) -> "PathService":
        """The :class:`PathService` behind one shard (for inspection —
        ``pool_stats``, ``cache_info`` — not for bypassing the router)."""
        return self._shard(shard).service

    # -- queries -----------------------------------------------------------------

    def shortest_path(self, source: int, target: int, graph: str,
                      method: str = "auto", sql_style: str = NSQL,
                      max_iterations: Optional[int] = None,
                      use_cache: bool = True) -> PathResult:
        """Answer one query, routed transparently to ``graph``'s owner.

        Raises:
            UnknownGraphError: when no shard owns ``graph``.
            (plus everything :meth:`PathService.shortest_path` raises)
        """
        return self._service_for(graph).shortest_path(
            source, target, graph=graph, method=method,
            sql_style=sql_style, max_iterations=max_iterations,
            use_cache=use_cache)

    def explain(self, source: int, target: int, graph: str,
                method: str = "auto", sql_style: str = NSQL) -> QueryPlan:
        """The plan ``graph``'s owning shard would execute."""
        return self._service_for(graph).explain(
            source, target, graph=graph, method=method, sql_style=sql_style)

    def shortest_path_many(self, queries: Sequence["BatchQuery"],
                           graph: Optional[str] = None,
                           method: str = "auto", sql_style: str = NSQL,
                           raise_on_unreachable: bool = False,
                           concurrency: int = 1,
                           checkout_timeout: Optional[float] = None
                           ) -> ScatterResult:
        """Scatter a mixed-graph batch across shards and gather in order.

        The batch is normalized and validated up front (unknown graphs,
        unknown nodes, and malformed specs fail before any shard does any
        work), split by owning shard, and each non-empty slice runs as one
        ordinary :meth:`PathService.shortest_path_many` call on its shard
        — concurrently across shards, and with ``concurrency=N`` worker
        threads *inside* each shard on top.  ``results[i]`` always answers
        ``queries[i]``.

        Args:
            queries: the batch, in any of the forms
                :func:`~repro.service.batch.normalize_queries` accepts.
            graph: default graph for queries that do not name one.
            method / sql_style: batch-level defaults, as in the service.
            raise_on_unreachable: after the gather, raise
                :class:`PathNotFoundError` for the unreachable pair with
                the smallest input index instead of recording ``None``.
            concurrency: per-shard worker-thread count (``1`` = each shard
                executes its slice serially).
            checkout_timeout: per-query bound on waiting for a pooled
                store connection inside each shard.

        Raises:
            UnknownGraphError, NodeNotFoundError, InvalidQueryError: on
                the first malformed query, before anything executes.
            PathNotFoundError: with ``raise_on_unreachable=True``, the
                deterministic first (by input index) unreachable pair.
        """
        start = time.perf_counter()
        specs = normalize_queries(queries, graph=graph or DEFAULT_GRAPH,
                                  method=method, sql_style=sql_style)
        scatter = ScatterResult(
            specs=specs,
            results=[None] * len(specs),
            from_cache=[False] * len(specs),
            shard_of=[""] * len(specs),
            stats=RouterStats(total=len(specs)),
        )
        # Fail-fast validation on the router thread: resolve every owner
        # and plan every spec before a single shard executes anything —
        # the same "malformed queries fail before any work" contract the
        # serial batch gives.  The plans are handed to each slice so the
        # shards do not plan the batch a second time.
        groups: Dict[str, List[int]] = {}
        plans: List[QueryPlan] = []
        for index, spec in enumerate(specs):
            shard = self._table.owner(spec.graph)
            service = self._shard(shard).service
            plans.append(service.plan(spec))
            scatter.shard_of[index] = shard
            groups.setdefault(shard, []).append(index)
        if not groups:
            scatter.stats.total_time = time.perf_counter() - start
            return scatter

        def run_slice(shard: str, indices: List[int]) -> "BatchResult":
            service = self._shard(shard).service
            return execute_batch(
                service,
                [specs[i] for i in indices],
                raise_on_unreachable=False,
                concurrency=concurrency,
                checkout_timeout=checkout_timeout,
                plans=[plans[i] for i in indices])

        errors: Dict[int, BaseException] = {}
        with ThreadPoolExecutor(
                max_workers=len(groups),
                thread_name_prefix="repro-router") as pool:
            futures = {pool.submit(run_slice, shard, indices):
                       (shard, indices)
                       for shard, indices in groups.items()}
            wait(list(futures))
        for future, (shard, indices) in futures.items():
            try:
                batch = future.result()
            except BaseException as exc:
                # Surfaced deterministically below: the failing shard
                # holding the smallest input index wins.
                errors[indices[0]] = exc
                continue
            scatter.stats.record(shard, batch.stats)
            for local, global_index in enumerate(indices):
                scatter.results[global_index] = batch.results[local]
                scatter.from_cache[global_index] = batch.from_cache[local]
        if errors:
            raise errors[min(errors)]
        scatter.stats.total_time = time.perf_counter() - start
        if raise_on_unreachable:
            for index, result in enumerate(scatter.results):
                if result is None:
                    spec = specs[index]
                    raise PathNotFoundError(
                        f"no path from {spec.source} to {spec.target} in "
                        f"graph {spec.graph!r} (batch index {index}, shard "
                        f"{scatter.shard_of[index]!r})"
                    )
        return scatter

    # -- planner calibration -----------------------------------------------------

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True, **probe_options: object
                  ) -> Dict[str, Dict[str, "CostProfile"]]:
        """Calibrate every shard's planner cost model.

        Each shard runs its own probe (shards may sit on different
        hardware or host graphs on different backends) and — with
        ``persist=True`` — records the profile in its own catalog, so the
        next :meth:`open` warm-starts every shard with a calibrated
        planner and zero re-probing.

        Returns ``{shard: {backend: CostProfile}}``.
        """
        return {
            name: transport.service.calibrate(backend, persist=persist,
                                              **probe_options)
            for name, transport in self._transports.items()
        }

    # -- rebalancing -------------------------------------------------------------

    def move(self, graph: str, shard: str) -> Route:
        """Rebalance: hand ``graph`` (and its built SegTable) to ``shard``.

        The graph's database file is snapshotted into the target shard's
        catalog directory through the store's relocation capability
        (:meth:`GraphStore.export_database` — for SQLite, the online
        backup API), so the SegTable inside migrates as-is.  Then the
        manifests are rewritten: the entry is written into the target
        manifest *first* and removed from the source manifest second —
        each write is atomic (temp file + rename), and a crash between the
        two leaves the graph listed by both shards with identical
        fingerprints, which the next :meth:`open` resolves as a benign
        replica rather than a conflict.  Finally the target shard
        warm-attaches the graph — adopting the migrated SegTable, never
        rebuilding it — and the routing table is updated in place.

        Moving a graph is not concurrency-safe against in-flight batches
        that touch it: quiesce those first.

        Args:
            graph: a routed graph name.
            shard: the receiving shard.  Moving a graph onto its current
                owner is a no-op.

        Returns:
            The graph's new :class:`Route`.

        Raises:
            UnknownGraphError: ``graph`` is not routed.
            UnknownShardError: ``shard`` is not part of this router.
            ShardError: the entry is stale, the backend cannot relocate
                its database, or the target already holds a database file
                of the same name.
        """
        route = self._table.route(graph)
        target = self._shard(shard)
        if route.shard == shard:
            return route
        source = self._shard(route.shard)
        source_catalog = source.service.catalog
        target_catalog = target.service.catalog
        assert source_catalog is not None and target_catalog is not None
        entry = source_catalog.get(graph)
        if entry.stale:
            raise ShardError(
                f"cannot move stale graph {graph!r}; rebuild it first "
                f"(python -m repro.catalog rebuild --catalog "
                f"{source_catalog.path} {graph})"
            )
        source_db = source_catalog.resolve_db_path(entry)
        # A relative db_path lives inside the source catalog directory and
        # must physically move; an absolute one is shared storage both
        # shards can reach, so only the manifests change.
        relocating = not os.path.isabs(entry.db_path)
        if relocating:
            dest_db = os.path.join(target_catalog.path,
                                   os.path.basename(entry.db_path))
            if os.path.exists(dest_db):
                raise ShardError(
                    f"target shard {shard!r} already holds a database "
                    f"file named {os.path.basename(entry.db_path)!r}; "
                    f"remove it (or gc the target catalog) before moving"
                )
            # Snapshot BEFORE detaching anything: the backup runs safely
            # under the source service's open readers, so a capability
            # refusal or a failed copy aborts the move with the graph
            # still fully hosted and routed on its current shard.
            store = create_store(entry.backend, path=source_db,
                                 buffer_capacity=entry.buffer_capacity)
            try:
                if not store.supports_relocation():
                    raise ShardError(
                        f"backend {entry.backend!r} cannot relocate its "
                        f"database; graph {graph!r} stays on shard "
                        f"{route.shard!r}"
                    )
                store.export_database(dest_db)
            finally:
                store.close()
        else:
            dest_db = entry.db_path
        # Only now detach from the source service: its pool connections
        # hold the file open, and a moved graph must stop being
        # answerable by the old owner.
        if graph in source.service.graphs():
            source.service.drop_graph(graph)
        target_catalog.put(entry.touched(
            db_path=target_catalog.normalize_db_path(dest_db),
            shard=shard))
        source_catalog.remove(graph)
        target.service.attach_graph(graph)
        if relocating:
            os.remove(source_db)
        moved = Route(graph=graph, shard=shard,
                      fingerprint=entry.fingerprint,
                      stale=False, replicas=route.replicas)
        self._table.routes[graph] = moved
        return moved

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every shard service."""
        if self._closed:
            return
        self._closed = True
        for transport in self._transports.values():
            transport.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _shard(self, name: str) -> ShardTransport:
        transport = self._transports.get(name)
        if transport is None:
            raise UnknownShardError(
                f"shard {name!r} is not part of this router; shards: "
                f"{tuple(self._transports)}"
            )
        return transport

    def _service_for(self, graph: str) -> "PathService":
        return self._shard(self._table.owner(graph)).service


__all__ = ["DEFAULT_GRAPH", "ScatterResult", "ShardRouter"]
