"""The :class:`ShardRouter`: one query surface over many shards.

A router partitions named graphs across multiple shard services — local
(``"inprocess"``) or networked (``"remote"``, see :mod:`repro.serve`) —
using each shard's catalog manifest as its routing table::

    router = ShardRouter.open(
        catalog_paths=["catalogs/a", "http://10.0.0.7:8155"])
    router.shortest_path(0, 42, graph="social")          # routed to its owner
    scatter = router.shortest_path_many(
        [("social", 0, 42), ("roads", 3, 99)], concurrency=4)

Single queries route transparently to the owning shard.  Batches are
**scatter-gather**: the router splits a mixed-graph batch by owning shard,
fans the slices out concurrently — each through the shard's transport, and
on the shard through the service's existing executor/pool machinery — and
merges the answers back in input order, with every shard's
:class:`~repro.core.stats.BatchStats` kept (and rolled up) in a
:class:`~repro.shard.stats.RouterStats`.

**Failover.**  Identical-fingerprint replicas (recorded on each
:class:`~repro.shard.routing.Route`) are live fallbacks: when a shard
fails at the transport level (:class:`~repro.errors.ShardUnavailableError`
— connection refused, timeout, died mid-request), the router marks it
down for an exponentially growing cooldown and re-routes the affected
queries to the next replica; because replicas host byte-identical graph
content, the failover answer is bit-identical to the primary's.  Query
errors (unknown graph, unreachable pair, ...) are *not* failover events —
they propagate as themselves, as every replica would answer the same.

**Shared cross-shard cache.**  Opt-in (``shared_cache_size > 0``): a
router-level result cache keyed by *(graph fingerprint, query)* — not
shard name — so a pair answered by any replica is a hit for every other,
and two different graphs can never collide on a name.

Rebalancing is :meth:`ShardRouter.move`: the graph's database file — with
its already-built SegTable inside — is snapshotted into the target shard's
catalog via the store's relocation capability, the two manifests are
rewritten (each write is atomic; the ordering makes a crash mid-move
resolve as a benign replica, never a conflict), and the target shard
warm-attaches the graph with **zero** SegTable reconstructions.  Moving a
graph onto a shard that already replica-hosts it at the same fingerprint
skips the data copy entirely and just flips ownership.
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.core.deadline import (
    check_deadline,
    deadline_from_timeout,
    remaining_budget,
)
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.store.registry import create_store, is_dsn
from repro.errors import (
    PathNotFoundError,
    ReproError,
    ShardError,
    ShardUnavailableError,
    UnknownShardError,
)
from repro.obs import MetricsRegistry, Trace, Tracer, timer
from repro.obs.schema import (
    METRIC_BREAKER_STATE,
    METRIC_FAILOVERS,
    METRIC_ROUTER_QUERIES,
    METRIC_SHARD_ERRORS,
    METRIC_SHARD_LATENCY,
    METRIC_SHARED_CACHE_HITS,
)
from repro.service.batch import normalize_queries
from repro.service.cache import ResultCache
from repro.service.planner import QueryPlan, QuerySpec
from repro.shard.routing import Route, RoutingTable, build_routing_table
from repro.shard.spec import (
    REMOTE_TRANSPORT,
    ShardSpec,
    ShardTransport,
    default_shard_name,
    is_shard_url,
)
from repro.shard.stats import RouterStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.aio import AsyncShardRouter
    from repro.service.batch import BatchResult
    from repro.service.costmodel import CostProfile
    from repro.service.session import BatchQuery, PathService

DEFAULT_GRAPH = "default"

FAILOVER_COOLDOWN = 0.25
"""Base seconds a shard is considered down after its first transport
failure; doubles per consecutive failure up to
:data:`FAILOVER_COOLDOWN_MAX`, with *equal jitter* (a uniform draw from
``[cooldown/2, cooldown]``) so replicas of a failed shard do not all
re-probe it on the same instant."""

FAILOVER_COOLDOWN_MAX = 30.0

BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"

_BREAKER_GAUGE = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0,
                  BREAKER_OPEN: 2.0}
"""Numeric encoding of :data:`METRIC_BREAKER_STATE` (0/1/2)."""


@dataclass
class ShardHealth:
    """The router's view of one shard's transport health.

    The three fields double as a per-shard **circuit breaker**:
    *closed* (no recent failures — route normally), *open* (inside the
    failure cooldown — routed around), *half-open* (cooldown elapsed
    after failures — the next query is the probe; success re-closes the
    breaker, failure re-opens it with a doubled cooldown).

    Attributes:
        shard: the shard's name.
        errors: cumulative transport failures over the router's lifetime.
        consecutive_failures: failures since the last success; drives the
            exponential cooldown.
        down_until: monotonic deadline before which the shard is routed
            around (still tried as a last resort when every replica of a
            graph is down).
        last_error: message of the most recent transport failure.
    """

    shard: str
    errors: int = 0
    consecutive_failures: int = 0
    down_until: float = 0.0
    last_error: str = ""

    def is_down(self, now: Optional[float] = None) -> bool:
        """Whether the shard is inside its failure cooldown."""
        return (time.monotonic() if now is None else now) < self.down_until

    def breaker_state(self, now: Optional[float] = None) -> str:
        """The shard's circuit-breaker state (``"closed"`` /
        ``"half_open"`` / ``"open"``), derived from the failure
        accounting — open while cooling down, half-open once the cooldown
        elapsed with the failure streak unbroken."""
        if self.is_down(now):
            return BREAKER_OPEN
        if self.consecutive_failures > 0:
            return BREAKER_HALF_OPEN
        return BREAKER_CLOSED

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "errors": self.errors,
            "consecutive_failures": self.consecutive_failures,
            "down": self.is_down(),
            "breaker": self.breaker_state(),
            "last_error": self.last_error,
        }


@dataclass
class ScatterResult:
    """Results of one scatter-gather batch, merged back in input order.

    Mirrors :class:`~repro.service.batch.BatchResult` (iteration,
    indexing, ``distances()``, ``found()``) and adds the per-query shard
    assignment plus router-level statistics.

    Attributes:
        specs: the normalized query specs, in input order.
        results: one entry per spec (``None`` marks an unreachable pair).
        from_cache: per spec, whether the answer came from a cache — the
            owning shard's result cache (single-flight piggybacks
            included) or the router's shared cross-shard cache.
        shard_of: per spec, the shard that answered it (the owner, or the
            replica that took over on failover).
        errors: per spec, the typed per-query failure (a budgeted query's
            :class:`~repro.errors.DeadlineExceededError`) or ``None`` —
            positional, so one expired sibling never poisons the batch.
        stats: the :class:`RouterStats` of this scatter-gather.
        trace: the batch's :class:`~repro.obs.Trace` — one recorded span
            per slice run (shard, query count, wall seconds), across
            local and remote shards alike; ``None`` with tracing off.
            Per-query span trees ride on the individual results.
    """

    specs: List[QuerySpec] = field(default_factory=list)
    results: List[Optional[PathResult]] = field(default_factory=list)
    from_cache: List[bool] = field(default_factory=list)
    shard_of: List[str] = field(default_factory=list)
    errors: List[Optional[ReproError]] = field(default_factory=list)
    stats: RouterStats = field(default_factory=RouterStats)
    trace: Optional[Trace] = field(default=None, compare=False, repr=False)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Optional[PathResult]:
        return self.results[index]

    def distances(self) -> List[Optional[float]]:
        """Distances in input order (``None`` for unreachable pairs)."""
        return [None if result is None else result.distance
                for result in self.results]

    def found(self) -> List[PathResult]:
        """Only the successful results (input order preserved)."""
        return [result for result in self.results if result is not None]


class ShardRouter:
    """Routes queries over named graphs to the shards that own them.

    Construct through :meth:`open`.  The router owns its shard transports:
    :meth:`close` (or the context manager) shuts every one of them down
    (closing a remote transport does not stop its server).
    """

    def __init__(self, transports: Sequence[ShardTransport],
                 table: RoutingTable, *,
                 shared_cache_size: int = 0,
                 shared_cache_ttl: Optional[float] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracing: bool = True,
                 cooldown_seed: Optional[int] = None) -> None:
        self._transports: Dict[str, ShardTransport] = {
            transport.spec.name: transport for transport in transports}
        self._table = table
        self._closed = False
        # One registry per router; :meth:`open` shares it with every
        # in-process shard service, so a co-located shard server's
        # ``/metrics`` exports router counters (failovers, per-shard
        # latency) next to the service's own.
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = Tracer(enabled=tracing)
        self._health: Dict[str, ShardHealth] = {
            name: ShardHealth(name) for name in self._transports}
        self._health_lock = threading.Lock()
        self._shared_cache: Optional[ResultCache] = (
            None if shared_cache_size <= 0 else ResultCache(
                capacity=shared_cache_size, ttl_seconds=shared_cache_ttl,
                negative_capacity=shared_cache_size,
                registry=self._registry, name="shared"))
        # Cooldown jitter RNG: seedable so tests replay the exact same
        # failover schedule; guarded by _health_lock (drawn only inside
        # _mark_failure).
        self._cooldown_rng = random.Random(cooldown_seed)
        self._move_markers: Dict[str, int] = {"moves": 0, "replica_noops": 0}
        for name in self._transports:
            self._set_breaker(name, BREAKER_CLOSED)

    # -- construction ------------------------------------------------------------

    @classmethod
    def open(cls, catalog_paths: Optional[Sequence[str]] = None, *,
             specs: Optional[Sequence[ShardSpec]] = None,
             names: Optional[Sequence[str]] = None,
             strict: bool = True,
             stamp_ownership: bool = True,
             shared_cache_size: int = 0,
             shared_cache_ttl: Optional[float] = None,
             remote_timeout: Optional[float] = None,
             remote_retries: Optional[int] = None,
             registry: Optional[MetricsRegistry] = None,
             tracing: bool = True,
             cooldown_seed: Optional[int] = None,
             **service_options: object) -> "ShardRouter":
        """Open one shard per catalog (or URL) and build the routing table.

        Args:
            catalog_paths: one entry per shard — a catalog directory
                (warm-started in this process) or an ``http(s)://`` shard
                server URL (attached over the ``"remote"`` transport).
                Shard names default to the directory basename or the
                server's ``host:port``.
            specs: full :class:`ShardSpec` objects instead of
                ``catalog_paths`` (exactly one of the two is required).
            names: explicit shard names matching ``catalog_paths``
                positionally — required when two catalog directories share
                a basename.
            strict: forwarded to every local shard's warm start; ``False``
                skips entries that fail to attach instead of raising.
                (Remote shards made that choice when their server
                started.)
            stamp_ownership: write each owned entry's shard name into its
                manifest (the durable ownership record).  Stamping is
                skipped when the record already matches.
            shared_cache_size: capacity of the opt-in router-level result
                cache shared across shards, keyed by graph *fingerprint*
                so replicas share entries; ``0`` (the default) disables
                it.
            shared_cache_ttl: optional TTL, in seconds, for shared-cache
                entries.
            remote_timeout: per-request timeout, in seconds, applied to
                every URL shard (a slow shard exceeding it fails over).
            remote_retries: transport-level retries applied to every URL
                shard.
            registry: the :class:`~repro.obs.MetricsRegistry` the router
                publishes into.  Defaults to a fresh one, shared with
                every *local* shard service so one process exports one
                coherent ``/metrics`` view; remote shards keep their own
                server-side registry.
            tracing: whether router queries build per-query trace trees
                (remote shard traces are stitched in as child spans).
            cooldown_seed: seed for the failover-cooldown jitter, making
                the failover schedule deterministic (tests, chaos bench);
                ``None`` (the default) desynchronizes naturally.
            **service_options: forwarded to every *local* shard service
                constructor (cache knobs, ``default_backend``, ...);
                remote shards configured their service at server start.

        Raises:
            ShardError: no shards, duplicate shard names, or both/neither
                of ``catalog_paths`` and ``specs`` given.
            ShardConflictError: two shards list the same graph name with
                different content fingerprints.
            ShardUnavailableError: a URL shard refused the connection (the
                open-time health probe).
            PersistentCatalogError: a shard catalog failed to load (or, in
                strict mode, an entry failed to attach).
        """
        if (catalog_paths is None) == (specs is None):
            raise ShardError(
                "pass exactly one of catalog_paths=[...] or specs=[...]"
            )
        registry = registry if registry is not None else MetricsRegistry()
        if specs is None:
            assert catalog_paths is not None
            if names is None:
                names = [default_shard_name(path) for path in catalog_paths]
            elif len(names) != len(catalog_paths):
                raise ShardError(
                    f"got {len(names)} shard names for "
                    f"{len(catalog_paths)} catalog paths"
                )
            built: List[ShardSpec] = []
            for name, path in zip(names, catalog_paths):
                if is_shard_url(path):
                    options: Dict[str, object] = {}
                    if remote_timeout is not None:
                        options["timeout"] = remote_timeout
                    if remote_retries is not None:
                        options["retries"] = remote_retries
                    built.append(ShardSpec(
                        name=name, catalog_path=path,
                        transport=REMOTE_TRANSPORT,
                        service_options=options))
                else:
                    local_options = dict(service_options)
                    local_options.setdefault("registry", registry)
                    built.append(ShardSpec(
                        name=name, catalog_path=path,
                        service_options=local_options))
            specs = built
        else:
            if names is not None:
                raise ShardError(
                    "names=[...] applies to catalog_paths; set each "
                    "ShardSpec's name when opening from specs"
                )
            if service_options:
                raise ShardError(
                    "service options go inside each "
                    "ShardSpec.service_options when opening from specs"
                )
            # Local shard services share the router's registry (unless a
            # spec pins its own); remote specs keep server-side registries.
            specs = [
                spec if (spec.transport == REMOTE_TRANSPORT
                         or "registry" in spec.service_options)
                else replace(spec, service_options={
                    **spec.service_options, "registry": registry})
                for spec in specs
            ]
        if not specs:
            raise ShardError("a shard router needs at least one shard")
        seen: Dict[str, str] = {}
        for spec in specs:
            if spec.name in seen:
                raise ShardError(
                    f"duplicate shard name {spec.name!r} (catalogs "
                    f"{seen[spec.name]!r} and {spec.catalog_path!r}); pass "
                    f"names=[...] to disambiguate"
                )
            seen[spec.name] = spec.catalog_path
        transports: List[ShardTransport] = []
        try:
            for spec in specs:
                transports.append(spec.open(strict=strict))
            table = build_routing_table(
                [(transport.spec.name, transport.routing_entries())
                 for transport in transports])
            # Routes (and replica lists) must point at graphs the shard
            # actually hosts: a warm start with strict=False — or a server
            # started with --no-strict — skips stale/missing entries, and
            # routing to a skipped entry would raise a misleading "not
            # hosted" error mid-batch instead of the clean "not routed"
            # one up front.
            hosted = {transport.spec.name: set(transport.graphs())
                      for transport in transports}
            for name, route in list(table.routes.items()):
                if name not in hosted[route.shard]:
                    del table.routes[name]
                    continue
                live = tuple(replica for replica in route.replicas
                             if name in hosted.get(replica, set()))
                if live != route.replicas:
                    table.routes[name] = replace(route, replicas=live)
        except BaseException:
            for transport in transports:
                transport.close()
            raise
        router = cls(transports, table,
                     shared_cache_size=shared_cache_size,
                     shared_cache_ttl=shared_cache_ttl,
                     registry=registry, tracing=tracing,
                     cooldown_seed=cooldown_seed)
        if stamp_ownership:
            router._stamp_ownership()
        return router

    def _stamp_ownership(self) -> None:
        """Record each route's owner in the owning shard's manifest (a
        no-op per entry when the record is already correct)."""
        for route in self._table.routes.values():
            self._transports[route.shard].stamp_ownership(
                route.graph, route.shard)

    # -- topology ----------------------------------------------------------------

    def shards(self) -> Tuple[str, ...]:
        """Shard names, in spec order."""
        return tuple(self._transports)

    def graphs(self) -> Tuple[str, ...]:
        """All routed graph names, sorted."""
        return self._table.graphs()

    def owner(self, graph: str) -> str:
        """Name of the shard owning ``graph``."""
        return self._table.owner(graph)

    def routing_table(self) -> RoutingTable:
        """The live routing table (treat as read-only)."""
        return self._table

    def transport(self, shard: str) -> ShardTransport:
        """The connected :class:`ShardTransport` behind one shard."""
        return self._shard(shard)

    def service(self, shard: str) -> "PathService":
        """The :class:`PathService` behind one *in-process* shard (for
        inspection — ``pool_stats``, ``cache_info`` — not for bypassing
        the router).  Remote shards have none and raise
        :class:`ShardError`."""
        return self._shard(shard).service

    # -- health and failover -----------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The router's :class:`~repro.obs.MetricsRegistry` (shared with
        every in-process shard service)."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The router's :class:`~repro.obs.Tracer`."""
        return self._tracer

    def metrics(self) -> Dict[str, object]:
        """A JSON-safe snapshot of every metric the router (and its
        in-process shard services) published — see
        :meth:`~repro.obs.MetricsRegistry.snapshot`."""
        return self._registry.snapshot()

    def shard_health(self) -> Dict[str, Dict[str, object]]:
        """The router's per-shard failure accounting (lifetime view; one
        batch's accounting is on its :class:`RouterStats`)."""
        with self._health_lock:
            return {name: health.as_dict()
                    for name, health in self._health.items()}

    def check_health(self) -> Dict[str, Dict[str, object]]:
        """Actively probe every shard (one cheap liveness call each) and
        fold the outcomes into the failure accounting.  A probe finding a
        down-marked shard alive again clears its cooldown early."""
        report: Dict[str, Dict[str, object]] = {}
        for name, transport in self._transports.items():
            try:
                document = transport.health()
            except ShardUnavailableError as exc:
                self._mark_failure(name, exc)
                report[name] = {"status": "down", "shard": name,
                                "error": str(exc)}
            else:
                self._mark_success(name)
                report[name] = dict(document)
        return report

    def _mark_failure(self, shard: str, exc: BaseException) -> None:
        self._registry.counter(METRIC_SHARD_ERRORS, {"shard": shard}).inc()
        with self._health_lock:
            health = self._health[shard]
            health.errors += 1
            health.consecutive_failures += 1
            cooldown = min(
                FAILOVER_COOLDOWN * (2 ** (health.consecutive_failures - 1)),
                FAILOVER_COOLDOWN_MAX)
            # Equal jitter: uniform in [cooldown/2, cooldown].  Keeps the
            # exponential floor (no instant flapping back) while replicas
            # that failed together re-probe at different instants.
            cooldown = self._cooldown_rng.uniform(cooldown / 2.0, cooldown)
            health.down_until = time.monotonic() + cooldown
            health.last_error = str(exc)
        self._set_breaker(shard, BREAKER_OPEN)

    def _mark_success(self, shard: str) -> None:
        with self._health_lock:
            health = self._health[shard]
            health.consecutive_failures = 0
            health.down_until = 0.0
        self._set_breaker(shard, BREAKER_CLOSED)

    def _set_breaker(self, shard: str, state: str) -> None:
        self._registry.gauge(
            METRIC_BREAKER_STATE, {"shard": shard},
            help="Per-shard circuit breaker (0 closed, 1 half-open, "
                 "2 open)").set(_BREAKER_GAUGE[state])

    def _candidates(self, graph: str) -> List[str]:
        """Shards able to answer ``graph``, preference order: the owner,
        then replicas — but shards inside their failure cooldown sink to
        the end (still tried last, so a fully-down replica set degrades
        to an error rather than an instant refusal)."""
        route = self._table.route(graph)
        names = [route.shard] + [replica for replica in route.replicas
                                 if replica in self._transports
                                 and replica != route.shard]
        now = time.monotonic()
        half_open: List[str] = []
        with self._health_lock:
            up = [n for n in names if not self._health[n].is_down(now)]
            down = [n for n in names if self._health[n].is_down(now)]
            half_open = [n for n in up
                         if self._health[n].breaker_state(now)
                         == BREAKER_HALF_OPEN]
        for name in half_open:
            # The cooldown elapsed with the failure streak unbroken: the
            # query about to route here is the breaker's probe.
            self._set_breaker(name, BREAKER_HALF_OPEN)
        return up + down

    def _next_candidate(self, graph: str,
                        tried: Set[str]) -> Optional[str]:
        for name in self._candidates(graph):
            if name not in tried:
                return name
        return None

    # -- shared cross-shard cache ------------------------------------------------

    def shared_cache_info(self):
        """Counters of the shared cross-shard cache, or ``None`` when the
        router was opened without one."""
        return (None if self._shared_cache is None
                else self._shared_cache.stats())

    def _shared_key(self, spec: QuerySpec) -> Optional[Tuple]:
        """Cross-shard cache key: the graph's content *fingerprint* (never
        its name, so same-name/different-content graphs cannot collide and
        all replicas share), plus the query coordinates.  Uncacheable
        queries (capped iterations, time budgets — a budgeted run may
        have been cut short) get no key."""
        if (self._shared_cache is None or spec.max_iterations is not None
                or spec.timeout_s is not None):
            return None
        route = self._table.route(spec.graph)
        return (route.fingerprint, spec.source, spec.target,
                spec.method.upper(), spec.sql_style, spec.kind,
                spec.max_hops)

    @staticmethod
    def _copy_result(result: PathResult) -> PathResult:
        from repro.service.session import PathService
        return PathService._copy_result(result)

    # -- queries -----------------------------------------------------------------

    def shortest_path(self, source: int, target: int, graph: str,
                      method: str = "auto", sql_style: str = NSQL,
                      max_iterations: Optional[int] = None,
                      use_cache: bool = True, kind: str = "path",
                      max_hops: Optional[int] = None,
                      timeout_s: Optional[float] = None) -> PathResult:
        """Answer one query, routed transparently to ``graph``'s owner —
        or, when the owner's transport fails, to the next
        identical-fingerprint replica (bit-identical answer).

        ``kind``/``max_hops`` select the question asked, exactly as in
        :meth:`PathService.shortest_path` (``"path"``, ``"bounded_hop"``,
        or ``"reachability"``); the hop kinds route, fail over, and cache
        like any other query.

        ``timeout_s`` bounds the query end to end *across* the failover
        chain: each replica attempt is handed only the budget still
        remaining, and once the budget is gone the router stops failing
        over and raises :class:`~repro.errors.DeadlineExceededError`
        instead of shopping an expired query to the next replica.

        Raises:
            UnknownGraphError: when no shard owns ``graph``.
            ShardUnavailableError: every shard hosting ``graph`` is
                unreachable.
            DeadlineExceededError: the ``timeout_s`` budget ran out.
            (plus everything :meth:`PathService.shortest_path` raises)
        """
        spec = QuerySpec(source=source, target=target, graph=graph,
                         method=method, sql_style=sql_style,
                         max_iterations=max_iterations,
                         kind=kind, max_hops=max_hops,
                         timeout_s=timeout_s)
        self._registry.counter(METRIC_ROUTER_QUERIES, {"kind": kind}).inc()
        with self._tracer.span("router.query", graph=graph, source=source,
                               target=target, kind=kind) as root:
            result = self._routed_query(spec, use_cache, root)
        # The router owns the trace root: the result carries the stitched
        # tree (local shard spans joined the root via the ambient context;
        # remote shard trees were adopted below).
        if root.trace is not None:
            result.trace = root.trace
        return result

    def _routed_query(self, spec: QuerySpec, use_cache: bool,
                      root) -> PathResult:
        """One routed query: shared cache, then owner/replica failover."""
        graph = spec.graph
        key = self._shared_key(spec) if use_cache else None
        if key is not None:
            assert self._shared_cache is not None
            cached = self._shared_cache.get(key)
            if cached is not None:
                root.tag(shared_cache="hit")
                self._registry.counter(METRIC_SHARED_CACHE_HITS).inc()
                return self._copy_result(cached)
            verdict = self._shared_cache.get_negative(key)
            if verdict is not None:
                root.tag(shared_cache="negative_hit")
                self._registry.counter(METRIC_SHARED_CACHE_HITS).inc()
                raise PathNotFoundError(verdict)
        deadline = deadline_from_timeout(spec.timeout_s)
        last: Optional[ShardUnavailableError] = None
        candidates = self._candidates(graph)
        for position, shard in enumerate(candidates):
            # Budget gone → stop failing over: the typed deadline error
            # beats shopping an already-expired query to the next replica.
            check_deadline(deadline, f"routing to shard {shard!r} "
                                     f"(attempt {position + 1})")
            attempt_spec = spec
            budget = remaining_budget(deadline)
            if budget is not None and budget > 0:
                # Each attempt gets only what is left, not the original
                # allowance — the shard's own deadline then covers the
                # true remainder.
                attempt_spec = replace(spec, timeout_s=budget)
            transport = self._transports[shard]
            try:
                with timer() as took:
                    result = transport.shortest_path(attempt_spec,
                                                     use_cache=use_cache)
            except ShardUnavailableError as exc:
                self._mark_failure(shard, exc)
                if position + 1 < len(candidates):
                    # Another replica will be tried: this is a failover.
                    self._registry.counter(METRIC_FAILOVERS,
                                           {"shard": shard}).inc()
                last = exc
                continue
            except PathNotFoundError as exc:
                self._mark_success(shard)
                self._observe_shard(shard, took.seconds)
                if key is not None:
                    assert self._shared_cache is not None
                    self._shared_cache.put_negative(key, str(exc))
                raise
            self._mark_success(shard)
            self._observe_shard(shard, took.seconds)
            if key is not None:
                assert self._shared_cache is not None
                self._shared_cache.put(key, self._copy_result(result))
            if result.trace is not None and root.trace is not None:
                # A remote shard traced its own execution; stitch that
                # tree under the router root, tagged with the shard that
                # answered (the local-transport case needs no stitching —
                # the service's query span joined the root ambiently).
                # With router tracing off the remote tree stays on the
                # result untouched.
                root.adopt(result.trace, shard=shard)
                result.trace = None
            root.tag(shard=shard, attempts=position + 1)
            return result
        assert last is not None
        raise last

    def _observe_shard(self, shard: str, seconds: float) -> None:
        self._registry.histogram(METRIC_SHARD_LATENCY,
                                 {"shard": shard}).observe(seconds)

    def explain(self, source: int, target: int, graph: str,
                method: str = "auto", sql_style: str = NSQL) -> QueryPlan:
        """The plan ``graph``'s owning shard (or, on transport failure,
        its next replica) would execute."""
        spec = QuerySpec(source=source, target=target, graph=graph,
                         method=method, sql_style=sql_style)
        last: Optional[ShardUnavailableError] = None
        for shard in self._candidates(graph):
            try:
                plan = self._transports[shard].explain(spec)
            except ShardUnavailableError as exc:
                self._mark_failure(shard, exc)
                last = exc
                continue
            self._mark_success(shard)
            return plan
        assert last is not None
        raise last

    def shortest_path_many(self, queries: Sequence["BatchQuery"],
                           graph: Optional[str] = None,
                           method: str = "auto", sql_style: str = NSQL,
                           raise_on_unreachable: bool = False,
                           concurrency: int = 1,
                           checkout_timeout: Optional[float] = None,
                           share_frontier: Union[bool, str] = False,
                           timeout_s: Optional[float] = None
                           ) -> ScatterResult:
        """Scatter a mixed-graph batch across shards and gather in order.

        The batch is normalized and validated up front (unknown graphs,
        unknown nodes, and malformed specs fail before any shard executes
        anything), split by owning shard, and each non-empty slice runs as
        one batch call on its shard's transport — concurrently across
        shards, and with ``concurrency=N`` worker threads *inside* each
        shard on top.  ``results[i]`` always answers ``queries[i]``.

        A slice whose shard fails at the transport level is re-routed to
        the next identical-fingerprint replica (per-graph, bounded by the
        replica count); the answers are bit-identical, the detour is
        visible in ``stats.failovers`` / ``stats.per_shard_errors``, and
        only when *every* host of a graph is down does the batch raise.

        Args:
            queries: the batch, in any of the forms
                :func:`~repro.service.batch.normalize_queries` accepts.
            graph: default graph for queries that do not name one.
            method / sql_style: batch-level defaults, as in the service.
            raise_on_unreachable: after the gather, raise
                :class:`PathNotFoundError` for the unreachable pair with
                the smallest input index instead of recording ``None``.
            concurrency: per-shard worker-thread count (``1`` = each shard
                executes its slice serially).
            checkout_timeout: per-query bound on waiting for a pooled
                store connection inside each shard.
            share_frontier: forwarded to each slice's
                :func:`~repro.service.batch.execute_batch` — same-source
                groups of plain ``path`` queries may then run as one
                shared DJ frontier on their shard (``"auto"`` =
                cost-gated, ``True`` = always, ``False`` = never).
            timeout_s: default per-query time budget applied to every
                query that does not already carry its own
                (``QuerySpec.timeout_s`` wins).  A query whose budget
                runs out reports a
                :class:`~repro.errors.DeadlineExceededError` at its own
                position in ``scatter.errors`` — its siblings finish
                normally.

        Raises:
            UnknownGraphError, NodeNotFoundError, InvalidQueryError: on
                the first malformed query, before anything executes.
            ShardUnavailableError: some graph's entire replica set is
                unreachable (deterministically the failure holding the
                smallest input index).
            PathNotFoundError: with ``raise_on_unreachable=True``, the
                deterministic first (by input index) unreachable pair.
        """
        elapsed = timer()  # .seconds reads live until the final assignment
        specs = normalize_queries(queries, graph=graph or DEFAULT_GRAPH,
                                  method=method, sql_style=sql_style)
        if timeout_s is not None:
            specs = [spec if spec.timeout_s is not None
                     else replace(spec, timeout_s=timeout_s)
                     for spec in specs]
        for spec in specs:
            self._registry.counter(METRIC_ROUTER_QUERIES,
                                   {"kind": spec.kind}).inc()
        scatter = ScatterResult(
            specs=specs,
            results=[None] * len(specs),
            from_cache=[False] * len(specs),
            shard_of=[""] * len(specs),
            errors=[None] * len(specs),
            stats=RouterStats(total=len(specs)),
        )
        stats = scatter.stats
        # Owner resolution doubles as graph-name validation; the shared
        # cross-shard cache (when enabled) then answers what it can
        # without touching any shard.
        pending: List[int] = []
        for index, spec in enumerate(specs):
            route = self._table.route(spec.graph)
            scatter.shard_of[index] = route.shard
            key = self._shared_key(spec)
            if key is not None:
                assert self._shared_cache is not None
                cached = self._shared_cache.get(key)
                if cached is not None:
                    scatter.results[index] = self._copy_result(cached)
                    scatter.from_cache[index] = True
                    stats.shared_cache_hits += 1
                    self._registry.counter(METRIC_SHARED_CACHE_HITS).inc()
                    continue
                if self._shared_cache.get_negative(key) is not None:
                    # A remembered unreachable pair: result stays None.
                    scatter.from_cache[index] = True
                    stats.shared_cache_hits += 1
                    self._registry.counter(METRIC_SHARED_CACHE_HITS).inc()
                    continue
            pending.append(index)

        # Fail-fast validation: plan every pending spec — one transport
        # round per shard, with per-graph failover — before a single
        # query executes anywhere.  Library errors (unknown node, bad
        # method) propagate immediately; the plans are handed to
        # in-process slices so they are not planned twice.
        plans: Dict[int, QueryPlan] = {}
        assignment: Dict[str, str] = {}
        tried: Dict[str, Set[str]] = {}
        last_error: Dict[str, ShardUnavailableError] = {}
        unassigned: List[str] = []
        for index in pending:
            name = specs[index].graph
            if name not in assignment and name not in unassigned:
                unassigned.append(name)
        while unassigned:
            groups: Dict[str, List[str]] = {}
            for name in unassigned:
                candidate = self._next_candidate(name, tried.get(name, set()))
                if candidate is None:
                    raise last_error[name]
                groups.setdefault(candidate, []).append(name)
            for shard, shard_graphs in groups.items():
                members = set(shard_graphs)
                indices = [i for i in pending
                           if specs[i].graph in members and i not in plans]
                try:
                    slice_plans = self._transports[shard].plan_specs(
                        [specs[i] for i in indices])
                except ShardUnavailableError as exc:
                    self._mark_failure(shard, exc)
                    stats.record_error(shard)
                    stats.failovers += len(indices)
                    self._registry.counter(
                        METRIC_FAILOVERS, {"shard": shard}).inc(len(indices))
                    for name in shard_graphs:
                        tried.setdefault(name, set()).add(shard)
                        last_error[name] = exc
                    continue
                self._mark_success(shard)
                for index, plan in zip(indices, slice_plans):
                    plans[index] = plan
                for name in shard_graphs:
                    assignment[name] = shard
            unassigned = [name for name in unassigned
                          if name not in assignment]

        # Execution rounds: scatter the outstanding slices, re-routing a
        # transport-failed slice's graphs to their next replica until
        # everything is answered or some graph runs out of hosts.  The
        # batch trace root collects one recorded span per slice run
        # (workers lose the ambient context, so slices record onto the
        # root explicitly).
        with self._tracer.span("router.batch", queries=len(specs),
                               shards=len(self._transports)) as root:
            outstanding: List[int] = list(pending)
            while outstanding:
                groups_by_shard: Dict[str, List[int]] = {}
                for index in outstanding:
                    shard = assignment[specs[index].graph]
                    groups_by_shard.setdefault(shard, []).append(index)

                def run_slice(shard: str, indices: List[int]) -> "BatchResult":
                    took = timer()
                    try:
                        batch = self._transports[shard].execute_specs(
                            [specs[i] for i in indices],
                            concurrency=concurrency,
                            checkout_timeout=checkout_timeout,
                            plans=[plans[i] for i in indices],
                            share_frontier=share_frontier)
                    except BaseException as exc:
                        root.record("router.slice", took.seconds, shard=shard,
                                    queries=len(indices),
                                    error=type(exc).__name__)
                        raise
                    root.record("router.slice", took.seconds, shard=shard,
                                queries=len(indices))
                    self._observe_shard(shard, took.seconds)
                    return batch

                errors: Dict[int, BaseException] = {}
                with ThreadPoolExecutor(
                        max_workers=len(groups_by_shard),
                        thread_name_prefix="repro-router") as pool:
                    futures = {pool.submit(run_slice, shard, indices):
                               (shard, indices)
                               for shard, indices in groups_by_shard.items()}
                    wait(list(futures))
                answered: Set[int] = set()
                for future, (shard, indices) in futures.items():
                    try:
                        batch = future.result()
                    except ShardUnavailableError as exc:
                        self._mark_failure(shard, exc)
                        stats.record_error(shard)
                        for name in {specs[i].graph for i in indices}:
                            tried.setdefault(name, set()).add(shard)
                            affected = [i for i in indices
                                        if specs[i].graph == name]
                            replica = self._next_candidate(name, tried[name])
                            if replica is None:
                                errors[min(affected)] = exc
                                answered.update(affected)  # stop retrying
                            else:
                                assignment[name] = replica
                                stats.failovers += len(affected)
                                self._registry.counter(
                                    METRIC_FAILOVERS,
                                    {"shard": shard}).inc(len(affected))
                        continue
                    except BaseException as exc:
                        # Non-transport failures are not failover events:
                        # surfaced deterministically below, smallest input
                        # index first.
                        errors[indices[0]] = exc
                        answered.update(indices)
                        continue
                    self._mark_success(shard)
                    stats.record(shard, batch.stats)
                    answered.update(indices)
                    for local, global_index in enumerate(indices):
                        result = batch.results[local]
                        scatter.results[global_index] = result
                        scatter.from_cache[global_index] = batch.from_cache[local]
                        scatter.shard_of[global_index] = shard
                        if batch.errors and local < len(batch.errors):
                            scatter.errors[global_index] = batch.errors[local]
                        key = self._shared_key(specs[global_index])
                        if key is None:
                            continue
                        assert self._shared_cache is not None
                        if result is None:
                            spec = specs[global_index]
                            self._shared_cache.put_negative(
                                key, f"no path from {spec.source} to "
                                     f"{spec.target} in graph {spec.graph!r}")
                        else:
                            self._shared_cache.put(key,
                                                   self._copy_result(result))
                if errors:
                    raise errors[min(errors)]
                outstanding = [i for i in outstanding if i not in answered]

        scatter.trace = root.trace
        stats.total_time = elapsed.seconds
        if raise_on_unreachable:
            for index, result in enumerate(scatter.results):
                if result is None:
                    if scatter.errors[index] is not None:
                        # Not unreachable — unfinished (deadline expired);
                        # the typed error stays positional.
                        continue
                    spec = specs[index]
                    raise PathNotFoundError(
                        f"no path from {spec.source} to {spec.target} in "
                        f"graph {spec.graph!r} (batch index {index}, shard "
                        f"{scatter.shard_of[index]!r})"
                    )
        return scatter

    # -- planner calibration -----------------------------------------------------

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True, **probe_options: object
                  ) -> Dict[str, Dict[str, "CostProfile"]]:
        """Calibrate every shard's planner cost model.

        Each shard runs its own probe (shards may sit on different
        hardware or host graphs on different backends) and — with
        ``persist=True`` — records the profile in its own catalog, so the
        next :meth:`open` warm-starts every shard with a calibrated
        planner and zero re-probing.  Remote shards probe server-side.

        Returns ``{shard: {backend: CostProfile}}``.
        """
        return {
            name: transport.calibrate(backend, persist=persist,
                                      **probe_options)
            for name, transport in self._transports.items()
        }

    # -- async front end ---------------------------------------------------------

    def as_async(self, max_workers: int = 8) -> "AsyncShardRouter":
        """An ``await``-able facade over this router (see
        :class:`repro.serve.aio.AsyncShardRouter`).  The facade borrows
        the router: close each independently."""
        from repro.serve.aio import AsyncShardRouter
        return AsyncShardRouter(self, max_workers=max_workers)

    # -- rebalancing -------------------------------------------------------------

    def move_stats(self) -> Dict[str, int]:
        """Rebalancing counters: full ``moves`` (data relocated) and
        ``replica_noops`` (ownership flipped to an existing
        identical-fingerprint replica, zero bytes copied)."""
        return dict(self._move_markers)

    def move(self, graph: str, shard: str) -> Route:
        """Rebalance: hand ``graph`` (and its built SegTable) to ``shard``.

        The graph's database file is snapshotted into the target shard's
        catalog directory through the store's relocation capability
        (:meth:`GraphStore.export_database` — for SQLite, the online
        backup API), so the SegTable inside migrates as-is.  Then the
        manifests are rewritten: the entry is written into the target
        manifest *first* and removed from the source manifest second —
        each write is atomic (temp file + rename), and a crash between the
        two leaves the graph listed by both shards with identical
        fingerprints, which the next :meth:`open` resolves as a benign
        replica rather than a conflict.  Finally the target shard
        warm-attaches the graph — adopting the migrated SegTable, never
        rebuilding it — and the routing table is updated in place.

        Two cheap cases short-circuit the copy entirely: moving a graph
        onto its current owner returns the route unchanged, and moving it
        onto a shard that already *replica-hosts* it at the same
        fingerprint just flips ownership (both manifests re-stamped, the
        old owner demoted to replica) and counts a ``replica_noops``
        marker in :meth:`move_stats`.

        A relocation that fails midway (export error, disk full) removes
        its partial snapshot from the target catalog before re-raising,
        so a retry is not blocked by a corrupt leftover file.

        Moving a graph is not concurrency-safe against in-flight batches
        that touch it: quiesce those first.

        Args:
            graph: a routed graph name.
            shard: the receiving shard.

        Returns:
            The graph's new :class:`Route`.

        Raises:
            UnknownGraphError: ``graph`` is not routed.
            UnknownShardError: ``shard`` is not part of this router.
            ShardError: the entry is stale, the backend cannot relocate
                its database, the target already holds a database file of
                the same name, or either endpoint is a remote shard
                (full data moves need in-process services).
        """
        route = self._table.route(graph)
        target = self._shard(shard)
        if route.shard == shard:
            return route
        if shard in route.replicas:
            # The target already holds byte-identical content: no copy,
            # just flip the durable ownership records and the live route.
            source = self._shard(route.shard)
            target.stamp_ownership(graph, shard)
            source.stamp_ownership(graph, shard)
            flipped = Route(
                graph=graph, shard=shard, fingerprint=route.fingerprint,
                stale=route.stale,
                replicas=(route.shard,) + tuple(
                    replica for replica in route.replicas
                    if replica != shard))
            self._table.routes[graph] = flipped
            self._move_markers["replica_noops"] += 1
            return flipped
        source = self._shard(route.shard)
        source_catalog = source.service.catalog
        target_catalog = target.service.catalog
        assert source_catalog is not None and target_catalog is not None
        entry = source_catalog.get(graph)
        if entry.stale:
            raise ShardError(
                f"cannot move stale graph {graph!r}; rebuild it first "
                f"(python -m repro.catalog rebuild --catalog "
                f"{source_catalog.path} {graph})"
            )
        source_db = source_catalog.resolve_db_path(entry)
        # A relative db_path lives inside the source catalog directory and
        # must physically move; an absolute one is shared storage both
        # shards can reach, so only the manifests change.  A DSN entry is
        # the extreme of that case — the graph lives on a database server
        # either shard can dial — so it also moves by manifest flip alone,
        # with no file copy and nothing to remove from the source.
        relocating = not is_dsn(entry.db_path) and not os.path.isabs(
            entry.db_path)
        if relocating:
            dest_db = os.path.join(target_catalog.path,
                                   os.path.basename(entry.db_path))
            if os.path.exists(dest_db):
                raise ShardError(
                    f"target shard {shard!r} already holds a database "
                    f"file named {os.path.basename(entry.db_path)!r}; "
                    f"remove it (or gc the target catalog) before moving"
                )
            # Snapshot BEFORE detaching anything: the backup runs safely
            # under the source service's open readers, so a capability
            # refusal or a failed copy aborts the move with the graph
            # still fully hosted and routed on its current shard.
            store = create_store(entry.backend, path=source_db,
                                 buffer_capacity=entry.buffer_capacity)
            try:
                if not store.supports_relocation():
                    raise ShardError(
                        f"backend {entry.backend!r} cannot relocate its "
                        f"database; graph {graph!r} stays on shard "
                        f"{route.shard!r}"
                    )
                try:
                    store.export_database(dest_db)
                except BaseException:
                    # A half-written snapshot must not survive: it would
                    # block the retry (the dest-exists guard above) and
                    # could be mistaken for a valid database.
                    if os.path.exists(dest_db):
                        os.remove(dest_db)
                    raise
            finally:
                store.close()
        else:
            dest_db = entry.db_path
        # Only now detach from the source service: its pool connections
        # hold the file open, and a moved graph must stop being
        # answerable by the old owner.
        if graph in source.service.graphs():
            source.service.drop_graph(graph)
        target_catalog.put(entry.touched(
            db_path=target_catalog.normalize_db_path(dest_db),
            shard=shard))
        source_catalog.remove(graph)
        target.service.attach_graph(graph)
        if relocating:
            os.remove(source_db)
        moved = Route(graph=graph, shard=shard,
                      fingerprint=entry.fingerprint,
                      stale=False, replicas=route.replicas)
        self._table.routes[graph] = moved
        self._move_markers["moves"] += 1
        return moved

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every shard transport."""
        if self._closed:
            return
        self._closed = True
        for transport in self._transports.values():
            transport.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _shard(self, name: str) -> ShardTransport:
        transport = self._transports.get(name)
        if transport is None:
            raise UnknownShardError(
                f"shard {name!r} is not part of this router; shards: "
                f"{tuple(self._transports)}"
            )
        return transport

    def _service_for(self, graph: str) -> "PathService":
        return self._shard(self._table.owner(graph)).service


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "DEFAULT_GRAPH",
    "FAILOVER_COOLDOWN",
    "FAILOVER_COOLDOWN_MAX",
    "ScatterResult",
    "ShardHealth",
    "ShardRouter",
]
