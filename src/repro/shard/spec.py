"""Shard descriptions and the transport seam.

A :class:`ShardSpec` names one shard and points at the catalog whose
manifest is that shard's routing-table contribution.  *How* the shard's
service is reached is the **transport**: today the only transport is
``"inprocess"`` — the router warm-starts a
:class:`~repro.service.session.PathService` right here via
``PathService.open`` — but the seam is explicit so a later PR can register
a remote transport (same :class:`ShardTransport` surface over a wire
protocol) without touching the router.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, TYPE_CHECKING

from repro.errors import ShardError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import PathService

INPROCESS_TRANSPORT = "inprocess"


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a :class:`~repro.shard.router.ShardRouter`.

    Attributes:
        name: router-unique shard name; it is stamped into the owned
            catalog entries as the manifest ownership record and appended
            to the shard service's cache keys (``shard_id``).
        catalog_path: the shard's catalog directory — its manifest is the
            slice of the routing table this shard contributes.
        transport: how the shard's service is reached; only
            ``"inprocess"`` is registered today (see
            :func:`register_transport`).
        service_options: extra keyword arguments for the shard service
            (cache knobs, ``default_backend``, ...), applied by the
            transport when it opens the service.
    """

    name: str
    catalog_path: str
    transport: str = INPROCESS_TRANSPORT
    service_options: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ShardError(
                f"shard name {self.name!r} is invalid; use a non-empty "
                f"name without path separators"
            )
        if self.transport not in _TRANSPORTS:
            raise ShardError(
                f"unknown shard transport {self.transport!r}; registered "
                f"transports: {tuple(sorted(_TRANSPORTS))}"
            )

    def open(self, strict: bool = True) -> "ShardTransport":
        """Connect this shard through its transport (see
        :meth:`ShardTransport.connect`)."""
        return _TRANSPORTS[self.transport](self, strict)


class ShardTransport(ABC):
    """A connected shard: the router talks to every shard through this
    surface only, so in-process and (future) remote shards are
    interchangeable."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec

    @property
    @abstractmethod
    def service(self) -> "PathService":
        """The shard's query service."""

    @abstractmethod
    def close(self) -> None:
        """Release the shard's resources."""


class InProcessTransport(ShardTransport):
    """The zero-copy transport: the shard *is* a warm-started
    :class:`PathService` in this process, opened from the spec's catalog
    with the shard name as its cache-key ``shard_id``."""

    def __init__(self, spec: ShardSpec, strict: bool = True) -> None:
        super().__init__(spec)
        from repro.service.session import PathService
        self._service = PathService.open(
            spec.catalog_path, strict=strict, shard_id=spec.name,
            **spec.service_options)  # type: ignore[arg-type]

    @property
    def service(self) -> "PathService":
        return self._service

    def close(self) -> None:
        self._service.close()


TransportFactory = Callable[[ShardSpec, bool], ShardTransport]

_TRANSPORTS: Dict[str, TransportFactory] = {}


def register_transport(name: str, factory: TransportFactory,
                       replace: bool = False) -> None:
    """Register a shard transport under ``name``.

    The factory is called as ``factory(spec, strict)`` and must return a
    connected :class:`ShardTransport`.  Registering an existing name
    raises unless ``replace=True``.
    """
    if name in _TRANSPORTS and not replace:
        raise ShardError(
            f"shard transport {name!r} is already registered; pass "
            f"replace=True to overwrite it deliberately"
        )
    _TRANSPORTS[name] = factory


def available_transports() -> tuple:
    """Names of the registered shard transports, sorted."""
    return tuple(sorted(_TRANSPORTS))


register_transport(INPROCESS_TRANSPORT, InProcessTransport)


def default_shard_name(catalog_path: str) -> str:
    """The default name of the shard at ``catalog_path``: the catalog
    directory's basename (trailing separators ignored)."""
    normalized = os.path.normpath(os.path.abspath(catalog_path))
    return os.path.basename(normalized) or normalized


__all__ = [
    "INPROCESS_TRANSPORT",
    "InProcessTransport",
    "ShardSpec",
    "ShardTransport",
    "available_transports",
    "default_shard_name",
    "register_transport",
]
