"""Shard descriptions and the transport seam.

A :class:`ShardSpec` names one shard and points at the catalog whose
manifest is that shard's routing-table contribution.  *How* the shard's
service is reached is the **transport**: ``"inprocess"`` warm-starts a
:class:`~repro.service.session.PathService` right here via
``PathService.open``; ``"remote"`` (registered on ``import repro.serve``)
speaks the serve wire protocol to a shard server in another process.  The
router talks to every shard exclusively through the
:class:`ShardTransport` operation surface, so the two are
interchangeable — including mixed within one router.

The transport registry is open: :func:`register_transport` accepts
third-party factories, and :meth:`ShardSpec.open` resolves the name *at
open time* (not at spec construction), so a transport registered after
the spec was built — the normal case for ``"remote"``, which rides in on
the ``repro.serve`` import — still works.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)
from urllib.parse import urlsplit

from repro.errors import ShardError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.manifest import CatalogEntry
    from repro.core.path import PathResult
    from repro.service.batch import BatchResult
    from repro.service.costmodel import CostProfile
    from repro.service.planner import QueryPlan, QuerySpec
    from repro.service.session import PathService

INPROCESS_TRANSPORT = "inprocess"
REMOTE_TRANSPORT = "remote"

_URL_SCHEMES = ("http://", "https://")


def is_shard_url(path: str) -> bool:
    """Whether ``path`` addresses a networked shard server rather than a
    catalog directory on this filesystem."""
    return path.startswith(_URL_SCHEMES)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a :class:`~repro.shard.router.ShardRouter`.

    Attributes:
        name: router-unique shard name; it is stamped into the owned
            catalog entries as the manifest ownership record and appended
            to the shard service's cache keys (``shard_id``).
        catalog_path: the shard's catalog directory — its manifest is the
            slice of the routing table this shard contributes.  For the
            ``"remote"`` transport this is the server's base URL
            (``http://host:port``) instead.
        transport: how the shard's service is reached (see
            :func:`register_transport`).  Resolved when the spec is
            *opened*, so transports registered after construction work.
        service_options: extra keyword arguments for the shard service
            (cache knobs, ``default_backend``, ...), applied by the
            transport when it opens the service.  The remote transport
            reads its client knobs (``timeout``, ``retries``) from here.
    """

    name: str
    catalog_path: str
    transport: str = INPROCESS_TRANSPORT
    service_options: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ShardError(
                f"shard name {self.name!r} is invalid; use a non-empty "
                f"name without path separators"
            )

    def open(self, strict: bool = True) -> "ShardTransport":
        """Connect this shard through its transport.

        The transport name is resolved against the registry *now* — if it
        is unknown, ``repro.serve`` is imported once (it registers
        ``"remote"`` as a side effect) before giving up, so specs built
        before that import still open.

        Raises:
            ShardError: the transport name is not registered even after
                the ``repro.serve`` fallback import.
        """
        factory = _TRANSPORTS.get(self.transport)
        if factory is None:
            factory = _resolve_late_transport(self.transport)
        return factory(self, strict)


class ShardTransport(ABC):
    """A connected shard: the router talks to every shard through this
    surface only, so in-process and remote shards are interchangeable.

    Every operation has a default implementation that delegates to
    :attr:`service`, so an in-process (or any service-backed third-party)
    transport only implements ``service`` and ``close``; a networked
    transport overrides each operation with a wire call instead and lets
    ``service`` raise.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec

    @property
    @abstractmethod
    def service(self) -> "PathService":
        """The shard's in-process query service.

        Transports without one (networked shards) raise
        :class:`ShardError` — callers that need direct service access
        (full data moves, pool inspection) must check the transport type.
        """

    @abstractmethod
    def close(self) -> None:
        """Release the shard's resources."""

    # -- operation surface (defaults delegate to the in-process service) ---------

    def graphs(self) -> Tuple[str, ...]:
        """Graph names this shard actually hosts (attached and queryable)."""
        return self.service.graphs()

    def routing_entries(self) -> Dict[str, "CatalogEntry"]:
        """The shard's catalog manifest — its routing-table contribution."""
        catalog = self.service.catalog
        assert catalog is not None  # shard services are catalog-bound
        return dict(catalog.entries())

    def stamp_ownership(self, graph: str, shard: str) -> None:
        """Record ``shard`` as ``graph``'s owner in this shard's manifest
        (a no-op when the record already matches)."""
        catalog = self.service.catalog
        assert catalog is not None
        catalog.set_shard(graph, shard)

    def shortest_path(self, spec: "QuerySpec",
                      use_cache: bool = True) -> "PathResult":
        """Answer one query on this shard."""
        return self.service.shortest_path(
            spec.source, spec.target, graph=spec.graph, method=spec.method,
            sql_style=spec.sql_style, max_iterations=spec.max_iterations,
            use_cache=use_cache, kind=spec.kind, max_hops=spec.max_hops,
            timeout_s=spec.timeout_s)

    def explain(self, spec: "QuerySpec") -> "QueryPlan":
        """The plan this shard would execute for ``spec``."""
        return self.service.plan(spec)

    def plan_specs(self, specs: Sequence["QuerySpec"]) -> List["QueryPlan"]:
        """Plan a batch slice (the router's fail-fast validation pass).

        Malformed specs — unknown graph, unknown node, bad method — raise
        here, before anything executes anywhere.
        """
        return [self.service.plan(spec) for spec in specs]

    def execute_specs(self, specs: Sequence["QuerySpec"], *,
                      concurrency: int = 1,
                      checkout_timeout: Optional[float] = None,
                      plans: Optional[Sequence["QueryPlan"]] = None,
                      share_frontier: object = False
                      ) -> "BatchResult":
        """Execute one scatter slice on this shard.

        ``plans`` replays the validation pass's plans so an in-process
        slice is not planned twice; transports that cannot ship plans
        (remote) ignore it and re-plan server-side — planning is
        deterministic, so the results are identical.  ``share_frontier``
        is forwarded to :func:`~repro.service.batch.execute_batch`.
        """
        from repro.service.batch import execute_batch
        return execute_batch(
            self.service, list(specs), raise_on_unreachable=False,
            concurrency=concurrency, checkout_timeout=checkout_timeout,
            plans=None if plans is None else list(plans),
            share_frontier=share_frontier)  # type: ignore[arg-type]

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True,
                  **probe_options: object) -> Dict[str, "CostProfile"]:
        """Calibrate this shard's planner cost model."""
        return self.service.calibrate(backend, persist=persist,
                                      **probe_options)

    def health(self) -> Dict[str, object]:
        """A cheap liveness probe.  Raises (transport-dependent) when the
        shard is unreachable; returns a status document when it is up."""
        return {
            "status": "ok",
            "shard": self.spec.name,
            "transport": self.spec.transport,
            "graphs": list(self.graphs()),
        }


class InProcessTransport(ShardTransport):
    """The zero-copy transport: the shard *is* a warm-started
    :class:`PathService` in this process, opened from the spec's catalog
    with the shard name as its cache-key ``shard_id``."""

    def __init__(self, spec: ShardSpec, strict: bool = True) -> None:
        super().__init__(spec)
        from repro.service.session import PathService
        self._service = PathService.open(
            spec.catalog_path, strict=strict, shard_id=spec.name,
            **spec.service_options)  # type: ignore[arg-type]

    @property
    def service(self) -> "PathService":
        return self._service

    def close(self) -> None:
        self._service.close()


TransportFactory = Callable[[ShardSpec, bool], ShardTransport]

_TRANSPORTS: Dict[str, TransportFactory] = {}


def register_transport(name: str, factory: TransportFactory,
                       replace: bool = False) -> None:
    """Register a shard transport under ``name``.

    The factory is called as ``factory(spec, strict)`` and must return a
    connected :class:`ShardTransport`.  Registering an existing name
    raises unless ``replace=True``.
    """
    if name in _TRANSPORTS and not replace:
        raise ShardError(
            f"shard transport {name!r} is already registered; pass "
            f"replace=True to overwrite it deliberately"
        )
    _TRANSPORTS[name] = factory


def available_transports() -> tuple:
    """Names of the registered shard transports, sorted."""
    return tuple(sorted(_TRANSPORTS))


def _resolve_late_transport(name: str) -> TransportFactory:
    """Second-chance lookup for transports registered by deferred imports.

    ``repro.serve`` registers ``"remote"`` when imported; a spec built
    before that import must still open, so try the import here before
    declaring the name unknown.
    """
    try:
        import repro.serve  # noqa: F401  (registers "remote")
    except ImportError:  # pragma: no cover - serve ships with the package
        pass
    factory = _TRANSPORTS.get(name)
    if factory is None:
        raise ShardError(
            f"unknown shard transport {name!r}; registered "
            f"transports: {available_transports()}"
        )
    return factory


register_transport(INPROCESS_TRANSPORT, InProcessTransport)


def default_shard_name(catalog_path: str) -> str:
    """The default name of the shard at ``catalog_path``: the catalog
    directory's basename (trailing separators ignored), or ``host:port``
    for a shard server URL."""
    if is_shard_url(catalog_path):
        parts = urlsplit(catalog_path)
        return parts.netloc or catalog_path
    normalized = os.path.normpath(os.path.abspath(catalog_path))
    return os.path.basename(normalized) or normalized


__all__ = [
    "INPROCESS_TRANSPORT",
    "REMOTE_TRANSPORT",
    "InProcessTransport",
    "ShardSpec",
    "ShardTransport",
    "available_transports",
    "default_shard_name",
    "is_shard_url",
    "register_transport",
]
