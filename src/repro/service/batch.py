"""Batch execution: many queries, one store pass, one shared cache.

:func:`execute_batch` normalizes heterogeneous query descriptions into
:class:`~repro.service.planner.QuerySpec` objects, plans them all up front
(so malformed queries fail before any work), executes them in input order
against each graph's already-open store, answers duplicates from the
service's LRU result cache, and reports aggregate
:class:`~repro.core.stats.BatchStats`.

This is also the per-shard execution unit of the shard router: a
scatter-gather batch (:meth:`repro.shard.ShardRouter.shortest_path_many`)
slices its queries by owning shard and runs each slice through this very
path on the shard's service, then merges the per-slice ``BatchStats``
into a :class:`~repro.shard.stats.RouterStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.stats import BatchStats
from repro.errors import (
    DeadlineExceededError,
    InvalidQueryError,
    PathNotFoundError,
    ReproError,
)
from repro.obs import timer
from repro.obs.schema import METRIC_BATCHES, METRIC_SINGLE_FLIGHT
from repro.service.planner import AUTO_METHOD, KIND_PATH, QueryPlan, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import BatchQuery, PathService


@dataclass
class BatchResult:
    """Results and statistics of one batch run.

    Attributes:
        specs: the normalized query specs, in input order.
        results: one entry per spec, aligned with the input order;
            ``None`` marks an unreachable pair (when the batch was run with
            ``raise_on_unreachable=False``).
        from_cache: one flag per spec — ``True`` when that answer was
            replayed from the result cache rather than executed here.
        errors: one entry per spec, aligned with the input order; a
            :class:`~repro.errors.DeadlineExceededError` marks a query
            whose ``timeout_s`` budget ran out — its siblings finish
            normally (``results[i]`` is ``None`` for such positions).
        stats: aggregate batch counters.
    """

    specs: List[QuerySpec] = field(default_factory=list)
    results: List[Optional[PathResult]] = field(default_factory=list)
    from_cache: List[bool] = field(default_factory=list)
    errors: List[Optional[ReproError]] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Optional[PathResult]:
        return self.results[index]

    def distances(self) -> List[Optional[float]]:
        """Distances in input order (``None`` for unreachable pairs)."""
        return [None if result is None else result.distance
                for result in self.results]

    def found(self) -> List[PathResult]:
        """Only the successful results (input order preserved)."""
        return [result for result in self.results if result is not None]


def normalize_queries(queries: Sequence["BatchQuery"], graph: str,
                      method: str, sql_style: str) -> List[QuerySpec]:
    """Turn mixed query descriptions into :class:`QuerySpec` objects.

    Accepted forms: a ``QuerySpec``; ``(source, target)``;
    ``(graph, source, target)``; ``(graph, source, target, method)``; or a
    dict of :class:`QuerySpec` field names.  Tuple forms inherit the
    batch-level defaults for the fields they omit.
    """
    specs: List[QuerySpec] = []
    for query in queries:
        if isinstance(query, QuerySpec):
            specs.append(query)
        elif isinstance(query, dict):
            fields = {"graph": graph, "method": method,
                      "sql_style": sql_style, **query}
            try:
                specs.append(QuerySpec(**fields))
            except TypeError:
                accepted = tuple(QuerySpec.__dataclass_fields__)
                raise InvalidQueryError(
                    f"cannot interpret batch query {query!r}; dict queries "
                    f"accept the QuerySpec fields {accepted} and must "
                    f"include 'source' and 'target'"
                ) from None
        elif isinstance(query, tuple) and len(query) == 2:
            if any(isinstance(item, str) for item in query):
                raise InvalidQueryError(
                    f"batch query {query!r} mixes a string into a "
                    f"(source, target) pair; to name a graph use the "
                    f"(graph, source, target) form"
                )
            specs.append(QuerySpec(source=query[0], target=query[1],
                                   graph=graph, method=method,
                                   sql_style=sql_style))
        elif isinstance(query, tuple) and len(query) in (3, 4):
            if not isinstance(query[0], str):
                raise InvalidQueryError(
                    f"batch query {query!r} must start with a graph name; "
                    f"to set a per-query method use the "
                    f"(graph, source, target, method) form or a QuerySpec"
                )
            specs.append(QuerySpec(graph=query[0], source=query[1],
                                   target=query[2],
                                   method=query[3] if len(query) == 4 else method,
                                   sql_style=sql_style))
        else:
            raise InvalidQueryError(
                f"cannot interpret batch query {query!r}; expected a "
                f"QuerySpec, a (source, target)[, ...] tuple, or a dict"
            )
    return specs


def _execute_shared_groups(service: "PathService",
                           specs: Sequence[QuerySpec],
                           plans: Sequence[QueryPlan],
                           batch: BatchResult, force: bool,
                           checkout_timeout: Optional[float]
                           ) -> Tuple[Set[int], Dict[int, PathNotFoundError]]:
    """Answer eligible same-source groups with one shared DJ frontier each.

    Eligible members are plain ``path``-kind, uncapped, ``method="auto"``
    queries (explicit methods keep their per-pair semantics — a shared run
    always executes DJ, and a different method's equally-shortest path may
    tie-break differently).  A group shares only when it still has at
    least two distinct targets the result cache cannot answer, and —
    unless ``force`` — when the cost model's bias-free structural price of
    one DJ frontier undercuts the sum of the members' per-pair plans.

    Shared answers are bit-identical to per-pair ``method="DJ"`` runs (see
    :func:`repro.core.multi.dijkstra_one_to_many`), are fed into the
    result cache individually, and count one ``executed`` per group.

    Returns ``(answered_indices, deferred_errors)``: the input positions
    this pass answered (the main loop must skip them), and the
    unreachable members' errors keyed by position so
    ``raise_on_unreachable`` can still surface the smallest-index failure.
    """
    groups: Dict[Tuple[str, int, str], List[int]] = {}
    for index, spec in enumerate(specs):
        if spec.kind != KIND_PATH or spec.max_iterations is not None:
            continue
        if spec.timeout_s is not None:
            # A budgeted member's deadline is its own; sharing a frontier
            # would couple its expiry to the whole group's runtime.
            continue
        if spec.method.upper() != AUTO_METHOD:
            continue
        groups.setdefault((spec.graph, spec.source, spec.sql_style),
                          []).append(index)
    answered: Set[int] = set()
    deferred: Dict[int, PathNotFoundError] = {}
    for (graph, source, style), indices in groups.items():
        pending = []
        for i in indices:
            key = service._cache_key(plans[i])
            if key is not None and service._cache.peek(key) is not None:
                continue  # answerable from cache; leave it to the main loop
            pending.append(i)
        if len({specs[i].target for i in pending}) < 2:
            continue
        if not force:
            host = service._host(graph)
            model = service.cost_model(host.backend)
            try:
                shared_cost = model.structural_seconds("DJ", host.statistics)
                per_pair = sum(
                    model.structural_seconds(
                        plans[i].method, host.statistics,
                        segtable_lthd=host.store.segtable_lthd,
                        segtable=host.segtable_stats)
                    for i in pending)
            except ValueError:
                continue  # a member's method is unpriced; stay per-pair
            if shared_cost >= per_pair:
                continue
        one = service.one_to_many(
            source, [specs[i].target for i in pending], graph=graph,
            sql_style=style, checkout_timeout=checkout_timeout)
        batch.stats.executed += 1
        batch.stats.shared_frontier_groups += 1
        batch.stats.shared_frontier_queries += len(pending)
        seen_keys: Set[Hashable] = set()
        for i in pending:
            answered.add(i)
            target = specs[i].target
            key = service._cache_key(plans[i])
            result = one[target]
            if result is None:
                batch.stats.not_found += 1
                error = PathNotFoundError(
                    f"no path from {source} to {target}")
                if key is not None:
                    service._cache.put_negative(key, str(error))
                deferred[i] = error
                continue
            if key is not None:
                if key in seen_keys:
                    batch.stats.cache_hits += 1
                    batch.from_cache[i] = True
                else:
                    seen_keys.add(key)
                    service._cache.put(key, result)
                    batch.stats.cache_misses += 1
            batch.results[i] = service._copy_result(result)
    return answered, deferred


def execute_batch(service: "PathService", queries: Sequence["BatchQuery"],
                  graph: str = "default", method: str = "auto",
                  sql_style: str = NSQL,
                  raise_on_unreachable: bool = False,
                  concurrency: int = 1,
                  checkout_timeout: Optional[float] = None,
                  plans: Optional[Sequence["QueryPlan"]] = None,
                  share_frontier: Union[bool, str] = False,
                  timeout_s: Optional[float] = None
                  ) -> BatchResult:
    """Answer ``queries`` against ``service`` and aggregate statistics.

    Queries are planned up front (so malformed specs fail before any work)
    and answered in input order.  With ``concurrency=1`` they execute
    serially on each graph's primary store — semantics identical to PR 1.
    With ``concurrency=N`` they run across N worker threads (see
    :class:`~repro.service.executor.Executor`): each graph's store pool is
    grown on demand, every worker checks a connection out per query, and
    identical in-flight queries collapse onto a single execution.  Either
    way, duplicate ``(graph, source, target, method)`` pairs hit the
    service's shared LRU cache, and ``results[i]`` always answers
    ``queries[i]``.

    Args:
        service: the hosting :class:`PathService`.
        queries: the batch (see :func:`normalize_queries` for forms).
        graph: default graph for queries that do not name one.
        method: default method for queries that do not name one.
        sql_style: default SQL style.
        raise_on_unreachable: propagate :class:`PathNotFoundError` instead
            of recording a ``None`` result.  (A serial batch stops at the
            first unreachable pair; a parallel batch finishes its workers,
            then raises the unreachable failure with the smallest input
            index.)
        concurrency: worker-thread count (``1`` = serial).
        checkout_timeout: parallel batches only — per-query bound, in
            seconds, on waiting for a pooled store connection.
        plans: pre-computed :class:`QueryPlan` objects, one per
            normalized query in order (``plans[i]`` must plan
            ``queries[i]``).  The shard router passes the plans from its
            fail-fast validation pass so a scattered slice is not
            planned twice; omit to plan here.
        share_frontier: one-to-many execution for same-source groups of
            plain ``path`` queries (see :func:`_execute_shared_groups`):
            ``False`` (default) keeps per-pair execution, ``"auto"``
            shares a group only when the cost model prices one shared DJ
            frontier below the group's per-pair plans, ``True`` shares
            every eligible group.
        timeout_s: default per-query time budget applied to every query
            that does not already carry one (``QuerySpec.timeout_s``
            wins).  A budgeted query whose time runs out records its
            :class:`~repro.errors.DeadlineExceededError` at its own
            position in ``batch.errors`` and counts in
            ``batch.stats.deadline_exceeded``; its siblings are
            unaffected.

    Raises:
        UnknownGraphError, NodeNotFoundError, InvalidQueryError: on the
            first malformed query, before anything executes.
    """
    if concurrency < 1:
        raise InvalidQueryError(
            f"batch concurrency must be >= 1, got {concurrency}"
        )
    if share_frontier not in (False, True, "auto"):
        raise InvalidQueryError(
            f"share_frontier must be False, True, or 'auto', "
            f"got {share_frontier!r}"
        )
    elapsed = timer()  # .seconds reads live until the final assignment
    specs = normalize_queries(queries, graph=graph, method=method,
                              sql_style=sql_style)
    if timeout_s is not None:
        specs = [spec if spec.timeout_s is not None
                 else replace(spec, timeout_s=timeout_s)
                 for spec in specs]
    batch = BatchResult(specs=specs, results=[None] * len(specs),
                        from_cache=[False] * len(specs),
                        errors=[None] * len(specs))
    batch.stats.total = len(specs)
    evictions_before = service._cache.stats().evictions

    if plans is None:
        plans = [service.plan(spec) for spec in specs]
    elif len(plans) != len(specs):
        raise InvalidQueryError(
            f"got {len(plans)} pre-computed plans for {len(specs)} "
            f"queries; pass one plan per query, in order"
        )
    for spec, plan in zip(specs, plans):
        batch.stats.per_graph[spec.graph] = (
            batch.stats.per_graph.get(spec.graph, 0) + 1
        )
        batch.stats.per_method[plan.method] = (
            batch.stats.per_method.get(plan.method, 0) + 1
        )

    answered: Set[int] = set()
    deferred: Dict[int, PathNotFoundError] = {}
    if share_frontier:
        answered, deferred = _execute_shared_groups(
            service, specs, plans, batch, force=share_frontier is True,
            checkout_timeout=checkout_timeout)

    if concurrency > 1 and len(plans) > 1:
        from repro.service.executor import Executor
        Executor(service, concurrency,
                 checkout_timeout=checkout_timeout).run(
            plans, batch, raise_on_unreachable=raise_on_unreachable,
            skip=answered,
            seed_errors=deferred if raise_on_unreachable else None)
    else:
        # Batch-local replay for duplicate uncapped pairs the result cache
        # cannot serve (cache disabled): the first occurrence executes,
        # repeats replay its outcome and count as single-flight hits.
        local_results: Dict[Tuple, Optional[PathResult]] = {}
        for index, plan in enumerate(plans):
            if index in answered:
                # Walked in input order, so an unreachable shared member
                # still surfaces at the right position.
                if raise_on_unreachable and index in deferred:
                    raise deferred[index]
                continue
            spec = plan.spec
            dedup_key = None
            if (spec.max_iterations is None and spec.timeout_s is None
                    and service._cache_key(plan) is None):
                dedup_key = (spec.graph, spec.source, spec.target,
                             plan.method, spec.sql_style, spec.kind,
                             spec.max_hops)
                if dedup_key in local_results:
                    earlier = local_results[dedup_key]
                    batch.stats.single_flight_hits += 1
                    service._registry.counter(METRIC_SINGLE_FLIGHT).inc()
                    if earlier is None:
                        batch.stats.not_found += 1
                    else:
                        batch.from_cache[index] = True
                        batch.results[index] = service._copy_result(earlier)
                    continue
            hits_before = batch.stats.cache_hits
            try:
                batch.results[index] = service._execute(
                    plan, batch_stats=batch.stats)
            except PathNotFoundError:
                if raise_on_unreachable:
                    raise
                batch.stats.not_found += 1
                if dedup_key is not None:
                    local_results[dedup_key] = None
            except DeadlineExceededError as exc:
                # A member's budget ran out: report it at its own position
                # and keep going — one slow query must not fail the batch.
                batch.stats.deadline_exceeded += 1
                batch.errors[index] = exc
            else:
                if dedup_key is not None:
                    local_results[dedup_key] = batch.results[index]
            batch.from_cache[index] = batch.stats.cache_hits > hits_before

    batch.stats.evictions = (service._cache.stats().evictions
                             - evictions_before)
    batch.stats.total_time = elapsed.seconds
    mode = "parallel" if concurrency > 1 and len(plans) > 1 else "serial"
    service._registry.counter(METRIC_BATCHES, {"mode": mode}).inc()
    return batch


__all__ = ["BatchResult", "execute_batch", "normalize_queries"]
