"""Calibrated cost model behind ``method="auto"`` (and ``lthd="auto"``).

The paper's central observation (Tables 2–3, Figure 7) is that the winning
method — DJ vs. BDJ vs. BSDJ vs. BSEG — and the best SegTable threshold
depend on the graph *and* the engine underneath.  Instead of hard-coded
node-count thresholds, the planner prices every eligible method with a
small analytic model over **measured unit costs**:

* ``statement_cost`` — fixed overhead of issuing one SQL statement;
* ``scan_row_cost`` — per-``TVisited``-row cost of the statistics
  statements (``min(...)``, ``TOP 1``) that every driver loop issues;
* ``row_cost`` — per-candidate-row cost of the combined E/M expansion
  over ``TEdges``;
* ``seg_row_cost`` — the same over the SegTable relations;
* ``seg_build_row_cost`` — per-stored-segment cost of the offline
  SegTable construction (prices ``lthd="auto"``).

:mod:`repro.service.calibrate` measures these on synthetic probe graphs;
uncalibrated sessions fall back to :func:`default_profile`, whose values
reproduce the paper's qualitative ordering.  The model also closes the
loop at runtime: :meth:`CostModel.observe` folds observed per-query wall
times into an exponentially-weighted per-method bias, so a mis-priced
method self-corrects under real traffic (see
:meth:`PathService.shortest_path`, which feeds every relational execution
back in).

Cost shapes (per method, fitted against the drivers in :mod:`repro.core`
on instrumented runs — expansions, statements, visited counts):

======  ===============================  ======================================
method  iterations                       dominant work
======  ===============================  ======================================
DJ      settled ball ``~ n/2``           4 cheap statements per settled node
BDJ     two balls, ``~ 4 sqrt(n)``       5 cheap statements per settled node
BSDJ    settled / tie-collapse           5 heavy (frontier-wide) statements
BSEG    BSDJ rounds ``/ hop gain``       segment fan-out per node, pruned
HOPS    radius, capped by ``max_hops``   3 frontier-wide statements per layer
REACH   radius                           same layered sweep, unbounded
======  ===============================  ======================================

Set-at-a-time rounds settle every minimal-distance candidate at once, so
their count is the settled-ball size divided by the expected tie-set width
(hub-heavy graphs collide distances constantly; near-chains never do) —
that, not a ``log n`` idealization, is what the instrumented drivers show.
"""

from __future__ import annotations

import hashlib
import math
import platform
import sys
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stats import SegTableBuildStats
from repro.graph.stats import GraphStatistics

PROFILE_VERSION = 1
"""Serialized :class:`CostProfile` format version."""

AUTO_CANDIDATES: Tuple[str, ...] = ("DJ", "BDJ", "BSDJ")
"""Methods ``auto`` prices on every graph; BSEG joins when a SegTable exists."""

# Uncalibrated defaults (roughly: an in-process Python engine on a laptop).
# Their absolute scale is irrelevant — only the ratios steer the planner —
# and calibration replaces them wholesale.
DEFAULT_STATEMENT_COST = 50e-6
DEFAULT_SCAN_ROW_COST = 0.10e-6
DEFAULT_ROW_COST = 2.0e-6
DEFAULT_SEG_ROW_COST = 2.2e-6
DEFAULT_SEG_BUILD_ROW_COST = 12e-6

# Theorem 1 pruning discount: BSEG's bidirectional pruning rule drops
# candidate segments whose lower bound already exceeds minCost (Table 3
# shows the visited-set shrink).  Applied to BSEG's expanded-row estimate.
SEG_PRUNE_FACTOR = 0.5

# Feedback smoothing: the global (scale) bias follows observations fast;
# per-method biases follow slowly, so the transient while the global factor
# catches up leaks only marginally into method ordering.  The clamp keeps a
# burst of outliers from pinning a method.
FEEDBACK_ALPHA = 0.25
METHOD_ALPHA = 0.05
BIAS_MIN, BIAS_MAX = 0.05, 20.0

# Plan hysteresis: once a method has been chosen for a graph, a challenger
# must price below this fraction of the incumbent to displace it.  Runtime
# feedback only ever observes the methods that actually run, so near-tie
# margins would otherwise oscillate on transient bias shifts — the classic
# adaptive-optimizer plan-stability problem.  The margin sits just under
# the planner benchmark's 15% regret gate: a held second-best plan stays
# within the regret budget.
HYSTERESIS_MARGIN = 0.88


def host_fingerprint() -> str:
    """Stable digest identifying the machine a profile was measured on.

    Unit costs are hardware- and interpreter-specific, so persisted
    profiles only reattach on a matching host (platform, machine, Python
    major.minor) — anything else re-calibrates rather than planning from
    another box's clock.
    """
    basis = "|".join((
        platform.node(), platform.machine(), platform.system(),
        f"py{sys.version_info.major}.{sys.version_info.minor}",
    ))
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:24]


@dataclass
class CostProfile:
    """Measured (or default) unit costs of one backend on one host."""

    backend: str = ""
    host: str = ""
    statement_cost: float = DEFAULT_STATEMENT_COST
    scan_row_cost: float = DEFAULT_SCAN_ROW_COST
    row_cost: float = DEFAULT_ROW_COST
    seg_row_cost: float = DEFAULT_SEG_ROW_COST
    seg_build_row_cost: float = DEFAULT_SEG_BUILD_ROW_COST
    method_bias: Dict[str, float] = field(default_factory=dict)
    global_bias: float = 1.0
    calibrated: bool = False
    calibrated_at: float = 0.0
    probe_seconds: float = 0.0

    def bias(self, method: str) -> float:
        return self.method_bias.get(method, 1.0)

    def clone(self) -> "CostProfile":
        """An independent copy (own ``method_bias`` dict).  Persisting or
        reattaching always clones: a live profile keeps mutating under
        runtime feedback, and a snapshot must not."""
        return replace(self, method_bias=dict(self.method_bias))

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROFILE_VERSION,
            "backend": self.backend,
            "host": self.host,
            "statement_cost": self.statement_cost,
            "scan_row_cost": self.scan_row_cost,
            "row_cost": self.row_cost,
            "seg_row_cost": self.seg_row_cost,
            "seg_build_row_cost": self.seg_build_row_cost,
            "method_bias": dict(self.method_bias),
            "global_bias": self.global_bias,
            "calibrated": self.calibrated,
            "calibrated_at": self.calibrated_at,
            "probe_seconds": self.probe_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CostProfile":
        return cls(
            backend=str(data.get("backend", "")),
            host=str(data.get("host", "")),
            statement_cost=float(data.get("statement_cost",
                                          DEFAULT_STATEMENT_COST)),
            scan_row_cost=float(data.get("scan_row_cost",
                                         DEFAULT_SCAN_ROW_COST)),
            row_cost=float(data.get("row_cost", DEFAULT_ROW_COST)),
            seg_row_cost=float(data.get("seg_row_cost",
                                        DEFAULT_SEG_ROW_COST)),
            seg_build_row_cost=float(data.get("seg_build_row_cost",
                                              DEFAULT_SEG_BUILD_ROW_COST)),
            method_bias={str(method): float(bias) for method, bias
                         in dict(data.get("method_bias", {})).items()},
            global_bias=float(data.get("global_bias", 1.0)),
            calibrated=bool(data.get("calibrated", False)),
            calibrated_at=float(data.get("calibrated_at", 0.0)),
            probe_seconds=float(data.get("probe_seconds", 0.0)),
        )


def default_profile(backend: str = "") -> CostProfile:
    """An uncalibrated profile with the built-in unit costs."""
    return CostProfile(backend=backend, host=host_fingerprint())


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of running one method on one graph.

    Attributes:
        method: the method priced.
        seconds: predicted wall-clock seconds (bias applied).
        iterations: predicted driver-loop iterations.
        statements: predicted statements issued.
        rows: predicted candidate rows through the E/M operators.
        eligible: ``False`` marks a method priced for the breakdown but
            not runnable right now (BSEG without a SegTable).
    """

    method: str
    seconds: float
    iterations: int
    statements: int
    rows: int
    eligible: bool = True

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "seconds": self.seconds,
            "iterations": self.iterations,
            "statements": self.statements,
            "rows": self.rows,
            "eligible": self.eligible,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CostEstimate":
        """Rebuild from :meth:`as_dict` output (remote ``explain()`` ships
        the per-method breakdown over the serve wire protocol)."""
        return cls(
            method=str(data["method"]),
            seconds=float(data["seconds"]),
            iterations=int(data["iterations"]),
            statements=int(data["statements"]),
            rows=int(data["rows"]),
            eligible=bool(data.get("eligible", True)),
        )


@dataclass(frozen=True)
class CostSample:
    """One feedback observation folded into the model."""

    method: str
    predicted: float
    observed: float


@dataclass(frozen=True)
class _Shape:
    """Structural estimate of one method's run on one graph."""

    iterations: int
    fixed_statements: int   # expand / finalize — cost is per statement
    scan_statements: int    # statistics statements — cost also scans TVisited
    rows: float             # candidate rows through E/M
    visited: float          # TVisited rows (drives scan-statement cost)
    seg_rows: bool = False  # rows go through the SegTable relation
    statement_weight: float = 1.0  # set-at-a-time statements touch whole
    #                                frontiers and carry subqueries; they
    #                                cost a multiple of a point statement

# Per-statement weight of the set-at-a-time statements (Listing 4): the
# frontier UPDATE and the frontier-wide join are measurably heavier than
# Listing 2's point statements.  BSEG's Theorem-1 pruning trims the
# frontier-wide work those statements do (instrumented runs show ~35%
# smaller visited sets and commensurately lighter scans), hence the
# discount.
SET_STATEMENT_WEIGHT = 2.0
BSEG_STATEMENT_WEIGHT = 1.4


def _branching(stats: GraphStatistics) -> float:
    """Effective branching factor: the mean out-degree, lifted by a
    heavy tail (a hub widens frontiers far beyond the mean — the paper's
    Power graphs are the motivating case)."""
    base = max(1.05, stats.avg_out_degree)
    if stats.max_out_degree > 0:
        base = max(base, min(64.0, math.sqrt(stats.max_out_degree)))
    return base


def _radius(stats: GraphStatistics) -> int:
    """Half-diameter estimate ``log_b n``, honest about near-chain graphs
    (branching ~1 makes the radius linear, which is what sinks
    set-at-a-time there)."""
    nodes = max(2, stats.num_nodes)
    branching = _branching(stats)
    return max(1, min(nodes, math.ceil(math.log(nodes) / math.log(branching))))


def _hop_weight(stats: GraphStatistics) -> float:
    """Expected edge weight along shortest paths.  Dijkstra favours light
    edges, so this sits well below the uniform mean; the blend keeps it
    exact for uniform weights (``w_min == w_max``)."""
    if stats.max_edge_weight <= 0:
        return 1.0
    return max(stats.min_edge_weight,
               stats.min_edge_weight * 0.7 + stats.max_edge_weight * 0.15,
               1e-9)


def _segment_fanout(stats: GraphStatistics, lthd: float) -> float:
    """Predicted stored segments per node for threshold ``lthd`` (the
    Figure 9 index-size curve): every path of total weight <= lthd
    collapses into one segment, so fan-out compounds by the branching
    factor per expected hop."""
    branching = _branching(stats)
    hops = _hop_gain(stats, lthd)
    fanout = branching ** min(hops, 8.0)
    return min(float(max(1, stats.num_nodes - 1)),
               max(stats.avg_out_degree, fanout))


def _hop_gain(stats: GraphStatistics, lthd: float) -> float:
    """How many original hops one segment covers on average."""
    return max(1.0, lthd / _hop_weight(stats))


def _tie_width(stats: GraphStatistics) -> float:
    """Expected size of the minimal-distance candidate set (how many nodes
    one set-at-a-time round settles at once).

    Instrumented runs show the collapse tracks degree *skew*, not raw
    branching: hubs put many nodes at colliding distances (power graph:
    ~5 nodes per round), while uniform-degree grids and chains settle
    barely more than one (~1.3).  Fitted as ``1.2 * skew^0.7``.
    """
    if stats.avg_out_degree <= 0:
        return 1.0
    skew = stats.max_out_degree / stats.avg_out_degree
    return max(1.0, 1.2 * skew ** 0.7)


def _settled_bidirectional(stats: GraphStatistics) -> float:
    """Nodes the two meeting balls settle together (fitted ``4 sqrt(n)``,
    capped at the graph)."""
    nodes = max(2, stats.num_nodes)
    return min(float(nodes), 4.0 * math.sqrt(nodes))


def _bsdj_iterations(stats: GraphStatistics) -> int:
    settled = _settled_bidirectional(stats)
    return max(2, math.ceil(max(settled / _tie_width(stats),
                                2.0 * _radius(stats))))


def _shape(method: str, stats: GraphStatistics,
           segtable_lthd: Optional[float],
           segtable: Optional[SegTableBuildStats],
           max_hops: Optional[int] = None) -> _Shape:
    nodes = max(2, stats.num_nodes)
    degree = max(1.0, stats.avg_out_degree)

    if method in ("HOPS", "REACH"):
        # Layered hop BFS (repro.core.multi): one whole-layer F/E/M round
        # per hop of the witness path, so iterations track the radius —
        # capped by the hop budget when one applies.  Each round issues
        # the frontier UPDATE, the insert-only hop expansion, the
        # finalize UPDATE, and one point probe for the target.
        iterations = _radius(stats)
        if max_hops is not None:
            iterations = max(1, min(iterations, max_hops))
        visited = min(float(nodes),
                      max(degree + 1.0,
                          _branching(stats) ** min(float(iterations), 8.0)))
        return _Shape(iterations=iterations,
                      fixed_statements=3 * iterations,
                      scan_statements=iterations,
                      rows=visited * degree,
                      visited=visited,
                      statement_weight=SET_STATEMENT_WEIGHT)

    if method == "DJ":
        # Settles one node per iteration until the target's ball is done.
        iterations = max(1, nodes // 2)
        visited = min(float(nodes), iterations * degree + 1)
        return _Shape(iterations=iterations,
                      fixed_statements=2 * iterations,
                      scan_statements=2 * iterations,
                      rows=iterations * degree,
                      visited=visited)
    if method == "BDJ":
        # Two balls meeting in the middle, still one node at a time.
        iterations = max(1, math.ceil(_settled_bidirectional(stats)))
        visited = min(float(nodes), iterations * degree + 2)
        return _Shape(iterations=iterations,
                      fixed_statements=2 * iterations,
                      scan_statements=3 * iterations,
                      rows=iterations * degree,
                      visited=visited)
    if method == "BSDJ":
        # Settles every minimal-distance candidate per round.
        iterations = _bsdj_iterations(stats)
        settled = _settled_bidirectional(stats)
        visited = min(float(nodes), settled * degree + 2)
        return _Shape(iterations=iterations,
                      fixed_statements=2 * iterations,
                      scan_statements=3 * iterations,
                      rows=settled * degree,
                      visited=visited,
                      statement_weight=SET_STATEMENT_WEIGHT)
    if method == "BSEG":
        lthd = segtable_lthd if segtable_lthd is not None else (
            segtable.lthd if segtable is not None else _hop_weight(stats))
        # One segment hop covers `gain` original hops, but the driver's
        # alternating rounds and termination test put a floor under the
        # round count — instrumented runs show sqrt(gain), not gain.
        gain = math.sqrt(_hop_gain(stats, lthd))
        if segtable is not None and segtable.encoding_number > 0:
            fanout = max(1.0, segtable.encoding_number / (2.0 * nodes))
        else:
            fanout = _segment_fanout(stats, lthd)
        iterations = max(3, math.ceil(_bsdj_iterations(stats) / gain))
        settled = max(2.0, _settled_bidirectional(stats) / gain)
        visited = min(float(nodes), settled * fanout + 2)
        return _Shape(iterations=iterations,
                      fixed_statements=2 * iterations,
                      scan_statements=3 * iterations,
                      rows=settled * fanout * SEG_PRUNE_FACTOR,
                      visited=visited,
                      seg_rows=True,
                      statement_weight=BSEG_STATEMENT_WEIGHT)
    raise ValueError(f"cost model cannot shape method {method!r}")


class CostModel:
    """Prices methods from a :class:`CostProfile` and learns from feedback.

    Thread-safe: observations may arrive from the parallel executor's
    worker threads while other threads plan.
    """

    def __init__(self, profile: Optional[CostProfile] = None) -> None:
        self.profile = profile if profile is not None else default_profile()
        self._lock = threading.Lock()
        self._samples: Dict[str, int] = {}
        self._recent: List[CostSample] = []
        self._incumbents: Dict[Tuple, str] = {}

    # -- pricing -----------------------------------------------------------------

    def estimate(self, method: str, stats: GraphStatistics,
                 segtable_lthd: Optional[float] = None,
                 segtable: Optional[SegTableBuildStats] = None,
                 eligible: bool = True,
                 max_hops: Optional[int] = None) -> CostEstimate:
        """Price one method on one graph."""
        shape = _shape(method, stats, segtable_lthd, segtable,
                       max_hops=max_hops)
        profile = self.profile
        row_cost = profile.seg_row_cost if shape.seg_rows else profile.row_cost
        statements = shape.fixed_statements + shape.scan_statements
        seconds = (
            statements * shape.statement_weight * profile.statement_cost
            + shape.scan_statements * (shape.visited / 2.0)
            * profile.scan_row_cost
            + shape.rows * row_cost
        ) * profile.global_bias * profile.bias(method)
        return CostEstimate(method=method, seconds=seconds,
                            iterations=shape.iterations,
                            statements=statements,
                            rows=int(shape.rows), eligible=eligible)

    def structural_seconds(self, method: str, stats: GraphStatistics,
                           segtable_lthd: Optional[float] = None,
                           segtable: Optional[SegTableBuildStats] = None,
                           max_hops: Optional[int] = None) -> float:
        """Bias-free price of one method: the structural shape times the
        profile's unit costs, with neither the global nor the per-method
        feedback bias applied.

        Runtime feedback mutates the biases continuously, so any decision
        that must be reproducible run-to-run — the batch layer's
        shared-frontier grouping, most notably — compares structural
        prices instead of :meth:`estimate` output.
        """
        shape = _shape(method, stats, segtable_lthd, segtable,
                       max_hops=max_hops)
        profile = self.profile
        row_cost = profile.seg_row_cost if shape.seg_rows else profile.row_cost
        statements = shape.fixed_statements + shape.scan_statements
        return (statements * shape.statement_weight * profile.statement_cost
                + shape.scan_statements * (shape.visited / 2.0)
                * profile.scan_row_cost
                + shape.rows * row_cost)

    def breakdown(self, stats: GraphStatistics, has_segtable: bool,
                  segtable_lthd: Optional[float] = None,
                  segtable: Optional[SegTableBuildStats] = None
                  ) -> Dict[str, CostEstimate]:
        """Per-method estimates, cheapest decision basis for ``auto``.

        BSEG is always priced (the breakdown shows what the index *would*
        buy) but flagged ineligible without a SegTable.
        """
        estimates: Dict[str, CostEstimate] = {}
        for method in AUTO_CANDIDATES:
            estimates[method] = self.estimate(method, stats)
        estimates["BSEG"] = self.estimate(
            "BSEG", stats, segtable_lthd=segtable_lthd, segtable=segtable,
            eligible=has_segtable)
        return estimates

    @staticmethod
    def _incumbent_key(stats: GraphStatistics, has_segtable: bool,
                       segtable_lthd: Optional[float]) -> Tuple:
        return (stats.num_nodes, stats.num_edges, stats.max_out_degree,
                round(stats.avg_out_degree, 4), has_segtable, segtable_lthd)

    def choose(self, stats: GraphStatistics, has_segtable: bool,
               segtable_lthd: Optional[float] = None,
               segtable: Optional[SegTableBuildStats] = None
               ) -> Tuple[str, str, Dict[str, CostEstimate]]:
        """Pick the cheapest eligible method, with plan hysteresis.

        Returns ``(method, reason, breakdown)``; the reason names the
        predicted cost and the runner-up so ``explain()`` reads like a
        plan, not a verdict.  Once a method is chosen for a graph shape it
        stays the plan until a challenger prices below
        :data:`HYSTERESIS_MARGIN` of it, so runtime feedback — which only
        ever observes the running method — cannot oscillate a near-tie.
        """
        estimates = self.breakdown(stats, has_segtable,
                                   segtable_lthd=segtable_lthd,
                                   segtable=segtable)
        eligible = [e for e in estimates.values() if e.eligible]
        ranked = sorted(eligible, key=lambda e: e.seconds)
        best = ranked[0]
        origin = "calibrated" if self.profile.calibrated else "default"
        key = self._incumbent_key(stats, has_segtable, segtable_lthd)
        with self._lock:
            incumbent = self._incumbents.get(key)
            held = estimates.get(incumbent) if incumbent is not None else None
            if (held is not None and held.eligible
                    and held.method != best.method
                    and best.seconds > HYSTERESIS_MARGIN * held.seconds):
                reason = (f"{origin} cost model: holding {held.method} "
                          f"(~{held.seconds * 1e3:.3g} ms); {best.method} "
                          f"at {best.seconds * 1e3:.3g} ms is within the "
                          f"hysteresis margin")
                return held.method, reason, estimates
            if len(self._incumbents) > 256:
                self._incumbents.clear()
            self._incumbents[key] = best.method
        if len(ranked) > 1:
            runner = ranked[1]
            reason = (f"{origin} cost model: {best.method} predicted "
                      f"{best.seconds * 1e3:.3g} ms vs {runner.method} "
                      f"{runner.seconds * 1e3:.3g} ms")
        else:
            reason = (f"{origin} cost model: {best.method} predicted "
                      f"{best.seconds * 1e3:.3g} ms")
        return best.method, reason, estimates

    # -- runtime feedback --------------------------------------------------------

    def observe(self, method: str, stats: GraphStatistics,
                observed_seconds: float,
                segtable_lthd: Optional[float] = None,
                segtable: Optional[SegTableBuildStats] = None) -> None:
        """Fold one observed ``(method, stats, wall time)`` sample in.

        Mispricing splits into two exponentially-weighted factors:

        * the **global bias** — shared by every method — absorbs scale
          errors (slower hardware, load, a generally mis-measured
          profile), so traffic that happens to run one method cannot
          silently flip the ordering against methods that never ran;
        * the **per-method bias** absorbs what is specific to this method
          relative to that shared scale, so a genuinely mis-priced method
          self-corrects once its own observations say so.
        """
        if observed_seconds <= 0:
            return
        try:
            base = self.estimate(method, stats, segtable_lthd=segtable_lthd,
                                 segtable=segtable)
        except ValueError:
            return  # memory methods and friends are not priced
        with self._lock:
            profile = self.profile
            bias = profile.bias(method)
            carried = profile.global_bias * bias
            # base.seconds carries both factors; strip them to compare
            # against the raw structural prediction.
            structural = base.seconds / carried if carried > 0 else base.seconds
            if structural <= 0:
                return
            ratio = observed_seconds / structural
            profile.global_bias = min(BIAS_MAX, max(
                BIAS_MIN,
                (1 - FEEDBACK_ALPHA) * profile.global_bias
                + FEEDBACK_ALPHA * ratio))
            relative = ratio / profile.global_bias
            profile.method_bias[method] = min(BIAS_MAX, max(
                BIAS_MIN,
                (1 - METHOD_ALPHA) * bias + METHOD_ALPHA * relative))
            self._samples[method] = self._samples.get(method, 0) + 1
            self._recent.append(CostSample(method=method,
                                           predicted=base.seconds,
                                           observed=observed_seconds))
            del self._recent[:-64]

    def feedback_samples(self, method: Optional[str] = None) -> int:
        """How many observations have been folded in (optionally per
        method)."""
        with self._lock:
            if method is not None:
                return self._samples.get(method, 0)
            return sum(self._samples.values())

    def recent_samples(self) -> List[CostSample]:
        """The last few feedback observations (newest last)."""
        with self._lock:
            return list(self._recent)

    # -- lthd selection (Figure 7's trade-off, automated) ------------------------

    def predict_segtable(self, stats: GraphStatistics, lthd: float
                         ) -> Dict[str, float]:
        """Predict one threshold's trade-off: online BSEG seconds per
        query, stored segments, and offline construction seconds."""
        online = self.estimate("BSEG", stats, segtable_lthd=lthd).seconds
        fanout = _segment_fanout(stats, lthd)
        segments = 2.0 * max(1, stats.num_nodes) * fanout  # out + in tables
        gain = _hop_gain(stats, lthd)
        # Construction re-merges the working table once per expansion round
        # (~hop gain rounds, Section 4.2), so build work scales with
        # segments x rounds.
        build = segments * max(1.0, gain) * self.profile.seg_build_row_cost
        return {"lthd": lthd, "online_seconds": online,
                "segments": segments, "build_seconds": build}

    def choose_lthd(self, stats: GraphStatistics,
                    candidates: Optional[Sequence[float]] = None,
                    amortize_queries: int = 500
                    ) -> Tuple[float, List[Dict[str, float]]]:
        """Pick the threshold minimizing amortized cost per query.

        ``objective = online(lthd) + build(lthd) / amortize_queries`` —
        exactly Figure 7's trade-off: a larger ``lthd`` buys fewer, fatter
        expansions online but pays exponentially in construction and index
        size.  ``amortize_queries`` says how many queries the offline
        build is expected to serve.

        Returns ``(lthd, predictions)`` with one prediction row per
        candidate (the chosen row carries ``"chosen": 1.0``).
        """
        if amortize_queries < 1:
            raise ValueError("amortize_queries must be >= 1")
        if candidates is None:
            base = max(stats.min_edge_weight, _hop_weight(stats) / 2, 1e-9)
            candidates = sorted({round(base * factor, 6)
                                 for factor in (2.0, 3.0, 4.0, 5.0, 6.0, 8.0)})
        if not candidates:
            raise ValueError("choose_lthd needs at least one candidate")
        rows: List[Dict[str, float]] = []
        best_index = 0
        best_objective = math.inf
        for index, lthd in enumerate(candidates):
            prediction = self.predict_segtable(stats, lthd)
            prediction["objective"] = (
                prediction["online_seconds"]
                + prediction["build_seconds"] / amortize_queries)
            rows.append(prediction)
            if prediction["objective"] < best_objective:
                best_objective = prediction["objective"]
                best_index = index
        rows[best_index]["chosen"] = 1.0
        return float(candidates[best_index]), rows


__all__ = [
    "AUTO_CANDIDATES",
    "CostEstimate",
    "CostModel",
    "CostProfile",
    "CostSample",
    "PROFILE_VERSION",
    "default_profile",
    "host_fingerprint",
]
