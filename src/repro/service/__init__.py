"""Service layer: the session-based public query API.

This package is the front door of the library.  It separates *what* a
shortest-path query is (:class:`QuerySpec`) from *how* it executes — the
same split the paper's FEM framework makes between the search algorithms
and the relational engine underneath:

* the **backend registry** (:func:`register_backend`,
  :func:`available_backends`) makes graph stores pluggable by name;
* :class:`PathService` (alias :class:`Session`) hosts multiple named
  graphs, manages store lifecycle and memoizes SegTable builds;
* the **planner** resolves ``method="auto"`` into DJ/BDJ/BSDJ/BSEG with a
  **calibrated cost model** (:mod:`repro.service.costmodel`): per-backend
  unit costs measured by :mod:`repro.service.calibrate`, persisted in the
  catalog manifest, corrected by runtime feedback from every executed
  query, and stabilized by plan hysteresis; the same model drives
  ``build_segtable(lthd="auto")``, and :meth:`PathService.explain`
  returns the chosen :class:`QueryPlan` with its per-method cost
  breakdown and predicted FEM iteration shape;
* :meth:`PathService.shortest_path_many` executes batches grouped per
  graph behind a shared LRU result cache and reports
  :class:`~repro.core.stats.BatchStats`;
* with ``concurrency=N`` a batch runs across N worker threads
  (:class:`Executor`): each graph grows a :class:`StorePool` of reader
  connections (cloned or rehydrated per the backend's
  ``supports_concurrent_readers`` capability), identical in-flight
  queries collapse onto one execution, and results stay in input order,
  identical to serial;
* the shared :class:`ResultCache` also stores **negative verdicts**
  (repeated unreachable pairs skip the full search) and evicts by TTL
  and approximate memory footprint on top of the LRU entry bound;
* a service bound to a **persistent catalog**
  (``PathService(catalog_path=...)`` / :meth:`PathService.open`) records
  every ``db_path``-backed graph and SegTable it builds, and reattaches
  them warm across processes — no edge reload, no statistics rescan,
  zero index rebuilds (see :mod:`repro.catalog`);
* a service opened as one shard of a :class:`repro.shard.ShardRouter`
  carries its shard name as ``shard_id``, appended to every cache and
  single-flight key so entries stay disjoint across shards.

The legacy ``RelationalPathFinder`` / module-level ``shortest_path`` API in
:mod:`repro.core.api` remains as a deprecation shim over this layer.
"""

from repro.core.stats import BatchStats
from repro.core.store.registry import (
    available_backends,
    backend_factory,
    create_store,
    register_backend,
    unregister_backend,
)
from repro.service.batch import BatchResult, execute_batch, normalize_queries
from repro.service.cache import (
    CacheStats,
    InFlightMap,
    ResultCache,
    estimate_result_bytes,
)
from repro.service.calibrate import calibrate_profile
from repro.service.costmodel import (
    CostEstimate,
    CostModel,
    CostProfile,
    default_profile,
    host_fingerprint,
)
from repro.service.executor import Executor
from repro.service.pool import PoolStats, StorePool
from repro.service.planner import (
    AUTO_METHOD,
    MEMORY_METHODS,
    METHODS,
    QueryPlan,
    QuerySpec,
    RELATIONAL_METHODS,
    plan_query,
)
from repro.service.session import DEFAULT_GRAPH, PathService, Session, run_in_memory

__all__ = [
    "AUTO_METHOD",
    "BatchResult",
    "BatchStats",
    "CacheStats",
    "CostEstimate",
    "CostModel",
    "CostProfile",
    "DEFAULT_GRAPH",
    "Executor",
    "InFlightMap",
    "MEMORY_METHODS",
    "METHODS",
    "PathService",
    "PoolStats",
    "QueryPlan",
    "StorePool",
    "QuerySpec",
    "RELATIONAL_METHODS",
    "ResultCache",
    "Session",
    "available_backends",
    "backend_factory",
    "calibrate_profile",
    "create_store",
    "default_profile",
    "estimate_result_bytes",
    "host_fingerprint",
    "execute_batch",
    "normalize_queries",
    "plan_query",
    "register_backend",
    "run_in_memory",
    "unregister_backend",
]
