"""Parallel batch execution over per-graph store pools.

The paper's operators are independent across source/target pairs, so a
batch of shortest-path queries is embarrassingly parallel — the only shared
mutable state is each graph's store, which :class:`~repro.service.pool.StorePool`
multiplies into per-worker reader connections.  :class:`Executor` runs one
planned batch across a worker-thread pool:

* **order preservation** — workers write into ``results[index]`` slots, so
  the output order is the input order no matter how execution interleaves;
* **per-query pool checkout** — a worker borrows a store only for the
  duration of one query, so a 64-query batch over a 4-member pool keeps
  all 4 members saturated;
* **single-flight dedup** — identical queries that are *currently
  executing* collapse onto one leader via
  :class:`~repro.service.cache.InFlightMap`; followers receive the
  leader's result without touching a store (the LRU cache only helps once
  a result is finished).  Flight keys are the service's cache keys, so
  they carry the hosting shard's identity (``shard_id``) and can never
  collide across the shards of a :class:`repro.shard.ShardRouter`;
* **timings** — waiting-for-a-store seconds and executing seconds are
  summed into the batch's extended
  :class:`~repro.core.stats.BatchStats` (``queue_time`` /
  ``execute_time``), alongside wall-clock ``total_time``.

Serial semantics stay bit-identical: ``concurrency=1`` batches never enter
this module (see :func:`repro.service.batch.execute_batch`).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import AbstractSet, Dict, Optional, Sequence, TYPE_CHECKING

from repro.errors import (
    ConcurrencyError,
    DeadlineExceededError,
    PathNotFoundError,
)
from repro.obs.schema import METRIC_SINGLE_FLIGHT
from repro.service.cache import InFlightMap
from repro.service.planner import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.batch import BatchResult
    from repro.service.session import PathService


class Executor:
    """Runs one planned batch across ``concurrency`` worker threads.

    Args:
        service: the hosting :class:`~repro.service.session.PathService`.
        concurrency: worker-thread count; each graph's pool is grown (up
            to its backend's capability) to match before execution starts.
        checkout_timeout: per-query bound, in seconds, on waiting for a
            pooled store (``None`` waits indefinitely); exceeding it raises
            :class:`~repro.errors.PoolTimeoutError` out of the batch.
    """

    def __init__(self, service: "PathService", concurrency: int,
                 checkout_timeout: Optional[float] = None) -> None:
        if concurrency < 1:
            raise ValueError("executor concurrency must be at least 1")
        self._service = service
        self._concurrency = concurrency
        self._checkout_timeout = checkout_timeout
        self._inflight = InFlightMap()
        self._lock = threading.Lock()
        self._errors: Dict[int, BaseException] = {}

    def run(self, plans: Sequence[QueryPlan], batch: "BatchResult",
            raise_on_unreachable: bool = False,
            skip: Optional[AbstractSet[int]] = None,
            seed_errors: Optional[Dict[int, BaseException]] = None) -> None:
        """Execute ``plans`` and fill ``batch`` in place (results,
        ``from_cache`` flags, and stats counters).

        The first failure *by input position* is re-raised after every
        worker finishes — unlike the serial path, later queries still run,
        but the surfaced exception is deterministic.

        Args:
            skip: input positions already answered by an earlier pass
                (the batch layer's shared-frontier groups); no worker runs
                them.
            seed_errors: failures from that earlier pass, keyed by input
                position — merged into the error map so the surfaced
                exception is still the smallest-index failure overall.
        """
        service = self._service
        if seed_errors:
            self._errors.update(seed_errors)
        indices = (list(range(len(plans))) if not skip
                   else [i for i in range(len(plans)) if i not in skip])
        if not indices:
            if self._errors:
                raise self._errors[min(self._errors)]
            return
        for name in {plans[i].spec.graph for i in indices}:
            service._host(name).pool.resize(self._concurrency)
        workers = max(1, min(self._concurrency, len(indices)))
        batch.stats.concurrency = workers
        self._raise_on_unreachable = raise_on_unreachable
        with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-batch") as threads:
            futures = [threads.submit(self._run_one, index, plans[index],
                                      batch)
                       for index in indices]
            wait(futures)
        for future in futures:
            # Worker bodies catch everything into self._errors; a raise here
            # would be a bug in the executor itself — surface it.
            future.result()
        if self._errors:
            raise self._errors[min(self._errors)]

    # -- one query ---------------------------------------------------------------

    def _run_one(self, index: int, plan: QueryPlan,
                 batch: "BatchResult") -> None:
        try:
            self._answer(index, plan, batch)
        except PathNotFoundError as exc:
            with self._lock:
                batch.stats.not_found += 1
                if self._raise_on_unreachable:
                    self._errors[index] = exc
        except DeadlineExceededError as exc:
            # Positional, like the serial path: the expired query reports
            # at its own index and its siblings finish normally.
            with self._lock:
                batch.stats.deadline_exceeded += 1
                batch.errors[index] = exc
        except BaseException as exc:  # surfaced after the batch drains
            with self._lock:
                self._errors[index] = exc

    def _answer(self, index: int, plan: QueryPlan,
                batch: "BatchResult") -> None:
        service = self._service
        key = service._cache_key(plan)
        if key is not None:
            # Result copies happen OUTSIDE the executor lock throughout:
            # the source object is immutable once published, and copying a
            # long path under the one batch-wide mutex would serialize all
            # workers on the handout hot path.
            cached = service._cache.get(key)
            if cached is not None:
                copied = service._copy_result(cached)
                with self._lock:
                    batch.stats.cache_hits += 1
                    batch.from_cache[index] = True
                    batch.results[index] = copied
                return
            verdict = service._cache.get_negative(key)
            if verdict is not None:
                # Known-unreachable pair: skip the store entirely (the
                # serial path does the same inside service._execute).
                with self._lock:
                    batch.stats.negative_hits += 1
                raise PathNotFoundError(verdict)
            flight, leader = self._inflight.lease(key)
            if not leader:
                result = flight.wait()  # re-raises the leader's error
                copied = service._copy_result(result)
                service._registry.counter(METRIC_SINGLE_FLIGHT).inc()
                with self._lock:
                    batch.stats.single_flight_hits += 1
                    batch.from_cache[index] = True
                    batch.results[index] = copied
                return
            # Double-check the cache now that we hold the flight: a previous
            # leader may have resolved (and vacated) this key between our
            # miss above and the lease, and its result is in the cache.
            # peek() keeps the counters untouched — this query's lookup was
            # already counted as a miss above.
            cached = service._cache.peek(key)
            if cached is not None:
                self._inflight.resolve(key, cached)
                copied = service._copy_result(cached)
                with self._lock:
                    batch.stats.cache_hits += 1
                    batch.from_cache[index] = True
                    batch.results[index] = copied
                return
        try:
            result, queued, executed = service._run_timed(
                plan, checkout_timeout=self._checkout_timeout)
        except BaseException as exc:
            if key is not None:
                if isinstance(exc, PathNotFoundError):
                    service._cache.put_negative(key, str(exc))
                self._inflight.fail(key, exc)
            # Serial parity: unreachable pairs still ran a full search and
            # count as executed.  Pool failures (timeout, closed) happen
            # *before* any store was obtained, so they do not.
            if not isinstance(exc, ConcurrencyError):
                with self._lock:
                    batch.stats.executed += 1
            raise
        if key is not None:
            service._cache.put(key, result)
            self._inflight.resolve(key, result)
            handout = service._copy_result(result)
        else:
            handout = result
        with self._lock:
            batch.stats.executed += 1
            batch.stats.queue_time += queued
            batch.stats.execute_time += executed
            if key is not None:
                batch.stats.cache_misses += 1
            batch.results[index] = handout


__all__ = ["Executor"]
