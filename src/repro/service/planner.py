"""Query specification and planning.

The planner turns a declarative :class:`QuerySpec` into an executable
:class:`QueryPlan`: it validates the method name, and — for
``method="auto"`` — picks among the paper's algorithms from the hosted
graph's statistics:

* ``BSEG`` whenever the graph's SegTable index is available (the paper's
  Table 3 shows it dominating the other methods once built);
* ``DJ`` on graphs small enough that bidirectional bookkeeping costs more
  than it saves;
* ``BSDJ`` on large or heavy-tailed graphs, where set-at-a-time expansion
  amortizes the per-statement overhead over wide frontiers (Table 2);
* ``BDJ`` otherwise.

The plan also predicts the FEM iteration shape (frontier mode, operator
sequence and an order-of-magnitude iteration estimate), which
:meth:`PathService.explain` surfaces without running the query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.bfs import bidirectional_bfs
from repro.core.bidirectional import bidirectional_dijkstra, bidirectional_set_dijkstra
from repro.core.bseg import bidirectional_segtable_search
from repro.core.dijkstra import dijkstra_single_direction
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.stats import (
    OPERATOR_E,
    OPERATOR_F,
    OPERATOR_M,
    PHASE_PATH_EXPANSION,
    PHASE_PATH_RECOVERY,
    PHASE_STATISTICS,
)
from repro.errors import InvalidQueryError
from repro.graph.stats import GraphStatistics

RELATIONAL_METHODS: Dict[str, Callable[..., PathResult]] = {
    "DJ": dijkstra_single_direction,
    "BDJ": bidirectional_dijkstra,
    "BSDJ": bidirectional_set_dijkstra,
    "BBFS": bidirectional_bfs,
    "BSEG": bidirectional_segtable_search,
}

MEMORY_METHODS = ("MDJ", "MBDJ")

METHODS = tuple(RELATIONAL_METHODS) + MEMORY_METHODS
"""All supported method names."""

AUTO_METHOD = "AUTO"

# Planner thresholds: below SMALL_GRAPH_NODES a single-direction scan beats
# the bidirectional bookkeeping; past LARGE_GRAPH_NODES (or with skewed /
# dense degrees) wide frontiers favour set-at-a-time expansion.
SMALL_GRAPH_NODES = 64
LARGE_GRAPH_NODES = 1_000
DENSE_AVG_DEGREE = 2.5
SKEWED_DEGREE_RATIO = 8.0

# Frontier modes (the two expansion shapes of Listings 2 and 4).
NODE_AT_A_TIME = "node-at-a-time"
SET_AT_A_TIME = "set-at-a-time"


def normalize_method(method: str) -> str:
    """Upper-case ``method``, raising for names the service cannot run.

    Returns ``AUTO_METHOD`` for the ``"auto"`` sentinel.
    """
    normalized = method.upper()
    if normalized == AUTO_METHOD:
        return AUTO_METHOD
    if normalized not in METHODS:
        raise InvalidQueryError(
            f"unknown method {method!r}; expected one of {METHODS + ('auto',)}"
        )
    return normalized


@dataclass(frozen=True)
class QuerySpec:
    """One declarative shortest-path query.

    Attributes:
        source: source node id.
        target: target node id.
        graph: name of the hosted graph to query.
        method: a method name from :data:`METHODS`, or ``"auto"`` to let the
            planner choose.
        sql_style: ``"nsql"`` or ``"tsql"``.
        max_iterations: optional safety cap on expansions.
    """

    source: int
    target: int
    graph: str = "default"
    method: str = "auto"
    sql_style: str = NSQL
    max_iterations: Optional[int] = None


@dataclass
class QueryPlan:
    """The executable plan the planner chose for a :class:`QuerySpec`.

    Attributes:
        spec: the query being planned.
        method: the resolved method name (never ``"auto"``).
        reason: one-line justification of the choice.
        uses_segtable: whether execution expands over ``TOutSegs``/``TInSegs``.
        bidirectional: whether two searches run toward each other.
        frontier_mode: ``"node-at-a-time"`` (Listing 2) or
            ``"set-at-a-time"`` (Listing 4).
        phases: FEM phase labels in execution order.
        operators_per_iteration: operator labels of one FEM iteration.
        estimated_iterations: order-of-magnitude FEM iteration estimate
            derived from the graph statistics (not a promise); ``None``
            when the plan was made without computing statistics.
    """

    spec: QuerySpec
    method: str
    reason: str
    uses_segtable: bool = False
    bidirectional: bool = True
    frontier_mode: str = SET_AT_A_TIME
    phases: Tuple[str, ...] = (PHASE_STATISTICS, PHASE_PATH_EXPANSION,
                               PHASE_PATH_RECOVERY)
    operators_per_iteration: Tuple[str, ...] = (OPERATOR_F, OPERATOR_E, OPERATOR_M)
    estimated_iterations: Optional[int] = None

    def describe(self) -> str:
        """Human-readable plan summary (what ``explain()`` prints)."""
        direction = "bidirectional" if self.bidirectional else "single-direction"
        if self.estimated_iterations is None:
            expectation = ""
        else:
            expectation = f"  (~{self.estimated_iterations} iterations expected)"
        lines = [
            f"method: {self.method} ({direction}, {self.frontier_mode})",
            f"reason: {self.reason}",
            f"relation: {'TOutSegs/TInSegs (SegTable)' if self.uses_segtable else 'TEdges'}",
            f"phases: {' -> '.join(self.phases)}",
            "iteration: " + " -> ".join(self.operators_per_iteration) + expectation,
        ]
        return "\n".join(lines)


StatsSource = Union[GraphStatistics, Callable[[], GraphStatistics]]


def plan_query(spec: QuerySpec, stats: StatsSource,
               has_segtable: bool, estimate: bool = False) -> QueryPlan:
    """Resolve ``spec`` into a :class:`QueryPlan`.

    Args:
        spec: the query to plan.
        stats: statistics of the graph named by ``spec.graph``, or a
            zero-argument callable producing them.  A callable is invoked
            only when the plan actually needs statistics (``"auto"``
            resolution or ``estimate=True``), keeping explicit-method
            planning free of the O(V+E) statistics scan.
        has_segtable: whether that graph's store has a SegTable built.
        estimate: fill :attr:`QueryPlan.estimated_iterations` even for
            explicit methods (``explain()`` wants it; the query hot path
            does not).

    Raises:
        InvalidQueryError: for unknown methods, or an explicit ``BSEG``
            request without a SegTable.
    """
    resolved: Optional[GraphStatistics] = (
        None if callable(stats) else stats
    )

    def _stats() -> GraphStatistics:
        nonlocal resolved
        if resolved is None:
            resolved = stats()  # type: ignore[operator]
        return resolved

    method = normalize_method(spec.method)
    if method == AUTO_METHOD:
        method, reason = _choose_method(_stats(), has_segtable)
    elif method == "BSEG" and not has_segtable:
        raise InvalidQueryError(
            "BSEG requires a SegTable; build one with build_segtable() first"
        )
    else:
        reason = "method requested explicitly"
    plan = _shape_plan(spec, method, reason)
    if estimate or resolved is not None:
        plan.estimated_iterations = _estimate_iterations(method, _stats())
    return plan


def _choose_method(stats: GraphStatistics,
                   has_segtable: bool) -> Tuple[str, str]:
    if has_segtable:
        return "BSEG", "SegTable index is available; segment expansion dominates"
    if stats.num_nodes <= SMALL_GRAPH_NODES:
        return "DJ", (
            f"graph has only {stats.num_nodes} nodes "
            f"(<= {SMALL_GRAPH_NODES}); single-direction search is cheapest"
        )
    skewed = (stats.avg_out_degree > 0 and
              stats.max_out_degree >= SKEWED_DEGREE_RATIO * stats.avg_out_degree)
    if (stats.num_nodes >= LARGE_GRAPH_NODES
            or stats.avg_out_degree >= DENSE_AVG_DEGREE or skewed):
        shape = ("heavy-tailed degree distribution" if skewed
                 else "large or dense graph")
        return "BSDJ", f"{shape}; set-at-a-time expansion amortizes statements"
    return "BDJ", "moderate graph; bidirectional search halves the explored ball"


def _shape_plan(spec: QuerySpec, method: str, reason: str) -> QueryPlan:
    plan = QueryPlan(spec=spec, method=method, reason=reason)
    plan.uses_segtable = method == "BSEG"
    plan.bidirectional = method != "DJ"
    plan.frontier_mode = (NODE_AT_A_TIME if method in ("DJ", "BDJ")
                          else SET_AT_A_TIME)
    if method in MEMORY_METHODS:
        plan.frontier_mode = NODE_AT_A_TIME
        plan.phases = (PHASE_PATH_EXPANSION,)
        plan.operators_per_iteration = ()
        plan.bidirectional = method == "MBDJ"
    return plan


def _estimate_iterations(method: str, stats: GraphStatistics) -> int:
    """Order-of-magnitude FEM iteration estimate from the branching factor.

    A node-at-a-time search settles one node per iteration, so iterations
    track the size of the explored ball; set-at-a-time searches settle a
    whole distance level per iteration, so iterations track the ball's
    radius (``log_b n``).
    """
    nodes = max(2, stats.num_nodes)
    branching = max(2.0, stats.avg_out_degree)
    radius = max(1, math.ceil(math.log(nodes, branching)))
    if method in ("DJ", "MDJ"):
        return max(1, nodes // 2)
    if method in ("BDJ", "MBDJ"):
        return max(1, int(2 * math.sqrt(nodes)))
    # Set-at-a-time: two half-radius sweeps meeting in the middle.
    return max(1, radius)


__all__ = [
    "AUTO_METHOD",
    "MEMORY_METHODS",
    "METHODS",
    "NODE_AT_A_TIME",
    "QueryPlan",
    "QuerySpec",
    "RELATIONAL_METHODS",
    "SET_AT_A_TIME",
    "normalize_method",
    "plan_query",
]
