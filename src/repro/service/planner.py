"""Query specification and planning.

The planner turns a declarative :class:`QuerySpec` into an executable
:class:`QueryPlan`: it validates the method name, and — for
``method="auto"`` — prices every eligible method (DJ, BDJ, BSDJ, plus
BSEG when the graph's SegTable is built) with the **calibrated cost
model** (:mod:`repro.service.costmodel`) and picks the cheapest.  The
model combines the graph's statistics with per-backend unit costs
measured by :mod:`repro.service.calibrate`; an uncalibrated session plans
from the built-in default profile, and runtime feedback
(:meth:`~repro.service.costmodel.CostModel.observe`) keeps correcting
either under real traffic.

The plan also predicts the FEM iteration shape (frontier mode, operator
sequence and an order-of-magnitude iteration estimate) and — when planned
through a cost model — carries the per-method cost breakdown, which
:meth:`PathService.explain` surfaces without running the query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.bfs import bidirectional_bfs
from repro.core.bidirectional import bidirectional_dijkstra, bidirectional_set_dijkstra
from repro.core.bseg import bidirectional_segtable_search
from repro.core.dijkstra import dijkstra_single_direction
from repro.core.multi import METHOD_HOPS, METHOD_REACH
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.stats import (
    OPERATOR_E,
    OPERATOR_F,
    OPERATOR_M,
    PHASE_PATH_EXPANSION,
    PHASE_PATH_RECOVERY,
    PHASE_STATISTICS,
    SegTableBuildStats,
)
from repro.errors import InvalidQueryError
from repro.graph.stats import GraphStatistics
from repro.obs import Trace
from repro.service.costmodel import AUTO_CANDIDATES, CostEstimate, CostModel

RELATIONAL_METHODS: Dict[str, Callable[..., PathResult]] = {
    "DJ": dijkstra_single_direction,
    "BDJ": bidirectional_dijkstra,
    "BSDJ": bidirectional_set_dijkstra,
    "BBFS": bidirectional_bfs,
    "BSEG": bidirectional_segtable_search,
}

MEMORY_METHODS = ("MDJ", "MBDJ")

METHODS = tuple(RELATIONAL_METHODS) + MEMORY_METHODS
"""All supported method names."""

AUTO_METHOD = "AUTO"

# Query kinds.  ``path`` is the weighted shortest-path query every method
# serves; the other kinds resolve to the layered hop driver
# (:mod:`repro.core.multi`) regardless of the requested method.
KIND_PATH = "path"
KIND_BOUNDED_HOP = "bounded_hop"
KIND_REACHABILITY = "reachability"
QUERY_KINDS = (KIND_PATH, KIND_BOUNDED_HOP, KIND_REACHABILITY)
"""All supported query kinds."""

# Frontier modes (the two expansion shapes of Listings 2 and 4).
NODE_AT_A_TIME = "node-at-a-time"
SET_AT_A_TIME = "set-at-a-time"


def normalize_method(method: str) -> str:
    """Upper-case ``method``, raising for names the service cannot run.

    Returns ``AUTO_METHOD`` for the ``"auto"`` sentinel.
    """
    normalized = method.upper()
    if normalized == AUTO_METHOD:
        return AUTO_METHOD
    if normalized not in METHODS:
        raise InvalidQueryError(
            f"unknown method {method!r}; expected one of {METHODS + ('auto',)}"
        )
    return normalized


@dataclass(frozen=True)
class QuerySpec:
    """One declarative shortest-path query.

    Attributes:
        source: source node id.
        target: target node id.
        graph: name of the hosted graph to query.
        method: a method name from :data:`METHODS`, or ``"auto"`` to let the
            planner choose.  Only ``kind="path"`` honours it; the hop
            kinds always run the layered driver.
        sql_style: ``"nsql"`` or ``"tsql"``.
        max_iterations: optional safety cap on expansions.
        kind: one of :data:`QUERY_KINDS` — ``"path"`` (weighted shortest
            path, the default), ``"bounded_hop"`` (fewest-hops path within
            ``max_hops``), or ``"reachability"`` (witness path, distance =
            hop count, no weighted bookkeeping).
        max_hops: inclusive hop budget; required (>= 1) for
            ``kind="bounded_hop"`` and forbidden elsewhere.
        timeout_s: optional end-to-end time budget in seconds.  The
            budget is *relative* (wire-safe across machines with
            unsynchronized clocks): each tier derives its own absolute
            monotonic deadline on entry, and a client forwarding the
            query sends only the *remaining* budget.  Expiry raises
            :class:`~repro.errors.DeadlineExceededError`; results of
            budgeted queries are never cached (the run may have been
            cut short).
    """

    source: int
    target: int
    graph: str = "default"
    method: str = "auto"
    sql_style: str = NSQL
    max_iterations: Optional[int] = None
    kind: str = KIND_PATH
    max_hops: Optional[int] = None
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise InvalidQueryError(
                f"timeout_s must be positive; got {self.timeout_s}"
            )


@dataclass
class QueryPlan:
    """The executable plan the planner chose for a :class:`QuerySpec`.

    Attributes:
        spec: the query being planned.
        method: the resolved method name (never ``"auto"``).
        reason: one-line justification of the choice.
        uses_segtable: whether execution expands over ``TOutSegs``/``TInSegs``.
        bidirectional: whether two searches run toward each other.
        frontier_mode: ``"node-at-a-time"`` (Listing 2) or
            ``"set-at-a-time"`` (Listing 4).
        phases: FEM phase labels in execution order.
        operators_per_iteration: operator labels of one FEM iteration.
        estimated_iterations: order-of-magnitude FEM iteration estimate
            derived from the graph statistics (not a promise); ``None``
            when the plan was made without computing statistics.
        cost_breakdown: per-method :class:`~repro.service.costmodel.CostEstimate`
            map the cost model scored this plan against (``None`` when the
            plan never consulted the model — explicit methods on the hot
            path).
        predicted_seconds: the model's prediction for the chosen method
            (feeds the runtime feedback loop and regret reporting).
        trace: the execution trace attached by
            ``explain(..., analyze=True)`` — ``None`` on ordinary plans.
    """

    spec: QuerySpec
    method: str
    reason: str
    uses_segtable: bool = False
    bidirectional: bool = True
    frontier_mode: str = SET_AT_A_TIME
    phases: Tuple[str, ...] = (PHASE_STATISTICS, PHASE_PATH_EXPANSION,
                               PHASE_PATH_RECOVERY)
    operators_per_iteration: Tuple[str, ...] = (OPERATOR_F, OPERATOR_E, OPERATOR_M)
    estimated_iterations: Optional[int] = None
    cost_breakdown: Optional[Dict[str, CostEstimate]] = None
    predicted_seconds: Optional[float] = None
    trace: Optional["Trace"] = field(default=None, compare=False, repr=False)

    def describe(self) -> str:
        """Human-readable plan summary (what ``explain()`` prints)."""
        direction = "bidirectional" if self.bidirectional else "single-direction"
        if self.estimated_iterations is None:
            expectation = ""
        else:
            expectation = f"  (~{self.estimated_iterations} iterations expected)"
        lines = [
            f"method: {self.method} ({direction}, {self.frontier_mode})",
            f"reason: {self.reason}",
            f"relation: {'TOutSegs/TInSegs (SegTable)' if self.uses_segtable else 'TEdges'}",
            f"phases: {' -> '.join(self.phases)}",
            "iteration: " + " -> ".join(self.operators_per_iteration) + expectation,
        ]
        if self.cost_breakdown:
            lines.append("costs:")
            for estimate in sorted(self.cost_breakdown.values(),
                                   key=lambda e: e.seconds):
                marker = "->" if estimate.method == self.method else "  "
                eligibility = "" if estimate.eligible else "  (no SegTable)"
                lines.append(
                    f"  {marker} {estimate.method:<4} "
                    f"~{estimate.seconds * 1e3:.3g} ms  "
                    f"({estimate.iterations} iters, "
                    f"{estimate.statements} stmts, "
                    f"{estimate.rows} rows){eligibility}"
                )
        return "\n".join(lines)


StatsSource = Union[GraphStatistics, Callable[[], GraphStatistics]]

# Module-level fallback for callers that plan without a service (tests,
# scripts): an uncalibrated model over the default profile.
_DEFAULT_MODEL = CostModel()


def plan_query(spec: QuerySpec, stats: StatsSource,
               has_segtable: bool, estimate: bool = False,
               cost_model: Optional[CostModel] = None,
               segtable_lthd: Optional[float] = None,
               segtable: Optional[SegTableBuildStats] = None) -> QueryPlan:
    """Resolve ``spec`` into a :class:`QueryPlan`.

    Args:
        spec: the query to plan.
        stats: statistics of the graph named by ``spec.graph``, or a
            zero-argument callable producing them.  A callable is invoked
            only when the plan actually needs statistics (``"auto"``
            resolution or ``estimate=True``), keeping explicit-method
            planning free of the O(V+E) statistics scan.
        has_segtable: whether that graph's store has a SegTable built.
        estimate: fill :attr:`QueryPlan.estimated_iterations` (and, for
            explicit methods, the cost breakdown) — ``explain()`` wants
            them; the query hot path does not.
        cost_model: the :class:`~repro.service.costmodel.CostModel` that
            prices ``"auto"`` (the service passes its per-backend model;
            direct callers get the default-profile model).
        segtable_lthd: threshold of the built SegTable, if any (sharpens
            the BSEG estimate).
        segtable: the SegTable's build statistics, if known (its measured
            segment count beats the analytic fan-out estimate).

    Raises:
        InvalidQueryError: for unknown methods or kinds, an explicit
            ``BSEG`` request without a SegTable, or a ``max_hops`` that
            does not fit the kind.
    """
    resolved: Optional[GraphStatistics] = (
        None if callable(stats) else stats
    )

    def _stats() -> GraphStatistics:
        nonlocal resolved
        if resolved is None:
            resolved = stats()  # type: ignore[operator]
        return resolved

    model = cost_model if cost_model is not None else _DEFAULT_MODEL
    if spec.kind not in QUERY_KINDS:
        raise InvalidQueryError(
            f"unknown query kind {spec.kind!r}; "
            f"expected one of {QUERY_KINDS}"
        )
    if spec.kind != KIND_PATH:
        return _plan_hop_query(spec, _stats, model, estimate)
    if spec.max_hops is not None:
        raise InvalidQueryError(
            "max_hops applies to kind='bounded_hop' queries only"
        )
    breakdown: Optional[Dict[str, CostEstimate]] = None
    method = normalize_method(spec.method)
    if method == AUTO_METHOD:
        method, reason, breakdown = model.choose(
            _stats(), has_segtable,
            segtable_lthd=segtable_lthd, segtable=segtable)
    elif method == "BSEG" and not has_segtable:
        raise InvalidQueryError(
            "BSEG requires a SegTable; build one with build_segtable() first"
        )
    else:
        reason = "method requested explicitly"
    plan = _shape_plan(spec, method, reason)
    # Only methods the model prices get a breakdown attached — explain()
    # of e.g. BBFS must not render a cost table that omits the method
    # actually planned.
    priceable = method in AUTO_CANDIDATES or method == "BSEG"
    if breakdown is None and estimate and priceable:
        breakdown = model.breakdown(_stats(), has_segtable,
                                    segtable_lthd=segtable_lthd,
                                    segtable=segtable)
    if breakdown is not None:
        plan.cost_breakdown = breakdown
        chosen = breakdown.get(method)
        if chosen is not None:
            plan.predicted_seconds = chosen.seconds
    if estimate:
        chosen = (breakdown or {}).get(method)
        plan.estimated_iterations = (
            chosen.iterations if chosen is not None
            else _estimate_iterations(method, _stats())
        )
    return plan


def _plan_hop_query(spec: QuerySpec,
                    get_stats: Callable[[], GraphStatistics],
                    model: CostModel, estimate: bool) -> QueryPlan:
    """Plan a non-``path`` kind: both resolve to the layered hop driver.

    The requested method name is still validated (a typo should fail the
    same way it does for ``kind="path"``) but is otherwise advisory —
    weighted methods cannot answer hop-count questions, and memory methods
    are rejected outright because these kinds exist to exercise the
    relational F/E/M pipeline.
    """
    requested = normalize_method(spec.method)
    if requested in MEMORY_METHODS:
        raise InvalidQueryError(
            f"kind={spec.kind!r} runs the relational hop driver; memory "
            f"method {spec.method!r} does not apply"
        )
    if spec.kind == KIND_BOUNDED_HOP:
        if spec.max_hops is None or spec.max_hops < 1:
            raise InvalidQueryError(
                f"kind='bounded_hop' needs max_hops >= 1, "
                f"got {spec.max_hops!r}"
            )
        method = METHOD_HOPS
        reason = (f"kind='bounded_hop': layered hop driver, "
                  f"<= {spec.max_hops} whole-layer rounds")
    else:
        if spec.max_hops is not None:
            raise InvalidQueryError(
                "kind='reachability' takes no max_hops; "
                "use kind='bounded_hop'"
            )
        method = METHOD_REACH
        reason = ("kind='reachability': layered hop driver, no weighted "
                  "bookkeeping (fast path)")
    plan = _shape_plan(spec, method, reason)
    if estimate:
        chosen = model.estimate(method, get_stats(), max_hops=spec.max_hops)
        plan.cost_breakdown = {method: chosen}
        plan.predicted_seconds = chosen.seconds
        plan.estimated_iterations = chosen.iterations
    return plan


def _shape_plan(spec: QuerySpec, method: str, reason: str) -> QueryPlan:
    plan = QueryPlan(spec=spec, method=method, reason=reason)
    plan.uses_segtable = method == "BSEG"
    plan.bidirectional = method != "DJ"
    plan.frontier_mode = (NODE_AT_A_TIME if method in ("DJ", "BDJ")
                          else SET_AT_A_TIME)
    if method in (METHOD_HOPS, METHOD_REACH):
        plan.bidirectional = False
        plan.phases = (PHASE_PATH_EXPANSION, PHASE_STATISTICS,
                       PHASE_PATH_RECOVERY)
    if method in MEMORY_METHODS:
        plan.frontier_mode = NODE_AT_A_TIME
        plan.phases = (PHASE_PATH_EXPANSION,)
        plan.operators_per_iteration = ()
        plan.bidirectional = method == "MBDJ"
    return plan


def _estimate_iterations(method: str, stats: GraphStatistics) -> int:
    """Order-of-magnitude FEM iteration estimate from the branching factor.

    A node-at-a-time search settles one node per iteration, so iterations
    track the size of the explored ball; set-at-a-time searches settle a
    whole distance level per iteration, so iterations track the ball's
    radius (``log_b n``).
    """
    nodes = max(2, stats.num_nodes)
    branching = max(2.0, stats.avg_out_degree)
    radius = max(1, math.ceil(math.log(nodes, branching)))
    if method in ("DJ", "MDJ"):
        return max(1, nodes // 2)
    if method in ("BDJ", "MBDJ"):
        return max(1, int(2 * math.sqrt(nodes)))
    # Set-at-a-time: two half-radius sweeps meeting in the middle.
    return max(1, radius)


__all__ = [
    "AUTO_METHOD",
    "KIND_BOUNDED_HOP",
    "KIND_PATH",
    "KIND_REACHABILITY",
    "MEMORY_METHODS",
    "METHODS",
    "NODE_AT_A_TIME",
    "QUERY_KINDS",
    "QueryPlan",
    "QuerySpec",
    "RELATIONAL_METHODS",
    "SET_AT_A_TIME",
    "normalize_method",
    "plan_query",
]
