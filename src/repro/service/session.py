"""The :class:`PathService` session: multi-graph hosting over pluggable stores.

One service hosts any number of named graphs, each loaded once into a store
created through the backend registry.  The service owns the full query
pipeline — validation, planning (``method="auto"``), execution, SegTable
memoization, and a shared LRU result cache — so callers state *what* they
want and the service decides *how* to run it::

    with PathService() as service:
        service.add_graph("social", graph, backend="minidb")
        service.build_segtable("social", lthd=5)
        print(service.explain(0, 42, graph="social").describe())
        result = service.shortest_path(0, 42, graph="social")
        batch = service.shortest_path_many([(0, 42), (3, 99)],
                                           graph="social")

A service bound to a **persistent catalog** survives the process: every
``db_path``-backed graph it hosts (and every SegTable it builds) is
recorded in the catalog's manifest, and a later warm start reattaches all
of it without reloading edges or re-running the offline index expansion::

    service = PathService(catalog_path="catalog/")
    service.add_graph("social", graph, backend="sqlite",
                      db_path="catalog/social.db")
    service.build_segtable("social", lthd=5)
    service.close()

    warm = PathService.open(catalog_path="catalog/")   # no reload, no rebuild
    assert warm.segtable_stats("social") is not None
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.core.deadline import (
    check_deadline,
    deadline_from_timeout,
    remaining_budget,
)
from repro.core.directions import BACKWARD_DIRECTION, FORWARD_DIRECTION
from repro.core.multi import (
    METHOD_HOPS,
    METHOD_REACH,
    OneToManyResult,
    dijkstra_one_to_many,
    hop_limited_search,
)
from repro.core.path import PathResult
from repro.core.segtable import build_segtable as _build_segtable
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import BatchStats, QueryStats, SegTableBuildStats
from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.registry import create_store, is_dsn
from repro.errors import (
    DeadlineExceededError,
    DuplicateGraphError,
    FingerprintMismatchError,
    InvalidQueryError,
    ManifestError,
    NodeNotFoundError,
    PathNotFoundError,
    PersistenceUnsupportedError,
    PersistentCatalogError,
    PoolTimeoutError,
    ServiceError,
    UnknownGraphError,
)
from repro.graph.fingerprint import fingerprint_graph
from repro.graph.model import Graph
from repro.graph.stats import GraphStatistics, compute_statistics

if TYPE_CHECKING:  # pragma: no cover - typing only; the catalog package is
    # imported lazily at runtime (it pulls in repro.core, which imports this
    # module while initializing).
    from repro.catalog.catalog import Catalog
    from repro.serve.aio import AsyncPathService
from repro.memory.bidirectional import bidirectional_dijkstra as _memory_bidirectional
from repro.memory.dijkstra import dijkstra_shortest_path as _memory_dijkstra
from repro.obs import MetricsRegistry, Tracer, record_span, timer, wall_time
from repro.obs import span as obs_span
from repro.obs.schema import (
    METRIC_DEADLINE_EXCEEDED,
    METRIC_NOT_FOUND,
    METRIC_PLANNER_COST_ERROR,
    METRIC_QUERIES,
    METRIC_QUERY_LATENCY,
    METRIC_QUERY_QUEUE,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.costmodel import CostModel, CostProfile, host_fingerprint
from repro.service.pool import PoolStats, StorePool
from repro.service.planner import (
    KIND_PATH,
    MEMORY_METHODS,
    QueryPlan,
    QuerySpec,
    RELATIONAL_METHODS,
    plan_query,
)

DEFAULT_GRAPH = "default"

BatchQuery = Union[QuerySpec, Tuple[int, int], Tuple[str, int, int],
                   Tuple[str, int, int, str], Dict[str, object]]


def _clamp_checkout(checkout_timeout: Optional[float],
                    deadline: Optional[float]) -> Optional[float]:
    """Bound a pool-checkout wait by the query's remaining budget, so a
    budgeted query can never sit in the checkout queue past its deadline.
    An already-expired budget raises here, before touching the pool."""
    if deadline is None:
        return checkout_timeout
    check_deadline(deadline, "store checkout")
    budget = remaining_budget(deadline)
    assert budget is not None
    if checkout_timeout is None:
        return budget
    return min(checkout_timeout, budget)


def run_in_memory(graph: Graph, source: int, target: int,
                  method: str = "MDJ") -> PathResult:
    """Run one of the in-memory competitors (MDJ or MBDJ) on ``graph``."""
    method = method.upper()
    if method == "MDJ":
        result = _memory_dijkstra(graph, source, target)
    elif method == "MBDJ":
        result = _memory_bidirectional(graph, source, target)
    else:
        raise InvalidQueryError(
            f"unknown in-memory method {method!r}; expected MDJ or MBDJ"
        )
    stats = QueryStats(method=method)
    stats.found = True
    stats.distance = result.distance
    stats.visited_nodes = result.settled
    stats.path_edges = result.num_edges
    return PathResult(source, target, result.distance, result.path, stats)


@dataclass
class _GraphHost:
    """Everything the service keeps per hosted graph."""

    name: str
    graph: Graph
    store: GraphStore
    backend: str
    index_mode: str
    buffer_capacity: int = 256
    pool: Optional[StorePool] = None
    segtable_stats: Optional[SegTableBuildStats] = None
    # Segment rows captured at build time so pool rehydration can replay
    # them into a replica without touching the (possibly busy) primary.
    segment_rows: Optional[Tuple[List[Dict[str, object]],
                                 List[Dict[str, object]]]] = None
    _segtable_key: Optional[Tuple[Hashable, ...]] = None
    _statistics: Optional[GraphStatistics] = None
    _fingerprint: Optional[str] = None

    @property
    def statistics(self) -> GraphStatistics:
        """Graph statistics, computed once (hosted graphs are frozen)."""
        if self._statistics is None:
            self._statistics = compute_statistics(self.graph)
        return self._statistics

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the hosted graph, computed once (warm
        attaches restore it from the catalog entry instead)."""
        if self._fingerprint is None:
            self._fingerprint = fingerprint_graph(self.graph)
        return self._fingerprint


class PathService:
    """Session object hosting named graphs and answering queries over them.

    Args:
        default_backend: registry name used when :meth:`add_graph` does not
            specify one.
        cache_size: capacity of the shared LRU result cache (``0`` disables
            result caching entirely, negative caching included).
        cache_ttl: optional seconds after which cached results (positive
            and negative) expire.
        cache_max_bytes: optional approximate memory bound for the result
            cache; the LRU tail is evicted until the estimate fits.
        negative_cache_size: capacity of the unreachable-pair verdict cache
            (``0`` disables negative caching; repeated misses then re-run
            the full search every time).
        catalog_path: optional persistent-catalog directory.  When bound,
            every ``db_path``-backed graph added to (and every SegTable
            built by) this service is recorded durably, and
            :meth:`attach_graph` / :meth:`PathService.open` can warm-start
            from it.
        shard_id: optional identity of the shard this service embodies
            (set by :class:`repro.shard.ShardRouter`).  It is appended to
            every result-cache and single-flight key, so cached entries —
            and in-flight executions — can never cross-talk between shards
            that host same-named graphs, even if their caches are merged
            or compared externally.  ``None`` (the default) keeps the
            unsharded key shape.
    """

    def __init__(self, default_backend: str = "minidb",
                 cache_size: int = 1024, *,
                 cache_ttl: Optional[float] = None,
                 cache_max_bytes: Optional[int] = None,
                 negative_cache_size: int = 1024,
                 catalog_path: Optional[str] = None,
                 shard_id: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracing: bool = True) -> None:
        self.default_backend = default_backend
        self.shard_id = shard_id
        self._hosts: Dict[str, _GraphHost] = {}
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = Tracer(enabled=tracing)
        self._cache = ResultCache(cache_size, ttl_seconds=cache_ttl,
                                  max_bytes=cache_max_bytes,
                                  negative_capacity=negative_cache_size,
                                  registry=self._registry,
                                  name=shard_id or "local")
        self._catalog: Optional["Catalog"] = None
        if catalog_path is not None:
            from repro.catalog.catalog import Catalog
            self._catalog = Catalog(catalog_path)
        self._segtable_builds = 0
        self._cost_models: Dict[str, CostModel] = {}
        self._calibrations_run = 0
        self._closed = False

    # -- warm start --------------------------------------------------------------

    @classmethod
    def open(cls, catalog_path: Optional[str] = None, *,
             strict: bool = True,
             backend: Optional[str] = None, dsn: Optional[str] = None,
             graph_name: str = DEFAULT_GRAPH, concurrency: int = 1,
             **kwargs: object) -> "PathService":
        """Warm-start a service from a persistent catalog — or straight
        from a populated server database.

        With ``catalog_path``, every cataloged graph is reattached: its
        database file (or server DSN) is opened without an edge reload,
        its planner statistics are rehydrated from the manifest, and its
        persisted SegTable — if built — is adopted without re-running the
        offline expansion.

        With ``dsn`` (e.g. ``PathService.open(backend="dbapi",
        dsn="postgresql://host/graphs")``), no catalog is needed at all:
        the server database is adopted directly via :meth:`adopt_graph` —
        the graph is read back with a ``SELECT`` scan and a persisted
        SegTable is recovered through the store's durable metadata
        (:meth:`~repro.core.store.base.GraphStore.persistent_segtable_lthd`).

        Args:
            catalog_path: the catalog directory (see
                :class:`repro.catalog.Catalog`).
            strict: raise on the first entry that fails to attach (stale
                fingerprint, missing file).  With ``strict=False`` such
                entries are skipped and the rest of the catalog loads.
            backend: backend for ``dsn`` adoption (default ``"dbapi"``).
            dsn: connection string of an already-populated server
                database to adopt (mutually exclusive with
                ``catalog_path``).
            graph_name: name the ``dsn``-adopted graph is hosted under.
            concurrency: store-pool capacity for the adopted graph.
            **kwargs: forwarded to the constructor (``default_backend``,
                cache knobs, ...).

        Raises:
            PersistentCatalogError: a manifest problem, or — in strict
                mode — any entry that cannot be attached.
            ServiceError: neither (or both) of ``catalog_path``/``dsn``.
        """
        if (catalog_path is None) == (dsn is None):
            raise ServiceError(
                "PathService.open needs exactly one of catalog_path= "
                "(warm-start from a catalog) or dsn= (adopt a server "
                "database directly)"
            )
        if dsn is not None:
            service = cls(**kwargs)  # type: ignore[arg-type]
            try:
                service.adopt_graph(graph_name, dsn=dsn,
                                    backend=backend or "dbapi",
                                    concurrency=concurrency)
            except BaseException:
                service.close()
                raise
            return service
        service = cls(catalog_path=catalog_path, **kwargs)  # type: ignore[arg-type]
        try:
            service.attach_all(strict=strict)
        except BaseException:
            service.close()
            raise
        return service

    @property
    def catalog(self) -> Optional["Catalog"]:
        """The bound persistent catalog, or ``None``."""
        return self._catalog

    @property
    def segtable_builds(self) -> int:
        """How many SegTable constructions actually ran in this process —
        memoized returns and warm-started (persisted) tables do not count.
        The warm-start benchmark asserts this stays zero after a reattach.
        """
        return self._segtable_builds

    def attach_all(self, strict: bool = True) -> Tuple[str, ...]:
        """Attach every cataloged graph not already hosted; returns the
        names attached (see :meth:`open` for the ``strict`` contract)."""
        catalog = self._require_catalog()
        attached: List[str] = []
        for name in catalog.names():
            if name in self._hosts:
                continue
            try:
                self.attach_graph(name)
            except PersistentCatalogError:
                if strict:
                    raise
                continue
            attached.append(name)
        return tuple(attached)

    def attach_graph(self, name: str, concurrency: int = 1) -> str:
        """Reattach one cataloged graph without reloading it.

        The entry's database file is opened through the backend registry,
        its content fingerprint verified against the manifest, the graph
        read back (a ``SELECT`` scan — no table creation, no bulk insert,
        no index build), statistics rehydrated, and any persisted SegTable
        adopted as-is.

        Args:
            name: the cataloged graph name.
            concurrency: store-pool capacity, as in :meth:`add_graph`.

        Raises:
            CatalogEntryNotFoundError: ``name`` is not cataloged.
            ManifestError: the database file is missing or holds no graph.
            FingerprintMismatchError: the file's content no longer matches
                the manifest (the entry is marked stale; re-register the
                graph or ``python -m repro.catalog rebuild`` it).
            DuplicateGraphError: ``name`` is already hosted.
        """
        if self._closed:
            raise ServiceError("this PathService is closed; create a new one")
        catalog = self._require_catalog()
        if name in self._hosts:
            raise DuplicateGraphError(
                f"graph {name!r} is already hosted; drop_graph() it first"
            )
        entry = catalog.get(name)
        rebuild_hint = (f"re-register the graph or run `python -m "
                        f"repro.catalog rebuild --catalog {catalog.path} "
                        f"{name}`")
        if entry.stale:
            raise FingerprintMismatchError(
                f"catalog entry {name!r} is stale (a previous attach found "
                f"the database changed underneath it); {rebuild_hint}"
            )
        db_path = catalog.resolve_db_path(entry)
        # A DSN-backed entry has no file to stat — reachability of the
        # server is checked by the connect below (a typed
        # BackendConnectionError, not a missing-file ManifestError).
        if not is_dsn(db_path) and not os.path.exists(db_path):
            raise ManifestError(
                f"database file {db_path!r} for cataloged graph {name!r} "
                f"is missing; `python -m repro.catalog gc` drops the entry"
            )
        store = create_store(entry.backend, path=db_path,
                             buffer_capacity=entry.buffer_capacity)
        try:
            if not (store.supports_persistence()
                    and store.has_persistent_tables()):
                raise ManifestError(
                    f"store {entry.backend!r} at {db_path!r} holds no "
                    f"persisted graph tables; the catalog entry does not "
                    f"match a loaded graph database"
                )
            actual = store.content_fingerprint()
            if actual != entry.fingerprint:
                catalog.mark_stale(name)
                raise FingerprintMismatchError(
                    f"graph {name!r} changed on disk: the database "
                    f"fingerprint no longer matches the catalog entry "
                    f"(expected {entry.fingerprint[:18]}..., found "
                    f"{actual[:18]}...); the entry is now marked stale — "
                    f"{rebuild_hint}"
                )
            index_mode = IndexMode.validate(entry.index_mode)
            if hasattr(store, "index_mode"):
                store.index_mode = index_mode
            graph = store.export_graph()
            host = _GraphHost(name=name, graph=graph, store=store,
                              backend=entry.backend, index_mode=index_mode,
                              buffer_capacity=entry.buffer_capacity)
            host._fingerprint = entry.fingerprint
            if entry.statistics is not None:
                host._statistics = entry.statistics
            seg = entry.segtable
            if seg is not None:
                if store.has_persistent_segtable():
                    store.adopt_segtable(seg.lthd)
                    host.segtable_stats = seg.build or SegTableBuildStats(
                        lthd=seg.lthd, sql_style=seg.sql_style)
                    host._segtable_key = self._segtable_memo_key(
                        host, seg.lthd, seg.sql_style,
                        IndexMode.validate(seg.index_mode))
                    # As in build_segtable: backends without a clone()
                    # fast path need the segment rows captured so pool
                    # rehydration can replay them into replicas.
                    if not store.supports_clone():
                        host.segment_rows = (
                            store.seg_rows(FORWARD_DIRECTION),
                            store.seg_rows(BACKWARD_DIRECTION),
                        )
                else:
                    # The segment tables vanished (dropped externally);
                    # treat the index as unbuilt rather than failing the
                    # whole attach, and say so in the manifest.
                    catalog.set_segtable(name, None)
        except Exception:
            store.close()
            raise
        host.pool = StorePool(store, self._rehydrator(host),
                              size=concurrency,
                              registry=self._registry, graph=name)
        self._hosts[name] = host
        return name

    def adopt_graph(self, name: str = DEFAULT_GRAPH, *, dsn: str,
                    backend: str = "dbapi", concurrency: int = 1,
                    buffer_capacity: int = 256) -> str:
        """Host an already-populated server database directly, no catalog.

        The catalog-less sibling of :meth:`attach_graph` for DSN-backed
        backends: the store is opened over ``dsn``, its persisted graph
        tables are read back (a ``SELECT`` scan — no bulk load), and a
        persisted SegTable is adopted using the ``lthd`` the store
        recorded durably next to its tables
        (:meth:`~repro.core.store.base.GraphStore.persistent_segtable_lthd`),
        so nothing is rebuilt.

        Raises:
            PersistenceUnsupportedError: the store at ``dsn`` holds no
                persisted graph tables (or the backend cannot persist).
            DuplicateGraphError: ``name`` is already hosted.
        """
        if self._closed:
            raise ServiceError("this PathService is closed; create a new one")
        if name in self._hosts:
            raise DuplicateGraphError(
                f"graph {name!r} is already hosted; drop_graph() it first"
            )
        backend = backend.lower()
        store = create_store(backend, path=dsn,
                             buffer_capacity=buffer_capacity)
        try:
            if not (store.supports_persistence()
                    and store.has_persistent_tables()):
                raise PersistenceUnsupportedError(
                    f"store {backend!r} at {dsn!r} holds no persisted "
                    f"graph tables; load a graph there before adopting it"
                )
            graph = store.export_graph()
            host = _GraphHost(name=name, graph=graph, store=store,
                              backend=backend,
                              index_mode=getattr(store, "index_mode",
                                                 IndexMode.CLUSTERED),
                              buffer_capacity=buffer_capacity)
            lthd = (store.persistent_segtable_lthd()
                    if store.has_persistent_segtable() else None)
            if lthd is not None:
                store.adopt_segtable(lthd)
                host.segtable_stats = SegTableBuildStats(lthd=lthd,
                                                         sql_style=NSQL)
                host._segtable_key = self._segtable_memo_key(
                    host, lthd, NSQL, host.index_mode)
                if not store.supports_clone():
                    host.segment_rows = (
                        store.seg_rows(FORWARD_DIRECTION),
                        store.seg_rows(BACKWARD_DIRECTION),
                    )
        except Exception:
            store.close()
            raise
        host.pool = StorePool(store, self._rehydrator(host),
                              size=concurrency,
                              registry=self._registry, graph=name)
        self._hosts[name] = host
        return name

    def _require_catalog(self) -> "Catalog":
        if self._catalog is None:
            raise ServiceError(
                "this PathService has no catalog bound; construct it with "
                "catalog_path=... (or use PathService.open)"
            )
        return self._catalog

    # -- graph lifecycle ---------------------------------------------------------

    def add_graph(self, name: str, graph: Graph,
                  backend: Optional[str] = None,
                  buffer_capacity: int = 256,
                  index_mode: str = IndexMode.CLUSTERED,
                  db_path: Optional[str] = None,
                  concurrency: int = 1,
                  persist: bool = True) -> str:
        """Host ``graph`` under ``name``, loading it into a fresh store.

        Args:
            name: session-unique graph name.
            graph: the graph to load; treated as frozen once hosted.
            backend: registry backend name (service default when ``None``).
            buffer_capacity: buffer-pool pages (engines without one ignore it).
            index_mode: index strategy for the relational tables.
            db_path: optional backing file; in-memory by default.
            concurrency: store-pool capacity for this graph — how many
                reader connections parallel batches may use at once.
                Replicas are created lazily, so ``1`` (the default) costs
                nothing extra; a later ``shortest_path_many(concurrency=N)``
                grows the pool on demand anyway.  Backends whose store class
                does not set ``supports_concurrent_readers`` are clamped
                to 1 regardless.
            persist: when this service is bound to a catalog and the store
                persists (a ``db_path``-backed graph on a
                persistence-capable backend), record the graph in the
                catalog so later sessions can warm-start it.  ``False``
                opts this graph out; graphs whose store cannot persist are
                skipped either way.

        Returns:
            The graph name, for chaining into a query call.

        Raises:
            DuplicateGraphError: when ``name`` is already hosted.
            UnknownBackendError: when ``backend`` is not registered.
        """
        if self._closed:
            raise ServiceError("this PathService is closed; create a new one")
        if name in self._hosts:
            raise DuplicateGraphError(
                f"graph {name!r} is already hosted; drop_graph() it first"
            )
        backend = (backend or self.default_backend).lower()
        index_mode = IndexMode.validate(index_mode)
        store = create_store(backend, path=db_path,
                             buffer_capacity=buffer_capacity)
        try:
            store.load_graph(graph, index_mode=index_mode)
        except Exception:
            store.close()
            raise
        host = _GraphHost(name=name, graph=graph, store=store,
                          backend=backend, index_mode=index_mode,
                          buffer_capacity=buffer_capacity)
        host.pool = StorePool(store, self._rehydrator(host),
                              size=concurrency,
                              registry=self._registry, graph=name)
        self._hosts[name] = host
        if (persist and self._catalog is not None and db_path is not None
                and store.supports_persistence()):
            from repro.catalog.manifest import CatalogEntry
            self._catalog.put(CatalogEntry(
                name=name, backend=backend,
                db_path=self._catalog.normalize_db_path(db_path),
                fingerprint=host.fingerprint, directed=graph.directed,
                index_mode=index_mode, buffer_capacity=buffer_capacity,
                num_nodes=graph.num_nodes, num_edges=graph.num_edges,
                statistics=host.statistics,
            ))
        return name

    def _rehydrator(self, host: _GraphHost):
        """Replica factory for ``host``'s pool: a fresh in-memory store of
        the same backend, reloaded from the frozen hosted graph (and the
        segment rows captured at build time).  Reads nothing from the
        primary store, which may be serving another worker right now."""
        def rehydrate(primary: GraphStore) -> GraphStore:
            del primary  # replicas rebuild from the frozen graph instead
            store = create_store(host.backend, path=None,
                                 buffer_capacity=host.buffer_capacity)
            try:
                store.load_graph(host.graph, index_mode=host.index_mode)
                if host.segment_rows is not None:
                    out_rows, in_rows = host.segment_rows
                    store.load_segtable(out_rows, in_rows,
                                        host.store.segtable_lthd or 0.0,
                                        index_mode=host.index_mode)
            except Exception:
                store.close()
                raise
            return store
        return rehydrate

    def drop_graph(self, name: str) -> None:
        """Close and forget the graph hosted under ``name``, dropping its
        cached results."""
        host = self._host(name)
        del self._hosts[name]
        self._cache.invalidate_graph(name)
        assert host.pool is not None
        host.pool.close()

    def graphs(self) -> Tuple[str, ...]:
        """Names of the hosted graphs, in insertion order."""
        return tuple(self._hosts)

    def graph(self, name: str = DEFAULT_GRAPH) -> Graph:
        """The :class:`Graph` hosted under ``name``."""
        return self._host(name).graph

    def store(self, name: str = DEFAULT_GRAPH) -> GraphStore:
        """The :class:`GraphStore` backing the graph hosted under ``name``."""
        return self._host(name).store

    def statistics(self, name: str = DEFAULT_GRAPH) -> GraphStatistics:
        """Memoized :class:`GraphStatistics` for the hosted graph."""
        return self._host(name).statistics

    def pool_stats(self, name: str = DEFAULT_GRAPH) -> PoolStats:
        """Counters of the graph's store pool (capacity, members created,
        checkouts, waits, clone vs. rehydrate replica counts)."""
        host = self._host(name)
        assert host.pool is not None
        return host.pool.stats()

    # -- SegTable management -----------------------------------------------------

    def build_segtable(self, graph: str = DEFAULT_GRAPH, *,
                       lthd: Union[float, str],
                       sql_style: str = NSQL,
                       index_mode: Optional[str] = None,
                       force: bool = False) -> SegTableBuildStats:
        """Build the SegTable index for a hosted graph, memoized.

        ``lthd="auto"`` picks the threshold with the cost model: predicted
        BSEG online cost traded against predicted construction cost/size
        (see :meth:`recommend_lthd` for the per-candidate predictions).

        Rebuilding with the same parameters returns the previous
        :class:`SegTableBuildStats` without touching the store; pass
        ``force=True`` (or different parameters) to rebuild.  The memo key
        is ``(graph name, lthd, sql_style, index_mode, content
        fingerprint)`` — keying on the graph's *content* means a graph
        re-registered under a reused name (or reattached from a catalog
        whose file changed) can never be served a stale memoized table.

        On a catalog-bound service the finished build is persisted:
        metadata and construction statistics go into the graph's manifest
        entry, and a later warm start adopts the materialized tables
        instead of running this construction again.
        """
        host = self._host(graph)
        if isinstance(lthd, str):
            if lthd.lower() != "auto":
                raise InvalidQueryError(
                    f"lthd must be a positive number or 'auto', got {lthd!r}"
                )
            lthd, _ = self.recommend_lthd(graph)
        validate_sql_style(sql_style)
        mode = IndexMode.validate(index_mode or host.index_mode)
        key = self._segtable_memo_key(host, lthd, sql_style, mode)
        if not force and host._segtable_key == key:
            assert host.segtable_stats is not None
            return host.segtable_stats
        assert host.pool is not None
        # The build writes into the store's shared data, so seal the whole
        # pool behind the drain barrier: with SQLite clones, readers hold
        # shared locks on the very file the build is about to write, and
        # the barrier also stops checkouts from growing a *fresh* reader
        # mid-build.  Queries queue and resume once the barrier lifts.
        primary = host.store
        with host.pool.drain() as members:
            try:
                host.segtable_stats = _build_segtable(primary, lthd,
                                                      sql_style=sql_style,
                                                      index_mode=mode)
                self._segtable_builds += 1
                host._segtable_key = key
                # Capture the finished segments for pool rehydration — only
                # needed by backends without a clone() fast path (a cloning
                # store's replicas read the SegTable straight from the
                # file).
                if primary.supports_clone():
                    host.segment_rows = None
                else:
                    host.segment_rows = (primary.seg_rows(FORWARD_DIRECTION),
                                         primary.seg_rows(BACKWARD_DIRECTION))
            finally:
                # Retire replicas built against the old index (checkin
                # after reset() closes them; the primary survives).
                host.pool.reset()
                for member in members:
                    host.pool.checkin(member)
        if (self._catalog is not None and host.name in self._catalog
                and primary.supports_persistence()):
            from repro.catalog.manifest import SegTableRecord
            self._catalog.set_segtable(host.name, SegTableRecord(
                lthd=lthd, sql_style=sql_style, index_mode=mode,
                build=host.segtable_stats, built_at=wall_time(),
            ))
        return host.segtable_stats

    @staticmethod
    def _segtable_memo_key(host: _GraphHost, lthd: float, sql_style: str,
                           mode: str) -> Tuple[Hashable, ...]:
        """Memo key of one SegTable build: name, parameters, and the
        graph's content fingerprint (never the name alone)."""
        return (host.name, lthd, sql_style, mode, host.fingerprint)

    def segtable_stats(self, graph: str = DEFAULT_GRAPH
                       ) -> Optional[SegTableBuildStats]:
        """Build statistics of the graph's SegTable (``None`` if unbuilt)."""
        return self._host(graph).segtable_stats

    # -- cost model / calibration ------------------------------------------------

    def cost_model(self, backend: Optional[str] = None) -> CostModel:
        """The :class:`CostModel` pricing ``method="auto"`` for ``backend``
        (the service default when ``None``).

        Resolution order: a model already live in this session; a
        calibration profile persisted in the bound catalog for this
        backend **and this host** (warm starts reattach a calibrated
        planner with zero re-probing); otherwise the built-in default
        profile.  The same object keeps receiving runtime feedback.
        """
        backend = (backend or self.default_backend).lower()
        model = self._cost_models.get(backend)
        if model is not None:
            return model
        profile: Optional[CostProfile] = None
        if self._catalog is not None:
            record = self._catalog.get_calibration(backend)
            if record is not None and record.profile.host == host_fingerprint():
                # Clone: the live model keeps mutating under runtime
                # feedback, and the record the catalog hands out must not.
                profile = record.profile.clone()
        if profile is None:
            from repro.service.costmodel import default_profile
            profile = default_profile(backend)
        model = CostModel(profile)
        self._cost_models[backend] = model
        return model

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True,
                  **probe_options: object) -> Dict[str, CostProfile]:
        """Measure unit costs for one or more backends and adopt them.

        Args:
            backend: a backend name, or ``None`` to calibrate every
                backend this session currently hosts graphs on (falling
                back to the service default when nothing is hosted yet).
            persist: record each profile in the bound catalog (if any), so
                later sessions warm-start the calibrated planner without
                re-probing.
            **probe_options: forwarded to
                :func:`repro.service.calibrate.calibrate_profile`
                (``seed``, ``probe_nodes``, ``queries_per_method``, ...).

        Returns:
            Backend name -> the measured :class:`CostProfile`.
        """
        from repro.service.calibrate import calibrate_profile
        if backend is not None:
            backends = [backend.lower()]
        else:
            backends = sorted({host.backend for host in self._hosts.values()}
                              or {self.default_backend.lower()})
        profiles: Dict[str, CostProfile] = {}
        for name in backends:
            options = dict(probe_options)
            if "store_path" not in options:
                # Client-server backends have no in-memory probe mode: the
                # constants being measured are the *server's*, so probe the
                # server a hosted graph lives on — under a fresh table
                # prefix (calibration_path) so the probe can never touch
                # hosted tables.  Embedded backends return None and keep
                # their in-memory probe store.
                hosted = next((host for host in self._hosts.values()
                               if host.backend == name), None)
                if hosted is not None:
                    probe_path = hosted.store.calibration_path()
                    if probe_path is not None:
                        options["store_path"] = probe_path
            profile = calibrate_profile(name, **options)  # type: ignore[arg-type]
            self._calibrations_run += 1
            self._cost_models[name] = CostModel(profile)
            profiles[name] = profile
            if persist and self._catalog is not None:
                from repro.catalog.manifest import CalibrationRecord
                # Persist a snapshot, not the live profile: concurrent
                # query feedback mutates method_bias, and serialization
                # must not race (or drift from) the measured numbers.
                self._catalog.set_calibration(CalibrationRecord(
                    backend=name, profile=profile.clone(),
                    calibrated_at=profile.calibrated_at))
        return profiles

    @property
    def calibrations_run(self) -> int:
        """How many calibration probes actually ran in this process —
        profiles reattached from the catalog do not count.  The planner
        benchmark asserts this stays zero after a warm start."""
        return self._calibrations_run

    def recommend_lthd(self, graph: str = DEFAULT_GRAPH,
                       amortize_queries: int = 500
                       ) -> Tuple[float, List[Dict[str, float]]]:
        """Cost-driven SegTable threshold for a hosted graph.

        Trades the predicted BSEG online cost against the predicted
        construction cost amortized over ``amortize_queries`` queries
        (Figure 7's trade-off, automated).  Returns ``(lthd, predictions)``
        where ``predictions`` holds one row per candidate threshold.
        """
        host = self._host(graph)
        model = self.cost_model(host.backend)
        return model.choose_lthd(host.statistics,
                                 amortize_queries=amortize_queries)

    def _observe(self, plan: QueryPlan, host: _GraphHost,
                 executed_seconds: float) -> None:
        """Feed one executed query back into the backend's cost model.

        Only relational, uncapped queries train the model; and when an
        explicit-method query never computed the graph's statistics, the
        sample is dropped rather than paying the O(V+E) scan on the hot
        path (auto queries always have statistics by construction).
        """
        if plan.method in MEMORY_METHODS:
            return
        if plan.spec.kind != KIND_PATH:
            # Hop kinds run a fixed driver — there is no method choice to
            # train, and folding their (differently shaped) times into the
            # shared global bias would skew the weighted methods' ordering.
            return
        if plan.spec.max_iterations is not None:
            return  # capped runs may stop early; their times are not real
        if plan.spec.timeout_s is not None:
            return  # budgeted runs race a deadline; don't train on them
        if host._statistics is None:
            return
        self.cost_model(host.backend).observe(
            plan.method, host.statistics, executed_seconds,
            segtable_lthd=host.store.segtable_lthd,
            segtable=host.segtable_stats)

    # -- planning ----------------------------------------------------------------

    def plan(self, spec: QuerySpec, estimate: bool = False) -> QueryPlan:
        """Plan ``spec`` without executing it.

        Statistics are computed lazily: explicit-method plans skip the
        O(V+E) graph-statistics scan unless ``estimate=True``.
        ``method="auto"`` is priced by the backend's (possibly calibrated)
        cost model; the chosen plan carries the per-method breakdown.
        """
        host = self._host(spec.graph)
        self._check_nodes(host, spec.source, spec.target)
        validate_sql_style(spec.sql_style)
        return plan_query(spec, lambda: host.statistics,
                          host.store.has_segtable, estimate=estimate,
                          cost_model=self.cost_model(host.backend),
                          segtable_lthd=host.store.segtable_lthd,
                          segtable=host.segtable_stats)

    def explain(self, source: int, target: int, graph: str = DEFAULT_GRAPH,
                method: str = "auto", sql_style: str = NSQL,
                kind: str = KIND_PATH,
                max_hops: Optional[int] = None,
                analyze: bool = False) -> QueryPlan:
        """Return the :class:`QueryPlan` the service would execute, with
        the predicted FEM iteration shape filled in.

        With ``analyze=True`` the query is also *executed* (bypassing the
        result cache, like ``EXPLAIN ANALYZE``) and the returned plan
        carries the full per-phase trace tree in ``plan.trace`` — plan,
        cache lookup, pool checkout, and one span per FEM iteration with
        frontier sizes and SQL statement counts.

        Raises:
            PathNotFoundError: with ``analyze=True``, when the endpoints
                are not connected — exactly as the query itself would.
        """
        spec = QuerySpec(source=source, target=target, graph=graph,
                         method=method, sql_style=sql_style,
                         kind=kind, max_hops=max_hops)
        plan = self.plan(spec, estimate=True)
        if not analyze:
            return plan
        with timer() as planned:
            executable = self.plan(spec)
        result = self._execute(executable, use_cache=False,
                               plan_seconds=planned.seconds)
        return replace(plan, trace=result.trace)

    # -- queries -----------------------------------------------------------------

    def shortest_path(self, source: int, target: int,
                      graph: str = DEFAULT_GRAPH, method: str = "auto",
                      sql_style: str = NSQL,
                      max_iterations: Optional[int] = None,
                      use_cache: bool = True,
                      kind: str = KIND_PATH,
                      max_hops: Optional[int] = None,
                      timeout_s: Optional[float] = None) -> PathResult:
        """Answer one path query against a hosted graph.

        ``kind`` selects the question asked (see
        :data:`repro.service.planner.QUERY_KINDS`): ``"path"`` is the
        weighted shortest path; ``"bounded_hop"`` finds a fewest-hops path
        within ``max_hops``; ``"reachability"`` returns a witness path
        with no weighted bookkeeping at all.  The hop kinds report the
        hop count as ``distance``.

        ``timeout_s`` bounds the query end to end — pool wait included,
        checked between FEM iterations — so an expired budget overruns by
        at most one iteration (see :mod:`repro.core.deadline`).

        Raises:
            UnknownGraphError: when ``graph`` is not hosted.
            NodeNotFoundError: when an endpoint is not in the graph.
            InvalidQueryError: for unknown methods/kinds, BSEG without an
                index, or a ``max_hops`` that does not fit the kind.
            PathNotFoundError: when the nodes are not connected (or not
                within ``max_hops`` hops).
            DeadlineExceededError: when ``timeout_s`` ran out first.
        """
        spec = QuerySpec(source=source, target=target, graph=graph,
                         method=method, sql_style=sql_style,
                         max_iterations=max_iterations,
                         kind=kind, max_hops=max_hops,
                         timeout_s=timeout_s)
        with timer() as planned:
            plan = self.plan(spec)
        return self._execute(plan, use_cache=use_cache,
                             plan_seconds=planned.seconds)

    def one_to_many(self, source: int, targets: Sequence[int],
                    graph: str = DEFAULT_GRAPH, sql_style: str = NSQL,
                    max_iterations: Optional[int] = None,
                    checkout_timeout: Optional[float] = None,
                    timeout_s: Optional[float] = None
                    ) -> OneToManyResult:
        """Answer every ``source -> target`` pair with ONE shared DJ
        frontier expansion (see
        :func:`repro.core.multi.dijkstra_one_to_many`).

        Each answered pair is bit-identical — distance *and* path — to
        running the pair alone with ``method="DJ"``; unreachable targets
        map to ``None`` instead of raising.  The batch layer uses this as
        the shared-frontier execution primitive for same-source groups.
        ``timeout_s`` bounds the whole shared run, pool wait included.
        """
        host = self._host(graph)
        validate_sql_style(sql_style)
        if not host.graph.has_node(source):
            raise NodeNotFoundError(
                f"node {source} is not in graph {host.name!r}"
            )
        for target in targets:
            if not host.graph.has_node(target):
                raise NodeNotFoundError(
                    f"node {target} is not in graph {host.name!r}"
                )
        assert host.pool is not None
        deadline = deadline_from_timeout(timeout_s)
        checkout_timeout = _clamp_checkout(checkout_timeout, deadline)
        lease = host.pool.lease(checkout_timeout)
        try:
            with lease as store:
                return dijkstra_one_to_many(store, source, list(targets),
                                            sql_style=sql_style,
                                            max_iterations=max_iterations,
                                            deadline=deadline)
        except PoolTimeoutError:
            # The budget, not the caller's own checkout bound, expired
            # while waiting for a store: that is a deadline outcome.
            check_deadline(deadline, "store checkout")
            raise

    def shortest_path_many(self, queries: Sequence[BatchQuery],
                           graph: str = DEFAULT_GRAPH, method: str = "auto",
                           sql_style: str = NSQL,
                           raise_on_unreachable: bool = False,
                           concurrency: int = 1,
                           checkout_timeout: Optional[float] = None,
                           share_frontier: Union[bool, str] = False,
                           timeout_s: Optional[float] = None):
        """Answer a batch of queries; see
        :func:`repro.service.batch.execute_batch` for the full contract.

        ``concurrency=1`` (the default) executes serially with semantics
        bit-identical to PR 1; ``concurrency=N`` runs the batch across N
        worker threads, growing each touched graph's store pool on demand
        (capability permitting) and deduplicating identical in-flight
        queries.  Results are in input order either way.

        ``share_frontier`` turns on one-to-many execution for same-source
        groups of plain ``path`` queries: ``"auto"`` shares a group only
        when the cost model prices one shared DJ frontier below the
        group's per-pair plans, ``True`` shares every eligible group, and
        ``False`` (the default) keeps per-pair execution.  Shared groups
        return bit-identical results to per-pair runs.

        ``timeout_s`` sets a default per-query time budget for queries
        that do not already carry one (``QuerySpec.timeout_s`` wins).  A
        query whose budget runs out records its
        :class:`~repro.errors.DeadlineExceededError` positionally in
        ``batch.errors`` — its siblings finish normally — and counts in
        ``batch.stats.deadline_exceeded``.
        """
        from repro.service.batch import execute_batch
        return execute_batch(self, queries, graph=graph, method=method,
                             sql_style=sql_style,
                             raise_on_unreachable=raise_on_unreachable,
                             concurrency=concurrency,
                             checkout_timeout=checkout_timeout,
                             share_frontier=share_frontier,
                             timeout_s=timeout_s)

    # -- cache -------------------------------------------------------------------

    def cache_info(self) -> CacheStats:
        """Counters of the shared result cache."""
        return self._cache.stats()

    # -- observability -----------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The service's metrics registry — every component of this
        service (cache, pools, executor, planner feedback) publishes into
        it, and the serve server renders it at ``GET /metrics``."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The service's tracer (disable with ``tracing=False``)."""
        return self._tracer

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """A JSON-safe snapshot of every metric family this service
        publishes (see :mod:`repro.obs.schema` for the catalog)."""
        return self._registry.snapshot()

    def clear_cache(self) -> None:
        """Drop every cached result."""
        self._cache.clear()

    # -- async front end ---------------------------------------------------------

    def as_async(self, max_workers: int = 8) -> "AsyncPathService":
        """An ``await``-able facade over this service (see
        :class:`repro.serve.aio.AsyncPathService`).  The facade borrows
        the service: close each independently."""
        from repro.serve.aio import AsyncPathService
        return AsyncPathService(self, max_workers=max_workers)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every hosted store pool and drop the cache."""
        if self._closed:
            return
        self._closed = True
        for host in self._hosts.values():
            if host.pool is not None:
                host.pool.close()
            else:  # pragma: no cover - hosts always carry a pool
                host.store.close()
        self._hosts.clear()
        self._cache.clear()

    def __enter__(self) -> "PathService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _host(self, name: str) -> _GraphHost:
        try:
            return self._hosts[name]
        except KeyError:
            hosted = tuple(self._hosts) or "(no graphs hosted)"
            raise UnknownGraphError(
                f"graph {name!r} is not hosted by this service; "
                f"hosted graphs: {hosted}"
            ) from None

    @staticmethod
    def _check_nodes(host: _GraphHost, source: int, target: int) -> None:
        for nid in (source, target):
            if not host.graph.has_node(nid):
                raise NodeNotFoundError(
                    f"node {nid} is not in graph {host.name!r}"
                )

    def _cache_key(self, plan: QueryPlan) -> Optional[Tuple[Hashable, ...]]:
        """Result-cache (and single-flight) key of a planned query.

        The graph name stays first — :meth:`ResultCache.invalidate_graph`
        matches on it — and the hosting shard's identity is appended last,
        making every cached result and in-flight lease shard-aware (see
        the ``shard_id`` constructor argument).
        """
        if self._cache.capacity == 0:
            return None  # caching disabled; don't report phantom misses
        spec = plan.spec
        if spec.max_iterations is not None:
            return None  # capped runs may return partial work; never cache
        if spec.timeout_s is not None:
            return None  # budgeted runs may be cut short; never cache
        return (spec.graph, spec.source, spec.target, plan.method,
                spec.sql_style, spec.kind, spec.max_hops, self.shard_id)

    def _execute(self, plan: QueryPlan, use_cache: bool = True,
                 batch_stats: Optional[BatchStats] = None,
                 plan_seconds: Optional[float] = None) -> PathResult:
        """Run a planned query, consulting and feeding the result cache
        (positive and negative).

        Opens a ``query`` trace span: the root of a fresh trace when no
        span is ambient (a direct ``shortest_path`` call), or a child
        when an outer layer — the shard router, ``explain(analyze=True)``
        — already traces this query.  Whoever owns the root attaches the
        finished tree to ``result.trace``."""
        spec = plan.spec
        with self._tracer.span("query", graph=spec.graph, source=spec.source,
                               target=spec.target, kind=spec.kind,
                               method=plan.method,
                               shard=self.shard_id) as query_span:
            if plan_seconds is not None:
                query_span.record("plan", plan_seconds, method=plan.method)
            result = self._execute_inner(plan, use_cache, batch_stats)
            if query_span.trace is not None:
                result.trace = query_span.trace
        return result

    def _execute_inner(self, plan: QueryPlan, use_cache: bool,
                       batch_stats: Optional[BatchStats]) -> PathResult:
        key = self._cache_key(plan) if use_cache else None
        if key is not None:
            with obs_span("cache.lookup") as cache_span:
                cached = self._cache.get(key)
                if cached is not None:
                    cache_span.tag(outcome="hit")
                    if batch_stats is not None:
                        batch_stats.cache_hits += 1
                    return self._copy_result(cached)
                verdict = self._cache.get_negative(key)
                if verdict is not None:
                    # A remembered unreachable pair: skip the full
                    # bidirectional fixpoint (the most expensive outcome to
                    # recompute — it runs to exhaustion precisely because
                    # no path exists).
                    cache_span.tag(outcome="negative_hit")
                    if batch_stats is not None:
                        batch_stats.negative_hits += 1
                    raise PathNotFoundError(verdict)
                cache_span.tag(outcome="miss")
        try:
            result = self._run(plan)
        except PathNotFoundError as exc:
            if key is not None:
                self._cache.put_negative(key, str(exc))
            raise
        except DeadlineExceededError:
            self._registry.counter(
                METRIC_DEADLINE_EXCEEDED, {"graph": plan.spec.graph},
                help="Queries whose time budget ran out mid-flight").inc()
            raise
        finally:
            # Unreachable pairs still ran a full search against the store.
            if batch_stats is not None:
                batch_stats.executed += 1
        if key is not None:
            self._cache.put(key, result)
            if batch_stats is not None:
                batch_stats.cache_misses += 1
            # Hand out a copy here too: the cache keeps the pristine
            # original, immune to caller mutation.
            return self._copy_result(result)
        return result

    @staticmethod
    def _copy_result(result: PathResult) -> PathResult:
        """Fresh result object per handout, so callers can mutate what they
        receive (path or stats) without corrupting the cached original."""
        stats = result.stats
        if stats is not None:
            stats = replace(stats,
                            time_by_phase=defaultdict(
                                float, stats.time_by_phase),
                            time_by_operator=defaultdict(
                                float, stats.time_by_operator))
        # trace=None: a trace describes ONE execution; the copy handed out
        # for a cache hit did not run, so the root owner re-attaches.
        return replace(result, path=list(result.path), stats=stats,
                       trace=None)

    def _run(self, plan: QueryPlan) -> PathResult:
        result, _, _ = self._run_timed(plan)
        return result

    def _run_timed(self, plan: QueryPlan,
                   checkout_timeout: Optional[float] = None
                   ) -> Tuple[PathResult, float, float]:
        """Run a planned query against a pooled store connection.

        Returns ``(result, queue_seconds, execute_seconds)`` — how long the
        query waited for a store and how long it actually ran.  With an
        all-idle pool (every serial call) the checkout is an uncontended
        lock acquire, so serial behaviour is unchanged.
        """
        spec = plan.spec
        host = self._host(spec.graph)
        deadline = deadline_from_timeout(spec.timeout_s)
        if plan.method in MEMORY_METHODS:
            check_deadline(deadline, f"{plan.method} execution")
            with obs_span("execute", method=plan.method):
                with timer() as ran:
                    try:
                        result = run_in_memory(host.graph, spec.source,
                                               spec.target,
                                               method=plan.method)
                    except PathNotFoundError:
                        self._note_not_found(plan, 0.0, ran.seconds)
                        raise
            self._publish_query(plan, 0.0, ran.seconds)
            return result, 0.0, ran.seconds
        assert host.pool is not None
        checkout_timeout = _clamp_checkout(checkout_timeout, deadline)
        lease = host.pool.lease(checkout_timeout)
        with obs_span("execute", method=plan.method,
                      sql_style=spec.sql_style) as exec_span:
            try:
                entered = lease.__enter__()
            except PoolTimeoutError:
                # The budget (not a caller's own checkout bound) ran out
                # in the checkout queue: report it as the deadline outcome
                # it is, so every expiry site raises the same type.
                check_deadline(deadline, "store checkout")
                raise
            try:
                store = entered
                record_span("pool.checkout", lease.queue_seconds,
                            graph=spec.graph)
                with timer() as ran:
                    try:
                        if plan.method in (METHOD_HOPS, METHOD_REACH):
                            result = hop_limited_search(
                                store, spec.source, spec.target,
                                sql_style=spec.sql_style,
                                max_hops=spec.max_hops,
                                max_iterations=spec.max_iterations,
                                method=plan.method,
                                deadline=deadline)
                        else:
                            algorithm = RELATIONAL_METHODS[plan.method]
                            result = algorithm(
                                store, spec.source, spec.target,
                                sql_style=spec.sql_style,
                                max_iterations=spec.max_iterations,
                                deadline=deadline)
                    except PathNotFoundError:
                        self._note_not_found(plan, lease.queue_seconds,
                                             ran.seconds)
                        raise
            finally:
                lease.__exit__(None, None, None)
            executed = ran.seconds
            if result.stats is not None:
                exec_span.tag(statements=result.stats.statements,
                              expansions=result.stats.expansions)
        # Close the planner's loop: every relational execution is a free
        # calibration sample for this backend's cost model.
        self._observe(plan, host, executed)
        if result.stats is not None:
            result.stats.predicted_seconds = plan.predicted_seconds
        self._publish_query(plan, lease.queue_seconds, executed)
        return result, lease.queue_seconds, executed

    def _note_not_found(self, plan: QueryPlan, queued: float,
                        executed: float) -> None:
        """An unreachable pair still ran a full search: count the query
        (and its latency) plus the dedicated not-found counter."""
        self._registry.counter(
            METRIC_NOT_FOUND,
            help="Queries whose endpoints proved unreachable").inc()
        self._publish_query(plan, queued, executed)

    def _publish_query(self, plan: QueryPlan, queued: float,
                       executed: float) -> None:
        """Publish one executed query into the metrics registry — counts,
        latency/queue histograms, and the planner's predicted-vs-actual
        cost error.  Runs on every execution path (serial, parallel batch,
        shared frontier leaders), so registry histogram counts equal the
        number of queries that actually ran."""
        spec = plan.spec
        registry = self._registry
        # The backend label separates embedded engines from client-server
        # ones in /metrics (in-memory methods run against no store at
        # all).  Aggregations use registry totals, which sum label sets.
        host = self._hosts.get(spec.graph)
        backend = ("memory" if plan.method in MEMORY_METHODS
                   else host.backend if host is not None else "unknown")
        registry.counter(
            METRIC_QUERIES,
            {"graph": spec.graph, "kind": spec.kind, "method": plan.method,
             "backend": backend},
            help="Queries executed against a store (cache hits excluded)",
        ).inc()
        registry.histogram(
            METRIC_QUERY_LATENCY, {"kind": spec.kind},
            help="Store execution seconds per query").observe(executed)
        registry.histogram(
            METRIC_QUERY_QUEUE,
            help="Seconds spent waiting for a pooled store").observe(queued)
        predicted = plan.predicted_seconds
        if predicted is not None and predicted > 0 and executed > 0:
            registry.histogram(
                METRIC_PLANNER_COST_ERROR, {"method": plan.method},
                help="abs(predicted - actual) / actual execution seconds",
            ).observe(abs(predicted - executed) / executed)


Session = PathService
"""Alias: a :class:`PathService` *is* the query session."""

__all__ = ["DEFAULT_GRAPH", "PathService", "Session", "run_in_memory"]
