"""Per-graph store pools: many reader connections over one hosted graph.

PR 1 left every hosted graph with exactly one store connection, so batch
queries serialized even though the paper's operators are independent across
source/target pairs.  :class:`StorePool` removes that bottleneck: it owns
the graph's *primary* store (the one ``load_graph`` / ``build_segtable``
ran against) plus lazily-created *replicas*, and hands exactly one member
to one worker thread at a time via :meth:`checkout` / :meth:`checkin` (or
the :meth:`lease` context manager).

Replica creation prefers the store's cheap
:meth:`~repro.core.store.base.GraphStore.clone` path (a second SQLite
connection over the same ``db_path``) and falls back to *rehydration* — a
fresh store from the backend registry, ``load_graph``, and a
``load_segtable`` replay when the primary has one built.

Thread-safety is enforced per backend: a store class that does not set
:attr:`~repro.core.store.base.GraphStore.supports_concurrent_readers`
keeps a capacity of one no matter what the caller requests, so its queries
stay serialized rather than racing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.store.base import GraphStore
from repro.errors import (
    PoolClosedError,
    PoolTimeoutError,
    StoreCloneUnsupportedError,
)
from repro.obs import MetricsRegistry, timer
from repro.obs.schema import (
    METRIC_POOL_CAPACITY,
    METRIC_POOL_CHECKOUTS,
    METRIC_POOL_CREATED,
    METRIC_POOL_IDLE,
    METRIC_POOL_IN_USE,
    METRIC_POOL_REPLICAS,
    METRIC_POOL_TIMEOUTS,
    METRIC_POOL_WAITS,
)

ReplicaFactory = Callable[[GraphStore], GraphStore]


@dataclass(frozen=True)
class PoolStats:
    """Immutable snapshot of one pool's counters.

    Attributes:
        capacity: maximum number of members (1 for serial-only backends).
        created: members created so far (primary included).
        idle: members currently waiting for a checkout.
        in_use: members currently checked out.
        checkouts: total successful checkouts.
        waits: checkouts that had to block for a free member.
        timeouts: checkouts that gave up waiting.
        replicas_cloned: replicas built through the store's ``clone()``.
        replicas_rehydrated: replicas rebuilt via ``load_graph``.
    """

    capacity: int
    created: int
    idle: int
    in_use: int
    checkouts: int
    waits: int
    timeouts: int
    replicas_cloned: int
    replicas_rehydrated: int


class StorePool:
    """A bounded pool of interchangeable reader stores for one graph.

    Args:
        primary: the graph's original store; always pool member zero and
            never closed by :meth:`reset` (index builds run against it).
        replica_factory: callable ``(primary) -> GraphStore`` producing one
            more reader over the same graph.  Only invoked while growing,
            from the thread that needed the member, outside the pool lock.
        size: requested capacity; clamped to 1 when the primary's class
            does not declare ``supports_concurrent_readers``.
    """

    def __init__(self, primary: GraphStore,
                 replica_factory: ReplicaFactory,
                 size: int = 1,
                 registry: Optional[MetricsRegistry] = None,
                 graph: str = "default") -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self._primary = primary
        self._factory = replica_factory
        self._capacity = self._clamp(size)
        self._cond = threading.Condition()
        self._idle: List[GraphStore] = [primary]
        self._created = 1
        self._closed = False
        self._draining = False
        self._generation = 0
        # store id -> generation at checkout time; a member returned after
        # reset() bumped the generation is stale and gets retired instead
        # of going back on the shelf.
        self._lease_generation: Dict[int, int] = {}
        self.graph = graph
        self.registry = registry if registry is not None else MetricsRegistry()
        labels = {"graph": graph}
        self._checkout_counter = self.registry.counter(
            METRIC_POOL_CHECKOUTS, labels, help="Successful pool checkouts")
        self._wait_counter = self.registry.counter(
            METRIC_POOL_WAITS, labels,
            help="Checkouts that blocked for a free member")
        self._timeout_counter = self.registry.counter(
            METRIC_POOL_TIMEOUTS, labels,
            help="Checkouts that gave up waiting")
        self._cloned_counter = self.registry.counter(
            METRIC_POOL_REPLICAS, {**labels, "mode": "cloned"},
            help="Replicas created, by creation mode")
        self._rehydrated_counter = self.registry.counter(
            METRIC_POOL_REPLICAS, {**labels, "mode": "rehydrated"})
        capacity_gauge = self.registry.gauge(
            METRIC_POOL_CAPACITY, labels, help="Maximum pool members")
        created_gauge = self.registry.gauge(
            METRIC_POOL_CREATED, labels, help="Members created so far")
        idle_gauge = self.registry.gauge(
            METRIC_POOL_IDLE, labels, help="Members waiting for checkout")
        in_use_gauge = self.registry.gauge(
            METRIC_POOL_IN_USE, labels, help="Members checked out")

        def _collect() -> None:
            with self._cond:
                capacity_gauge.set(self._capacity)
                created_gauge.set(self._created)
                idle_gauge.set(len(self._idle))
                in_use_gauge.set(self._created - len(self._idle))

        self._collector = self.registry.register_collector(_collect)

    # -- sizing ------------------------------------------------------------------

    def _clamp(self, size: int) -> int:
        """Bound a requested capacity by what the backend can honour.

        Serial-only backends stay at 1.  Concurrent backends whose
        ``clone()`` opens a genuine server connection additionally report
        a :meth:`~repro.core.store.base.GraphStore.max_connections` bound
        (the server's cap, or the DSN's declared pool size); the pool
        never grows past it, so a wide parallel batch cannot exhaust the
        database server behind the store.
        """
        if not type(self._primary).supports_concurrent_readers:
            return 1
        limit = self._primary.max_connections()
        if limit is not None:
            return max(1, min(size, limit))
        return max(1, size)

    @property
    def capacity(self) -> int:
        """Current maximum number of members."""
        return self._capacity

    def resize(self, size: int) -> int:
        """Grow the pool's capacity to at least ``size`` (never shrinks an
        in-use pool; serial-only backends stay clamped at 1).  Returns the
        resulting capacity."""
        with self._cond:
            self._capacity = max(self._capacity, self._clamp(size))
            return self._capacity

    # -- checkout / checkin ------------------------------------------------------

    def checkout(self, timeout: Optional[float] = None) -> GraphStore:
        """Borrow a member, growing the pool if every member is busy and
        capacity allows.

        Raises:
            PoolClosedError: the pool (or its service) was closed.
            PoolTimeoutError: the pool is at capacity and no member was
                returned within ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        grow = False
        waited = False
        with self._cond:
            while True:
                if self._closed:
                    raise PoolClosedError("cannot check out of a closed pool")
                # While a drain (write barrier) is pending or active, no
                # member may be handed out and no new member may be grown —
                # checkouts queue here until the drain ends.
                if not self._draining:
                    if self._idle:
                        store = self._idle.pop()
                        self._note_checkout(store, self._generation)
                        return store
                    if self._created < self._capacity:
                        # Reserve the slot now; build the store outside the
                        # lock so a slow clone/rehydrate doesn't stall
                        # checkins.  The generation is captured here, not
                        # after the build: if a reset() lands while the
                        # replica is being created, the replica reflects
                        # pre-reset primary state and must be retired on
                        # checkin like any other stale member.
                        self._created += 1
                        generation = self._generation
                        grow = True
                        break
                if not waited:
                    # One blocked checkout counts as one wait, no matter
                    # how many condition-variable wakeups it loops through.
                    self._wait_counter.inc()
                    waited = True
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    self._timeout_counter.inc()
                    raise PoolTimeoutError(
                        f"no store became available within {timeout}s "
                        f"(capacity {self._capacity}, all checked out)"
                    )
                self._cond.wait(remaining)
        if grow:
            try:
                store = self._create_replica()
            except BaseException:
                with self._cond:
                    self._created -= 1
                    self._cond.notify_all()
                raise
            with self._cond:
                if not self._closed:
                    self._note_checkout(store, generation)
                    return store
                # close() won the race while we were building: retire the
                # fresh replica and refuse, matching the non-grow path.
                self._created -= 1
                self._cond.notify_all()
            store.close()
            raise PoolClosedError("cannot check out of a closed pool")

    def drain(self, timeout: Optional[float] = None) -> "_DrainBarrier":
        """Write barrier: ``with pool.drain() as members: ...`` checks out
        *every* member (primary included), waiting for in-flight queries to
        finish first, and keeps the pool sealed — no checkouts, no growth —
        until the ``with`` block exits.

        Operations that mutate the primary's data (SegTable builds) need
        this: with clones over one SQLite file, a writer must not race
        *any* reader connection — readers hold shared locks on the same
        database — and a checkout that grew a fresh clone mid-build would
        reintroduce exactly that reader.  Queued checkouts proceed once the
        barrier lifts and the members are checked back in.
        """
        return _DrainBarrier(self, timeout)

    def _begin_drain(self, timeout: Optional[float]) -> List[GraphStore]:
        deadline = None if timeout is None else time.monotonic() + timeout
        members: List[GraphStore] = []
        with self._cond:
            try:
                while self._draining:  # one barrier at a time
                    if self._closed:
                        raise PoolClosedError("cannot drain a closed pool")
                    if not self._cond_wait(deadline):
                        raise PoolTimeoutError(
                            f"another drain held the pool past {timeout}s"
                        )
                self._draining = True
                while True:
                    if self._closed:
                        # close() already ran its idle sweep; retire what
                        # we collected so nothing leaks in a dead pool.
                        for store in members:
                            self._lease_generation.pop(id(store), None)
                            self._created -= 1
                            store.close()
                        raise PoolClosedError("cannot drain a closed pool")
                    while self._idle:
                        store = self._idle.pop()
                        self._note_checkout(store, self._generation)
                        members.append(store)
                    if len(members) == self._created:
                        return members
                    if not self._cond_wait(deadline):
                        self._timeout_counter.inc()
                        for store in members:  # re-shelve; pool still lives
                            self._idle.append(store)
                            self._lease_generation.pop(id(store), None)
                        raise PoolTimeoutError(
                            f"not every member came back within {timeout}s"
                        )
            except BaseException:
                self._draining = False
                self._cond.notify_all()
                raise

    def _end_drain(self) -> None:
        with self._cond:
            self._draining = False
            self._cond.notify_all()

    def _cond_wait(self, deadline: Optional[float]) -> bool:
        """Wait on the pool condition; ``False`` when ``deadline`` passed.
        Must be called with the lock held."""
        remaining = (None if deadline is None
                     else deadline - time.monotonic())
        if remaining is not None and remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    def _note_checkout(self, store: GraphStore, generation: int) -> None:
        self._checkout_counter.inc()
        self._lease_generation[id(store)] = generation

    def _create_replica(self) -> GraphStore:
        try:
            replica = self._primary.clone()
        except StoreCloneUnsupportedError:
            replica = None
        if replica is not None:
            self._cloned_counter.inc()
            return replica
        replica = self._factory(self._primary)
        self._rehydrated_counter.inc()
        return replica

    def checkin(self, store: GraphStore) -> None:
        """Return a borrowed member.  Always runs, even on error paths —
        callers wrap queries in ``try/finally`` (or use :meth:`lease`)."""
        # Release cross-query state (e.g. SQLite's implicit read
        # transaction) before shelving; a *replica* that cannot quiesce is
        # broken and gets retired instead of going back into rotation.  The
        # primary is exempt — closing it would permanently brick the pool
        # over what may be a transient failure (e.g. a short-lived lock
        # held by another process), so it is re-shelved regardless.
        try:
            store.quiesce()
            broken = False
        except Exception:
            broken = store is not self._primary
        with self._cond:
            generation = self._lease_generation.pop(id(store), None)
            stale = store is not self._primary and (
                broken or generation is None or generation < self._generation
            )
            # notify_all, not notify: the waiters are heterogeneous (queued
            # checkouts AND possibly a drain barrier); a single wakeup can
            # land on a sealed checkout that just goes back to sleep,
            # starving the drain forever.
            if self._closed or stale:
                self._created -= 1
                self._cond.notify_all()
            else:
                self._idle.append(store)
                self._cond.notify_all()
        if self._closed or stale:
            store.close()

    def lease(self, timeout: Optional[float] = None):
        """Context manager: ``with pool.lease() as store: ...`` checks the
        member back in on exit, exception or not."""
        return _Lease(self, timeout)

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Retire every replica (the primary survives).

        Called after anything that mutates the primary's data — a SegTable
        build, most notably — since replicas cloned or rehydrated earlier
        no longer match.  Idle replicas close immediately; checked-out ones
        are retired on checkin instead of rejoining the pool.
        """
        to_close: List[GraphStore] = []
        with self._cond:
            self._generation += 1
            survivors: List[GraphStore] = []
            for store in self._idle:
                if store is self._primary:
                    survivors.append(store)
                else:
                    to_close.append(store)
            self._idle = survivors
            self._created -= len(to_close)
            self._cond.notify_all()
        for store in to_close:
            store.close()

    def close(self) -> None:
        """Close every member.  Members still checked out are closed when
        they come back."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            to_close = list(self._idle)
            self._idle.clear()
            self._cond.notify_all()
        # A shared registry must stop polling a dead pool's gauges.
        self.registry.unregister_collector(self._collector)
        for store in to_close:
            store.close()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> PoolStats:
        """A point-in-time :class:`PoolStats` view over the registry
        counters plus the live structural sizes."""
        checkouts = int(self._checkout_counter.value)
        waits = int(self._wait_counter.value)
        timeouts = int(self._timeout_counter.value)
        cloned = int(self._cloned_counter.value)
        rehydrated = int(self._rehydrated_counter.value)
        with self._cond:
            idle = len(self._idle)
            return PoolStats(capacity=self._capacity, created=self._created,
                             idle=idle, in_use=self._created - idle,
                             checkouts=checkouts, waits=waits,
                             timeouts=timeouts,
                             replicas_cloned=cloned,
                             replicas_rehydrated=rehydrated)


class _DrainBarrier:
    """The object :meth:`StorePool.drain` returns.  Entering collects every
    member and seals the pool; exiting lifts the seal (the caller is
    responsible for checking the members back in, normally after a
    :meth:`StorePool.reset`)."""

    __slots__ = ("_pool", "_timeout", "members")

    def __init__(self, pool: StorePool, timeout: Optional[float]) -> None:
        self._pool = pool
        self._timeout = timeout
        self.members: List[GraphStore] = []

    def __enter__(self) -> List[GraphStore]:
        self.members = self._pool._begin_drain(self._timeout)
        return self.members

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._pool._end_drain()


class _Lease:
    """The object :meth:`StorePool.lease` returns; also exposes how long
    the checkout waited, which the executor charges to queue time."""

    __slots__ = ("_pool", "_timeout", "store", "queue_seconds")

    def __init__(self, pool: StorePool, timeout: Optional[float]) -> None:
        self._pool = pool
        self._timeout = timeout
        self.store: Optional[GraphStore] = None
        self.queue_seconds = 0.0

    def __enter__(self) -> GraphStore:
        with timer() as wait:
            self.store = self._pool.checkout(self._timeout)
        self.queue_seconds = wait.seconds
        return self.store

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.store is not None:
            self._pool.checkin(self.store)
            self.store = None


__all__ = ["PoolStats", "ReplicaFactory", "StorePool"]
