"""Shared LRU result cache and single-flight map for the service layer.

Batch workloads repeat queries heavily (the paper's evaluation itself
replays random workloads), so :class:`PathService` memoizes finished
:class:`~repro.core.path.PathResult` objects keyed by
``(graph, source, target, method, sql_style)``.  The cache is a plain LRU
over an :class:`~collections.OrderedDict` with hit/miss/eviction counters
surfaced through :class:`CacheStats`.

Both structures here are thread-safe: parallel batch workers share one
:class:`ResultCache` (every operation runs under an internal lock) and one
:class:`InFlightMap`, which deduplicates *identical queries that are
currently executing* — the window the LRU cannot cover.  The first worker
to ask for a key becomes the flight's leader and executes; every later
worker blocks on the flight and receives the leader's result (or exception)
without touching a store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.path import PathResult

CacheKey = Tuple[Hashable, ...]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU mapping of query keys to :class:`PathResult` objects.

    Safe to share across threads: lookups, inserts, invalidation, and stats
    snapshots each run under one internal lock.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, PathResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[PathResult]:
        """Return the cached result for ``key`` (refreshing its recency) or
        ``None`` on a miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def peek(self, key: CacheKey) -> Optional[PathResult]:
        """Like :meth:`get` (including the recency refresh) but without
        touching the hit/miss counters — for re-checks of a key whose
        lookup was already counted once, so parallel batches report the
        same hit rate as serial ones."""
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def put(self, key: CacheKey, result: PathResult) -> None:
        """Insert ``result``, evicting the least-recently-used entry when
        the cache is full.  A zero-capacity cache stores nothing."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate_graph(self, graph: str) -> int:
        """Drop every entry belonging to ``graph`` (its first key field);
        returns how many were dropped."""
        with self._lock:
            stale = [key for key in self._entries if key and key[0] == graph]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Current counters as an immutable :class:`CacheStats`."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._entries),
                              capacity=self.capacity)


class Flight:
    """One in-flight query: an event the leader resolves with a result or
    an exception, and any number of followers wait on."""

    __slots__ = ("_event", "result", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.result: Optional[PathResult] = None
        self.error: Optional[BaseException] = None

    def wait(self, timeout: Optional[float] = None) -> Optional[PathResult]:
        """Block until the leader resolves the flight; re-raise its
        exception, or return its result."""
        if not self._event.wait(timeout):
            raise TimeoutError("in-flight query did not resolve in time")
        if self.error is not None:
            raise self.error
        return self.result

    def _finish(self, result: Optional[PathResult],
                error: Optional[BaseException]) -> None:
        self.result = result
        self.error = error
        self._event.set()


class InFlightMap:
    """Single-flight registry of queries currently executing.

    :meth:`lease` either registers the caller as the leader of a new flight
    (it must later call :meth:`resolve` or :meth:`fail` — use
    ``try/finally``) or hands back an existing flight to wait on.
    """

    def __init__(self) -> None:
        self._flights: Dict[CacheKey, Flight] = {}
        self._lock = threading.Lock()

    def lease(self, key: CacheKey) -> Tuple[Flight, bool]:
        """Return ``(flight, is_leader)`` for ``key``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = Flight()
            self._flights[key] = flight
            return flight, True

    def resolve(self, key: CacheKey, result: PathResult) -> None:
        """Leader-only: publish ``result`` and wake every follower."""
        self._pop(key)._finish(result, None)

    def fail(self, key: CacheKey, error: BaseException) -> None:
        """Leader-only: publish ``error`` and wake every follower."""
        self._pop(key)._finish(None, error)

    def _pop(self, key: CacheKey) -> Flight:
        with self._lock:
            return self._flights.pop(key)


__all__ = ["CacheKey", "CacheStats", "Flight", "InFlightMap", "ResultCache"]
