"""Shared LRU result cache for the service layer.

Batch workloads repeat queries heavily (the paper's evaluation itself
replays random workloads), so :class:`PathService` memoizes finished
:class:`~repro.core.path.PathResult` objects keyed by
``(graph, source, target, method, sql_style)``.  The cache is a plain LRU
over an :class:`~collections.OrderedDict` with hit/miss/eviction counters
surfaced through :class:`CacheStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.core.path import PathResult

CacheKey = Tuple[Hashable, ...]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU mapping of query keys to :class:`PathResult` objects."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, PathResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[PathResult]:
        """Return the cached result for ``key`` (refreshing its recency) or
        ``None`` on a miss."""
        result = self._entries.get(key)
        if result is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return result

    def put(self, key: CacheKey, result: PathResult) -> None:
        """Insert ``result``, evicting the least-recently-used entry when
        the cache is full.  A zero-capacity cache stores nothing."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def invalidate_graph(self, graph: str) -> int:
        """Drop every entry belonging to ``graph`` (its first key field);
        returns how many were dropped."""
        stale = [key for key in self._entries if key and key[0] == graph]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        """Current counters as an immutable :class:`CacheStats`."""
        return CacheStats(hits=self._hits, misses=self._misses,
                          evictions=self._evictions, size=len(self._entries),
                          capacity=self.capacity)


__all__ = ["CacheKey", "CacheStats", "ResultCache"]
