"""Shared result cache (positive + negative) and single-flight map.

Batch workloads repeat queries heavily (the paper's evaluation itself
replays random workloads), so :class:`PathService` memoizes finished
:class:`~repro.core.path.PathResult` objects keyed by
``(graph, source, target, method, sql_style, shard_id)`` — the trailing
shard identity (``None`` on unsharded services) keeps keys disjoint across
the shards of a :class:`repro.shard.ShardRouter`.  The cache is an LRU over
an :class:`~collections.OrderedDict` with three eviction policies layered
on top of the entry-count bound:

* **TTL** — entries older than ``ttl_seconds`` are dropped on access (and
  swept opportunistically on insert), so long-lived services do not serve
  arbitrarily old answers;
* **memory footprint** — an approximate per-entry byte estimate
  (:func:`estimate_result_bytes`) is summed, and the LRU tail is evicted
  until the total fits ``max_bytes``;
* **negative results** — unreachable-pair verdicts get their own bounded
  LRU (``negative_capacity``), so repeated misses skip the full
  bidirectional fixpoint, which runs to exhaustion precisely when no path
  exists and is therefore the *most* expensive outcome to recompute.

Hit/miss/eviction counters live in a :class:`repro.obs.MetricsRegistry`
(the service's, when one is passed in, so ``/metrics`` sees them live);
:class:`CacheStats` is a point-in-time *view* over those counters rather
than parallel bookkeeping.

Both structures here are thread-safe: parallel batch workers share one
:class:`ResultCache` (every operation runs under an internal lock) and one
:class:`InFlightMap`, which deduplicates *identical queries that are
currently executing* — the window the LRU cannot cover.  The first worker
to ask for a key becomes the flight's leader and executes; every later
worker blocks on the flight and receives the leader's result (or exception)
without touching a store.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.path import PathResult
from repro.obs import MetricsRegistry
from repro.obs.schema import (
    METRIC_CACHE_EVICTIONS,
    METRIC_CACHE_HITS,
    METRIC_CACHE_MEMORY,
    METRIC_CACHE_MISSES,
    METRIC_CACHE_NEGATIVE_HITS,
    METRIC_CACHE_NEGATIVE_SIZE,
    METRIC_CACHE_SIZE,
    with_deprecated_aliases,
)

CacheKey = Tuple[Hashable, ...]


def estimate_result_bytes(result: PathResult) -> int:
    """Approximate the retained-heap cost of caching ``result``.

    Deliberately a cheap model, not ``sys.getsizeof`` recursion: a fixed
    overhead for the result object and its cache slot, one pointer-plus-int
    per path hop, and a flat charge for the stats record plus its two
    timing dicts.  The absolute numbers matter less than being monotone in
    path length, which is what dominates real footprints.
    """
    size = 256 + 28 * len(result.path)
    stats = result.stats
    if stats is not None:
        size += 512 + 64 * (len(stats.time_by_phase)
                            + len(stats.time_by_operator))
    return size


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    negative_hits: int = 0
    negative_size: int = 0
    negative_capacity: int = 0
    ttl_evictions: int = 0
    memory_evictions: int = 0
    memory_bytes: int = 0
    max_bytes: Optional[int] = None
    ttl_seconds: Optional[float] = None

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """The documented snake_case payload (see
        :mod:`repro.obs.schema`): every dataclass field plus the computed
        ``hit_rate``."""
        doc = asdict(self)
        doc["hit_rate"] = self.hit_rate
        return with_deprecated_aliases(doc, "cache")


class _Entry:
    """One positive cache slot: the result, its insertion time (for TTL)
    and its estimated footprint (for the memory bound)."""

    __slots__ = ("result", "inserted_at", "size_bytes")

    def __init__(self, result: PathResult, inserted_at: float,
                 size_bytes: int) -> None:
        self.result = result
        self.inserted_at = inserted_at
        self.size_bytes = size_bytes


class ResultCache:
    """A bounded LRU mapping of query keys to :class:`PathResult` objects,
    with optional TTL and memory-footprint eviction and a sibling negative
    cache for unreachable-pair verdicts.

    Safe to share across threads: lookups, inserts, invalidation, and stats
    snapshots each run under one internal lock.

    Args:
        capacity: maximum positive entries (``0`` disables positive
            caching).
        ttl_seconds: drop entries older than this on access (``None``
            disables TTL eviction).  Applies to negative entries too.
        max_bytes: approximate memory budget for positive entries; the LRU
            tail is evicted until the estimated total fits (``None``
            disables the bound).
        negative_capacity: maximum unreachable-pair verdicts (``0``
            disables negative caching).
        registry: the :class:`~repro.obs.MetricsRegistry` to publish
            counters into (a private one is created when omitted).
        name: the ``cache`` label on every published metric, so several
            caches (per-shard, shared router cache) stay distinguishable
            in one registry.
    """

    def __init__(self, capacity: int = 1024,
                 ttl_seconds: Optional[float] = None,
                 max_bytes: Optional[int] = None,
                 negative_capacity: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 name: str = "local") -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        if negative_capacity < 0:
            raise ValueError("negative cache capacity must be non-negative")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("cache TTL must be positive (or None)")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("cache memory bound must be positive (or None)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.max_bytes = max_bytes
        self.negative_capacity = negative_capacity
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        # key -> (verdict message, inserted_at)
        self._negative: "OrderedDict[CacheKey, Tuple[str, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self._clock = time.monotonic  # overridable in tests
        self._bytes = 0
        self.name = name
        self.registry = registry if registry is not None else MetricsRegistry()
        labels = {"cache": name}
        self._hit_counter = self.registry.counter(
            METRIC_CACHE_HITS, labels, help="Positive result-cache hits")
        self._miss_counter = self.registry.counter(
            METRIC_CACHE_MISSES, labels, help="Positive result-cache misses")
        self._negative_hit_counter = self.registry.counter(
            METRIC_CACHE_NEGATIVE_HITS, labels,
            help="Unreachable-verdict cache hits")
        self._evict_lru = self.registry.counter(
            METRIC_CACHE_EVICTIONS, {**labels, "reason": "lru"},
            help="Cache evictions by reason")
        self._evict_ttl = self.registry.counter(
            METRIC_CACHE_EVICTIONS, {**labels, "reason": "ttl"})
        self._evict_memory = self.registry.counter(
            METRIC_CACHE_EVICTIONS, {**labels, "reason": "memory"})
        size_gauge = self.registry.gauge(
            METRIC_CACHE_SIZE, labels, help="Positive entries held")
        negative_gauge = self.registry.gauge(
            METRIC_CACHE_NEGATIVE_SIZE, labels,
            help="Negative verdicts held")
        memory_gauge = self.registry.gauge(
            METRIC_CACHE_MEMORY, labels,
            help="Estimated bytes held by positive entries")

        def _collect() -> None:
            with self._lock:
                size_gauge.set(len(self._entries))
                negative_gauge.set(len(self._negative))
                memory_gauge.set(self._bytes)

        self.registry.register_collector(_collect)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- positive entries --------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[PathResult]:
        """Return the cached result for ``key`` (refreshing its recency) or
        ``None`` on a miss.  An entry past its TTL is evicted and counts as
        a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry.inserted_at):
                self._drop(key, ttl=True)
                entry = None
            if entry is None:
                self._miss_counter.inc()
                return None
            self._entries.move_to_end(key)
            self._hit_counter.inc()
            return entry.result

    def peek(self, key: CacheKey) -> Optional[PathResult]:
        """Like :meth:`get` (including the recency refresh and TTL check)
        but without touching the hit/miss counters — for re-checks of a key
        whose lookup was already counted once, so parallel batches report
        the same hit rate as serial ones."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if self._expired(entry.inserted_at):
                self._drop(key, ttl=True)
                return None
            self._entries.move_to_end(key)
            return entry.result

    def put(self, key: CacheKey, result: PathResult) -> None:
        """Insert ``result``, evicting expired entries, then the
        least-recently-used entries past the count or memory bound.  A
        zero-capacity cache stores nothing."""
        if self.capacity == 0:
            return
        entry = _Entry(result, self._clock(), estimate_result_bytes(result))
        with self._lock:
            self._sweep_expired()
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.size_bytes
            self._entries[key] = entry
            self._bytes += entry.size_bytes
            while len(self._entries) > self.capacity:
                self._drop(next(iter(self._entries)))
            if self.max_bytes is not None:
                # Never evict the entry just inserted: an oversized result
                # simply passes through without poisoning the whole cache.
                while self._bytes > self.max_bytes and len(self._entries) > 1:
                    self._drop(next(iter(self._entries)), memory=True)

    # -- negative entries --------------------------------------------------------

    def get_negative(self, key: CacheKey) -> Optional[str]:
        """Return the cached unreachable-verdict message for ``key``
        (refreshing its recency), or ``None`` when the pair is not known to
        be unreachable.  Does not touch the positive hit/miss counters."""
        with self._lock:
            cached = self._negative.get(key)
            if cached is None:
                return None
            message, inserted_at = cached
            if self._expired(inserted_at):
                del self._negative[key]
                self._evict_ttl.inc()
                return None
            self._negative.move_to_end(key)
            self._negative_hit_counter.inc()
            return message

    def put_negative(self, key: CacheKey, message: str) -> None:
        """Record that ``key``'s endpoints are not connected.  A
        zero-capacity negative cache stores nothing."""
        if self.negative_capacity == 0:
            return
        with self._lock:
            if key in self._negative:
                self._negative.move_to_end(key)
            self._negative[key] = (message, self._clock())
            while len(self._negative) > self.negative_capacity:
                self._negative.popitem(last=False)
                self._evict_lru.inc()

    # -- maintenance -------------------------------------------------------------

    def invalidate_graph(self, graph: str) -> int:
        """Drop every entry belonging to ``graph`` (its first key field),
        negative verdicts included; returns how many were dropped."""
        with self._lock:
            stale = [key for key in self._entries if key and key[0] == graph]
            for key in stale:
                self._bytes -= self._entries.pop(key).size_bytes
            stale_negative = [key for key in self._negative
                              if key and key[0] == graph]
            for key in stale_negative:
                del self._negative[key]
            return len(stale) + len(stale_negative)

    def clear(self) -> None:
        """Drop all entries, negative verdicts included (counters are
        kept)."""
        with self._lock:
            self._entries.clear()
            self._negative.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        """A point-in-time :class:`CacheStats` view over the registry
        counters plus the live structural sizes."""
        ttl_evictions = int(self._evict_ttl.value)
        memory_evictions = int(self._evict_memory.value)
        evictions = (int(self._evict_lru.value) + ttl_evictions
                     + memory_evictions)
        with self._lock:
            return CacheStats(hits=int(self._hit_counter.value),
                              misses=int(self._miss_counter.value),
                              evictions=evictions,
                              size=len(self._entries),
                              capacity=self.capacity,
                              negative_hits=int(
                                  self._negative_hit_counter.value),
                              negative_size=len(self._negative),
                              negative_capacity=self.negative_capacity,
                              ttl_evictions=ttl_evictions,
                              memory_evictions=memory_evictions,
                              memory_bytes=self._bytes,
                              max_bytes=self.max_bytes,
                              ttl_seconds=self.ttl_seconds)

    # -- internals (call with the lock held) -------------------------------------

    def _expired(self, inserted_at: float) -> bool:
        return (self.ttl_seconds is not None
                and self._clock() - inserted_at > self.ttl_seconds)

    def _drop(self, key: CacheKey, ttl: bool = False,
              memory: bool = False) -> None:
        self._bytes -= self._entries.pop(key).size_bytes
        if ttl:
            self._evict_ttl.inc()
        elif memory:
            self._evict_memory.inc()
        else:
            self._evict_lru.inc()

    def _sweep_expired(self) -> None:
        if self.ttl_seconds is None:
            return
        expired = [key for key, entry in self._entries.items()
                   if self._expired(entry.inserted_at)]
        for key in expired:
            self._drop(key, ttl=True)
        expired_negative = [key for key, (_, inserted_at)
                            in self._negative.items()
                            if self._expired(inserted_at)]
        for key in expired_negative:
            del self._negative[key]
            self._evict_ttl.inc()


class Flight:
    """One in-flight query: an event the leader resolves with a result or
    an exception, and any number of followers wait on."""

    __slots__ = ("_event", "result", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.result: Optional[PathResult] = None
        self.error: Optional[BaseException] = None

    def wait(self, timeout: Optional[float] = None) -> Optional[PathResult]:
        """Block until the leader resolves the flight; re-raise its
        exception, or return its result."""
        if not self._event.wait(timeout):
            raise TimeoutError("in-flight query did not resolve in time")
        if self.error is not None:
            raise self.error
        return self.result

    def _finish(self, result: Optional[PathResult],
                error: Optional[BaseException]) -> None:
        self.result = result
        self.error = error
        self._event.set()


class InFlightMap:
    """Single-flight registry of queries currently executing.

    :meth:`lease` either registers the caller as the leader of a new flight
    (it must later call :meth:`resolve` or :meth:`fail` — use
    ``try/finally``) or hands back an existing flight to wait on.
    """

    def __init__(self) -> None:
        self._flights: Dict[CacheKey, Flight] = {}
        self._lock = threading.Lock()

    def lease(self, key: CacheKey) -> Tuple[Flight, bool]:
        """Return ``(flight, is_leader)`` for ``key``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = Flight()
            self._flights[key] = flight
            return flight, True

    def resolve(self, key: CacheKey, result: PathResult) -> None:
        """Leader-only: publish ``result`` and wake every follower."""
        self._pop(key)._finish(result, None)

    def fail(self, key: CacheKey, error: BaseException) -> None:
        """Leader-only: publish ``error`` and wake every follower."""
        self._pop(key)._finish(None, error)

    def _pop(self, key: CacheKey) -> Flight:
        with self._lock:
            return self._flights.pop(key)


__all__ = ["CacheKey", "CacheStats", "Flight", "InFlightMap", "ResultCache",
           "estimate_result_bytes"]
