"""Micro-benchmark driver that measures a backend's unit costs.

``calibrate_profile`` loads a synthetic probe graph into a fresh store of
the backend under test and measures, in order:

1. **per-statement overhead** — a cheap statistics statement repeated over
   a one-row ``TVisited`` (nothing to scan, so the time *is* the
   dispatch/parse/execute overhead);
2. **per-scan-row cost** — the same statement over a fully populated
   ``TVisited``; the delta per row prices the frontier-wide statistics
   statements every driver loop issues;
3. **per-candidate-row E/M cost** — one set-at-a-time ``expand`` over a
   frontier covering every node, which pushes every edge through the
   join+merge once;
4. **SegTable costs** — the offline construction (per-stored-segment
   build cost, the ``lthd="auto"`` input) and a segment-relation
   ``expand`` (per-segment-row online cost);
5. **per-method biases** — each search method runs a few real probe
   queries; ``observed / predicted`` becomes the method's starting bias,
   absorbing whatever the structural model misses about this backend.

Every timed section takes the **minimum over repeats** (interference only
ever adds time), so profiles are stable enough to persist.  The whole
probe takes well under a second on SQLite and a few seconds on the
pure-Python engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.directions import FORWARD_DIRECTION
from repro.core.segtable import build_segtable
from repro.core.stats import QueryStats
from repro.core.store.base import GraphStore
from repro.core.store.registry import create_store
from repro.errors import PathNotFoundError
from repro.obs import timer, wall_time
from repro.graph.generators import grid_graph, power_law_graph
from repro.graph.model import Graph
from repro.graph.stats import compute_statistics
from repro.service.costmodel import (
    BIAS_MAX,
    BIAS_MIN,
    CostModel,
    CostProfile,
    host_fingerprint,
)

PROBE_NODES = 140
"""Default probe-graph size: big enough to separate the methods, small
enough to keep the probe fast on a pure-Python engine."""

PROBE_WEIGHTS = (1, 4)
"""Probe edge weights: a narrow range so the SegTable probe actually
compounds segments at a small ``lthd``."""

PROBE_LTHD = 2.0

GRID_PROBE_SIDE = 7
"""Side of the secondary grid probe.  Biases are fitted across *two*
probe shapes — the hub-heavy power graph (wide tie sets, where
set-at-a-time shines) and a uniform-degree grid (no ties, where
node-at-a-time does) — so one shape cannot skew a method's bias."""

_COST_FLOOR = 1e-9
_STATEMENT_FLOOR = 1e-7

PROBED_METHODS = ("DJ", "BDJ", "BSDJ", "BSEG")


def probe_graph(num_nodes: int = PROBE_NODES, seed: int = 0) -> Graph:
    """The synthetic probe graph calibration runs against."""
    return power_law_graph(num_nodes, edges_per_node=2,
                           weight_range=PROBE_WEIGHTS, seed=seed)


def _min_time(action, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        with timer() as took:
            action()
        best = min(best, took.seconds)
    return best


def _seed_frontier(store: GraphStore, nodes: Sequence[int]) -> None:
    """Fill ``TVisited`` with every node at distance 0, flagged as the
    selected frontier (flag=2), so one ``expand`` joins every edge."""
    store.reset_visited()
    store.insert_visited([
        {"nid": nid, "d2s": 0.0, "p2s": nid, "f": 2} for nid in nodes
    ])


def _measure_statement_cost(store: GraphStore, repeats: int) -> float:
    store.reset_visited()
    store.insert_visited([{"nid": 0, "d2s": 0.0, "p2s": 0, "f": 0}])

    def one_round() -> None:
        for _ in range(16):
            store.min_unfinalized_distance(FORWARD_DIRECTION)

    return max(_STATEMENT_FLOOR, _min_time(one_round, repeats) / 16)


def _measure_scan_row_cost(store: GraphStore, nodes: Sequence[int],
                           statement_cost: float, repeats: int) -> float:
    store.reset_visited()
    store.insert_visited([
        {"nid": nid, "d2s": float(index), "p2s": nid, "f": 0}
        for index, nid in enumerate(nodes)
    ])

    def one_round() -> None:
        for _ in range(8):
            store.min_unfinalized_distance(FORWARD_DIRECTION)

    per_statement = _min_time(one_round, repeats) / 8
    return max(_COST_FLOOR,
               (per_statement - statement_cost) / max(1, len(nodes)))


def _measure_row_cost(store: GraphStore, nodes: Sequence[int],
                      candidate_rows: int, statement_cost: float,
                      repeats: int, use_segtable: bool = False) -> float:
    best = float("inf")
    for _ in range(repeats):
        _seed_frontier(store, nodes)
        with timer() as took:
            store.expand(FORWARD_DIRECTION, use_segtable=use_segtable)
        best = min(best, took.seconds)
    return max(_COST_FLOOR, (best - statement_cost) / max(1, candidate_rows))


def _probe_queries(graph: Graph, count: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    pairs = []
    while len(pairs) < count:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source != target:
            pairs.append((source, target))
    return pairs


def _measure_method_seconds(store: GraphStore, method: str,
                            queries: Sequence[Tuple[int, int]],
                            repeats: int) -> Optional[float]:
    """Average per-query seconds of ``method`` on the probe store (best of
    ``repeats`` batch runs); ``None`` if every pair was unreachable."""
    from repro.service.planner import RELATIONAL_METHODS

    algorithm = RELATIONAL_METHODS[method]
    best = float("inf")
    answered = 0
    for _ in range(repeats):
        answered = 0
        with timer() as took:
            for source, target in queries:
                try:
                    algorithm(store, source, target)
                    answered += 1
                except PathNotFoundError:
                    continue
        best = min(best, took.seconds)
    if answered == 0:
        return None
    return best / answered


def calibrate_profile(backend: str, *, seed: int = 0,
                      probe_nodes: int = PROBE_NODES,
                      queries_per_method: int = 3,
                      repeats: int = 3,
                      store_path: Optional[str] = None) -> CostProfile:
    """Measure ``backend``'s unit costs and starting biases.

    Args:
        backend: a registered backend name.
        seed: probe-graph and probe-query seed.
        probe_nodes: probe-graph size.
        queries_per_method: probe queries behind each method bias.
        repeats: timing repetitions (minimum wins).
        store_path: ``path`` for the probe store.  Embedded backends leave
            it ``None`` (a fresh in-memory store); client-server backends
            need a DSN — normally one from
            :meth:`~repro.core.store.base.GraphStore.calibration_path`,
            whose fresh table prefix keeps the probe out of any hosted
            graph's namespace (:meth:`PathService.calibrate` passes this
            automatically for hosted server backends).

    Returns:
        A calibrated :class:`~repro.service.costmodel.CostProfile` stamped
        with this host's fingerprint.
    """
    started = timer()
    graph = probe_graph(probe_nodes, seed=seed)
    stats = compute_statistics(graph)
    nodes = sorted(graph.nodes())
    store = create_store(backend, path=store_path)
    try:
        store.load_graph(graph)
        store.begin_query(QueryStats(method="calibration"))

        statement_cost = _measure_statement_cost(store, repeats)
        scan_row_cost = _measure_scan_row_cost(store, nodes, statement_cost,
                                               repeats)
        row_cost = _measure_row_cost(store, nodes, graph.num_edges,
                                     statement_cost, repeats)

        build = build_segtable(store, PROBE_LTHD)
        seg_build_row_cost = max(
            _COST_FLOOR,
            build.total_time / max(1, build.encoding_number))
        store.begin_query(QueryStats(method="calibration"))
        seg_row_cost = _measure_row_cost(store, nodes,
                                         max(1, build.out_segments),
                                         statement_cost, repeats,
                                         use_segtable=True)

        profile = CostProfile(
            backend=backend,
            host=host_fingerprint(),
            statement_cost=statement_cost,
            scan_row_cost=scan_row_cost,
            row_cost=row_cost,
            seg_row_cost=seg_row_cost,
            seg_build_row_cost=seg_build_row_cost,
            calibrated=True,
            calibrated_at=wall_time(),
        )

        # Per-method starting biases: observed / structurally-predicted,
        # summed over two probe shapes — the hub-heavy power graph and a
        # uniform-degree grid — so the model ships with each backend's
        # residual folded in instead of waiting for runtime feedback.
        model = CostModel(profile)
        grid = grid_graph(GRID_PROBE_SIDE, GRID_PROBE_SIDE,
                          weight_range=PROBE_WEIGHTS, seed=seed)
        # The grid probe runs *simultaneously* with the power-graph store,
        # so on a client-server backend it must land in its own table
        # namespace: calibration_path() hands out a DSN with a fresh probe
        # prefix (embedded stores return None — a plain in-memory store).
        grid_store = create_store(backend, path=store.calibration_path())
        try:
            grid_store.load_graph(grid)
            probes = [
                (store, graph, stats, build),
                (grid_store, grid, compute_statistics(grid), None),
            ]
            observed_sum: Dict[str, float] = {}
            predicted_sum: Dict[str, float] = {}
            for probe_store, probe, probe_stats, seg in probes:
                queries = _probe_queries(probe, queries_per_method, seed + 1)
                for method in PROBED_METHODS:
                    if method == "BSEG" and seg is None:
                        continue
                    probe_store.begin_query(QueryStats(method="calibration"))
                    observed = _measure_method_seconds(
                        probe_store, method, queries, min(2, repeats))
                    if observed is None:
                        continue
                    predicted = model.estimate(
                        method, probe_stats,
                        segtable_lthd=PROBE_LTHD if seg is not None else None,
                        segtable=seg).seconds
                    if predicted <= 0:
                        continue
                    observed_sum[method] = (observed_sum.get(method, 0.0)
                                            + observed)
                    predicted_sum[method] = (predicted_sum.get(method, 0.0)
                                             + predicted)
            profile.method_bias = {
                method: min(BIAS_MAX, max(BIAS_MIN,
                                          observed_sum[method]
                                          / predicted_sum[method]))
                for method in observed_sum
            }
        finally:
            grid_store.destroy()
        profile.probe_seconds = started.seconds
        return profile
    finally:
        # destroy(), not close(): on a shared server database the probe
        # must drop its namespaced tables again (embedded stores just
        # close).
        store.destroy()


__all__ = [
    "PROBE_LTHD",
    "PROBE_NODES",
    "PROBED_METHODS",
    "calibrate_profile",
    "probe_graph",
]
