"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded, thread-safe schedule of failures to
replay against a running system: *drop the connection at the Nth
statement*, *fail three times then recover*, *add 5ms to every wire
call with probability 0.2*.  The plan itself only decides **when** a
fault fires — the installers in :mod:`repro.faults.inject` decide
**what** firing means at each seam (a
:class:`~repro.errors.BackendConnectionError` from a store, a
:class:`~repro.errors.ShardUnavailableError` from a shard client, an
``InterfaceError`` from a fallback wire connection), so every injected
failure is indistinguishable from the real one and exercises the exact
recovery path production would take.

Determinism: all probabilistic draws come from one ``random.Random``
seeded at construction, and every decision happens under one lock in
operation order, so a single-threaded run with a fixed seed replays the
identical fault schedule every time.  Multi-threaded runs are
schedule-dependent (operation interleaving is), but the *number* of
fired faults for ``times``-bounded and ``at_op`` specs is still exact.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidQueryError

KIND_ERROR = "error"
"""The fault raises the seam's connection-failure error."""

KIND_LATENCY = "latency"
"""The fault sleeps ``latency_s`` before the operation proceeds."""

_KINDS = (KIND_ERROR, KIND_LATENCY)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule inside a :class:`FaultPlan`.

    Attributes:
        kind: :data:`KIND_ERROR` (raise) or :data:`KIND_LATENCY` (sleep).
        at_op: fire exactly on the Nth operation *eligible for this
            spec* (1-based; with a ``match`` filter, only matching
            operations count — ``drop_at(1, match="expand")`` kills the
            first E-step, whatever its global position).  When set, the
            probability draw is skipped.
        probability: chance of firing on each eligible operation when
            ``at_op`` is unset (drawn from the plan's seeded RNG).
        times: stop firing after this many hits (``None`` = forever).
            ``flaky(3)`` — fail three times then recover — is
            ``times=3`` with certainty.
        latency_s: sleep duration for :data:`KIND_LATENCY` faults.
        match: only consider operations whose context string contains
            this substring (e.g. ``"expand"`` to kill a store mid-FEM,
            ``"/execute"`` to target batch wire calls only).
    """

    kind: str = KIND_ERROR
    at_op: Optional[int] = None
    probability: float = 1.0
    times: Optional[int] = 1
    latency_s: float = 0.0
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidQueryError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.at_op is not None and self.at_op < 1:
            raise InvalidQueryError(
                f"at_op must be >= 1 (operations are 1-based), got {self.at_op}")
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidQueryError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise InvalidQueryError(
                f"times must be >= 1 or None, got {self.times}")
        if self.latency_s < 0.0:
            raise InvalidQueryError(
                f"latency_s must be >= 0, got {self.latency_s}")


def drop_at(op: int, match: Optional[str] = None) -> FaultSpec:
    """Drop the connection at exactly the ``op``-th intercepted
    operation — the *kill mid-FEM* primitive: pick an ``op`` that lands
    inside the iteration loop and the statement stream dies mid-query."""
    return FaultSpec(kind=KIND_ERROR, at_op=op, match=match)


def flaky(times: int, probability: float = 1.0,
          match: Optional[str] = None) -> FaultSpec:
    """Fail the first ``times`` (eligible) operations, then recover —
    the retry/failover exercise."""
    return FaultSpec(kind=KIND_ERROR, times=times, probability=probability,
                     match=match)


def slow(latency_s: float, probability: float = 1.0,
         match: Optional[str] = None) -> FaultSpec:
    """Inject ``latency_s`` of delay (every time; bound with
    ``probability`` for a long-tail rather than a uniform slowdown)."""
    return FaultSpec(kind=KIND_LATENCY, latency_s=latency_s,
                     probability=probability, times=None, match=match)


class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` rules.

    Installers call :meth:`before` ahead of each intercepted operation;
    it applies latency faults (sleeps) itself and returns the first
    error-kind spec that fired — or ``None`` — leaving the seam-specific
    raise to the caller.  One plan may be installed on several seams at
    once; the operation counter is global to the plan.
    """

    def __init__(self, faults: Sequence[FaultSpec], seed: int = 0) -> None:
        self._specs: Tuple[FaultSpec, ...] = tuple(faults)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._ops = 0
        self._seen: List[int] = [0] * len(self._specs)
        self._fired: List[int] = [0] * len(self._specs)
        self._log: List[Tuple[int, str, str]] = []

    # -- introspection (for benches and tests) --------------------------------

    @property
    def ops(self) -> int:
        """Operations intercepted so far (fired or not)."""
        with self._lock:
            return self._ops

    @property
    def fired(self) -> int:
        """Total faults fired so far, across all specs."""
        with self._lock:
            return sum(self._fired)

    @property
    def log(self) -> List[Tuple[int, str, str]]:
        """``(op_index, context, kind)`` per fired fault, in fire order."""
        with self._lock:
            return list(self._log)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready summary (bench reports embed this)."""
        with self._lock:
            return {
                "ops": self._ops,
                "fired": sum(self._fired),
                "per_spec": list(self._fired),
            }

    # -- the decision point ---------------------------------------------------

    def before(self, context: str) -> Optional[FaultSpec]:
        """Decide the fate of the next operation.

        Counts the operation, fires every eligible spec (latency faults
        sleep here, *outside* the lock so concurrent operations are not
        serialized by an injected delay), and returns the first fired
        error-kind spec for the caller to translate into its seam's
        error — or ``None`` when the operation should proceed cleanly.
        """
        error: Optional[FaultSpec] = None
        delay = 0.0
        with self._lock:
            self._ops += 1
            op = self._ops
            for index, spec in enumerate(self._specs):
                if spec.match is not None and spec.match not in context:
                    continue
                self._seen[index] += 1
                if spec.times is not None and self._fired[index] >= spec.times:
                    continue
                if spec.at_op is not None:
                    hit = self._seen[index] == spec.at_op
                else:
                    hit = self._rng.random() < spec.probability
                if not hit:
                    continue
                self._fired[index] += 1
                self._log.append((op, context, spec.kind))
                if spec.kind == KIND_LATENCY:
                    delay += spec.latency_s
                elif error is None:
                    error = spec
        if delay > 0.0:
            time.sleep(delay)
        return error


__all__ = [
    "FaultPlan",
    "FaultSpec",
    "KIND_ERROR",
    "KIND_LATENCY",
    "drop_at",
    "flaky",
    "slow",
]
