"""Deterministic fault injection for resilience testing.

Build a seeded :class:`FaultPlan` from :class:`FaultSpec` rules (or the
:func:`drop_at` / :func:`flaky` / :func:`slow` shorthands) and arm it on
a live seam with an installer — :func:`install_store_faults` for a
:class:`~repro.core.store.base.GraphStore`, :func:`install_client_faults`
for a :class:`~repro.serve.client.ShardClient`,
:func:`install_connection_faults` for a fallback wire connection.  Each
seam fails with its *real* typed error, so recovery paths (driver error
propagation, client retries, router failover, circuit breakers) are
exercised exactly as production failures would.

    from repro.faults import FaultPlan, flaky, install_client_faults

    plan = FaultPlan([flaky(2)], seed=7)   # fail twice, then recover
    install_client_faults(client, plan)    # retries absorb both faults

Used by :func:`repro.workload.run_traffic`'s chaos mode and the
``bench_chaos_slo`` benchmark to assert zero wrong answers under faults.
"""

from repro.faults.inject import (
    STORE_STATEMENT_METHODS,
    install_client_faults,
    install_connection_faults,
    install_store_faults,
    uninstall_faults,
)
from repro.faults.plan import (
    KIND_ERROR,
    KIND_LATENCY,
    FaultPlan,
    FaultSpec,
    drop_at,
    flaky,
    slow,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "KIND_ERROR",
    "KIND_LATENCY",
    "STORE_STATEMENT_METHODS",
    "drop_at",
    "flaky",
    "install_client_faults",
    "install_connection_faults",
    "install_store_faults",
    "slow",
    "uninstall_faults",
]
