"""Fault installers — one per seam.

Each installer takes a live object and a :class:`~repro.faults.plan.FaultPlan`
and rebinds the object's operation methods (instance-level, so the class
and every other instance are untouched) to consult the plan first.  A
fired error-kind fault raises the **same typed error the seam raises for
a real failure**, so drivers, retry loops, failover and circuit breakers
all exercise their production recovery paths:

========================  =========================================
seam                      injected error
========================  =========================================
:class:`GraphStore`       :class:`repro.errors.BackendConnectionError`
:class:`ShardClient`      :class:`repro.errors.ShardUnavailableError`
``FallbackConnection``    ``repro.store.fallback_server.InterfaceError``
========================  =========================================

Every installer returns the object it was given (for chaining) and is
idempotent-unsafe by design — installing twice stacks two interceptors.
Use :func:`uninstall_faults` to restore the original bindings.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendConnectionError, ShardUnavailableError
from repro.faults.plan import FaultPlan

STORE_STATEMENT_METHODS: Tuple[str, ...] = (
    "reset_visited",
    "insert_visited",
    "top1_min_unfinalized",
    "min_unfinalized_distance",
    "count_unfinalized",
    "min_total_cost",
    "meeting_node",
    "is_finalized",
    "visited_count",
    "visited_rows",
    "finalize_node",
    "select_frontier_set",
    "finalize_frontier",
    "expand",
    "expand_hops",
    "get_link",
    "get_distance",
)
"""The per-query statement surface of :class:`~repro.core.store.base.GraphStore`
— every call a FEM driver makes while a query is running.  Intercepting
these is what makes ``drop_at(n)`` a *kill mid-FEM*: the Nth statement
lands inside the iteration loop and the backend dies under the driver."""

_SAVED_ATTR = "__repro_fault_saved__"


def _remember(target: object, name: str) -> None:
    saved: List[Tuple[str, Any]] = getattr(target, _SAVED_ATTR, None)
    if saved is None:
        saved = []
        setattr(target, _SAVED_ATTR, saved)
    saved.append((name, getattr(target, name)))


def uninstall_faults(target: object) -> None:
    """Restore every method an installer rebound on ``target`` (in
    reverse install order, so stacked installs unwind cleanly)."""
    saved = getattr(target, _SAVED_ATTR, None)
    if not saved:
        return
    for name, original in reversed(saved):
        setattr(target, name, original)
    delattr(target, _SAVED_ATTR)


def install_store_faults(store: object, plan: FaultPlan,
                         methods: Sequence[str] = STORE_STATEMENT_METHODS
                         ) -> object:
    """Arm ``plan`` on a :class:`GraphStore`'s statement surface.

    Fired error faults raise :class:`BackendConnectionError` — the exact
    error a dropped database connection produces — from whichever
    statement the plan lands on.  Context strings are ``store.<method>``,
    so ``match="expand"`` kills specifically inside the E-step.
    """
    for name in methods:
        original = getattr(store, name, None)
        if original is None or not callable(original):
            continue
        _remember(store, name)

        def wrapped(*args: object, __original: Any = original,
                    __name: str = name, **kwargs: object) -> object:
            if plan.before(f"store.{__name}") is not None:
                raise BackendConnectionError(
                    f"injected fault: backend connection dropped at "
                    f"store.{__name}")
            return __original(*args, **kwargs)

        functools.update_wrapper(wrapped, original)
        setattr(store, name, wrapped)
    return store


def install_client_faults(client: object, plan: FaultPlan) -> object:
    """Arm ``plan`` on a :class:`~repro.serve.client.ShardClient`.

    Wraps the single-attempt request primitive, so fired error faults
    raise :class:`ShardUnavailableError` *before* anything touches the
    wire — exercising the client's jittered retry loop and the router's
    failover/breaker exactly as a dead server would.  Context strings
    are ``client.<path>`` (e.g. ``client./shortest_path``).
    """
    original = client._request_once  # type: ignore[attr-defined]
    _remember(client, "_request_once")

    def wrapped(path: str, body: Optional[Dict[str, object]],
                request_id: Optional[str] = None,
                timeout: Optional[float] = None) -> Dict[str, object]:
        if plan.before(f"client.{path}") is not None:
            raise ShardUnavailableError(
                f"injected fault: shard unreachable for {path}")
        return original(path, body, request_id=request_id, timeout=timeout)

    client._request_once = wrapped  # type: ignore[attr-defined]
    return client


def install_connection_faults(connection: object, plan: FaultPlan) -> object:
    """Arm ``plan`` on a fallback wire ``FallbackConnection``.

    Fired error faults sever the socket for real (so the connection is
    unusable afterwards, like a genuine drop) and raise the DB-API
    ``InterfaceError`` that :mod:`repro.store.dbapi` maps to
    :class:`BackendConnectionError`.  Context strings are
    ``fallback.<op>``.
    """
    from repro.store.fallback_server import InterfaceError

    original = connection._roundtrip  # type: ignore[attr-defined]
    _remember(connection, "_roundtrip")

    def wrapped(request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op", "?") if isinstance(request, dict) else "?"
        if plan.before(f"fallback.{op}") is not None:
            connection._closed = True  # type: ignore[attr-defined]
            try:
                connection._sock.close()  # type: ignore[attr-defined]
            except OSError:  # pragma: no cover - close is best-effort
                pass
            raise InterfaceError(
                f"injected fault: fallback connection dropped at {op}")
        return original(request)

    connection._roundtrip = wrapped  # type: ignore[attr-defined]
    return connection


__all__ = [
    "STORE_STATEMENT_METHODS",
    "install_client_faults",
    "install_connection_faults",
    "install_store_faults",
    "uninstall_faults",
]
