"""Query workloads and experiment running helpers.

The paper's evaluation answers 100 random shortest-path queries per
configuration and reports averages.  This package generates such workloads
(pairs of connected nodes) and runs them against a
:class:`~repro.core.api.RelationalPathFinder`, aggregating the statistics the
paper's tables and figures report.
"""

from repro.workloads.queries import QueryWorkload, generate_queries
from repro.workloads.runner import MethodAggregate, run_workload

__all__ = ["MethodAggregate", "QueryWorkload", "generate_queries", "run_workload"]
