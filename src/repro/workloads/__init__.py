"""Query workloads and experiment running helpers.

The paper's evaluation answers 100 random shortest-path queries per
configuration and reports averages.  This package generates such workloads
(pairs of connected nodes) and runs them either against the legacy
:class:`~repro.core.api.RelationalPathFinder` (:func:`run_workload`) or
through a :class:`~repro.service.PathService` batch
(:func:`run_service_workload`), aggregating the statistics the paper's
tables and figures report.
"""

from repro.workloads.queries import QueryWorkload, generate_queries
from repro.workloads.runner import (
    MethodAggregate,
    aggregate_results,
    run_service_workload,
    run_workload,
)

__all__ = [
    "MethodAggregate",
    "QueryWorkload",
    "aggregate_results",
    "generate_queries",
    "run_service_workload",
    "run_workload",
]
