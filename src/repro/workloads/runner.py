"""Run query workloads and aggregate per-method statistics.

The aggregates mirror the columns of the paper's Tables 2 and 3: average
query time, average number of expansions ("Exps") and average number of
visited nodes ("Vst"), plus the phase/operator time breakdowns used by
Figure 6.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.api import RelationalPathFinder
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.errors import PathNotFoundError


@dataclass
class MethodAggregate:
    """Aggregated statistics of one method over a workload.

    All averages are over the queries that found a path; unreachable pairs
    are counted in ``not_found`` and excluded from the averages (matching
    the paper's use of random queries over connected regions).
    """

    method: str
    sql_style: str = NSQL
    queries: int = 0
    not_found: int = 0
    avg_time: float = 0.0
    avg_expansions: float = 0.0
    avg_statements: float = 0.0
    avg_visited: float = 0.0
    avg_distance: float = 0.0
    avg_path_edges: float = 0.0
    time_by_phase: Dict[str, float] = field(default_factory=dict)
    time_by_operator: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dict suitable for table rendering."""
        return {
            "method": self.method,
            "sql_style": self.sql_style,
            "queries": self.queries,
            "avg_time_s": round(self.avg_time, 5),
            "avg_exps": round(self.avg_expansions, 1),
            "avg_stmts": round(self.avg_statements, 1),
            "avg_visited": round(self.avg_visited, 1),
            "avg_dist": round(self.avg_distance, 1),
        }


def run_workload(finder: RelationalPathFinder,
                 queries: Iterable[Tuple[int, int]],
                 method: str,
                 sql_style: str = NSQL,
                 max_iterations: Optional[int] = None) -> MethodAggregate:
    """Run every query with ``method`` and aggregate the statistics."""
    results: List[PathResult] = []
    not_found = 0
    for source, target in queries:
        try:
            result = finder.shortest_path(source, target, method=method,
                                          sql_style=sql_style,
                                          max_iterations=max_iterations)
        except PathNotFoundError:
            not_found += 1
            continue
        results.append(result)
    aggregate = MethodAggregate(method=method.upper(), sql_style=sql_style,
                                queries=len(results), not_found=not_found)
    if not results:
        return aggregate
    count = float(len(results))
    phase_totals: Dict[str, float] = defaultdict(float)
    operator_totals: Dict[str, float] = defaultdict(float)
    for result in results:
        stats = result.stats
        if stats is None:
            continue
        aggregate.avg_time += stats.total_time
        aggregate.avg_expansions += stats.expansions
        aggregate.avg_statements += stats.statements
        aggregate.avg_visited += stats.visited_nodes
        aggregate.avg_distance += result.distance
        aggregate.avg_path_edges += result.num_edges
        for phase, seconds in stats.time_by_phase.items():
            phase_totals[phase] += seconds
        for operator, seconds in stats.time_by_operator.items():
            operator_totals[operator] += seconds
    aggregate.avg_time /= count
    aggregate.avg_expansions /= count
    aggregate.avg_statements /= count
    aggregate.avg_visited /= count
    aggregate.avg_distance /= count
    aggregate.avg_path_edges /= count
    aggregate.time_by_phase = {key: value / count for key, value in phase_totals.items()}
    aggregate.time_by_operator = {
        key: value / count for key, value in operator_totals.items()
    }
    return aggregate
