"""Run query workloads and aggregate per-method statistics.

The aggregates mirror the columns of the paper's Tables 2 and 3: average
query time, average number of expansions ("Exps") and average number of
visited nodes ("Vst"), plus the phase/operator time breakdowns used by
Figure 6.

Two entry points are provided: :func:`run_workload` drives the legacy
:class:`~repro.core.api.RelationalPathFinder` one query at a time, and
:func:`run_service_workload` pushes the whole workload through
:meth:`~repro.service.PathService.shortest_path_many`, returning the same
aggregate plus the batch's cache statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.api import RelationalPathFinder
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.stats import BatchStats
from repro.errors import PathNotFoundError
from repro.service.session import DEFAULT_GRAPH, PathService


@dataclass
class MethodAggregate:
    """Aggregated statistics of one method over a workload.

    All averages are over the queries that found a path; unreachable pairs
    are counted in ``not_found`` and excluded from the averages (matching
    the paper's use of random queries over connected regions).
    """

    method: str
    sql_style: str = NSQL
    queries: int = 0
    not_found: int = 0
    avg_time: float = 0.0
    avg_expansions: float = 0.0
    avg_statements: float = 0.0
    avg_visited: float = 0.0
    avg_distance: float = 0.0
    avg_path_edges: float = 0.0
    time_by_phase: Dict[str, float] = field(default_factory=dict)
    time_by_operator: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dict suitable for table rendering."""
        return {
            "method": self.method,
            "sql_style": self.sql_style,
            "queries": self.queries,
            "avg_time_s": round(self.avg_time, 5),
            "avg_exps": round(self.avg_expansions, 1),
            "avg_stmts": round(self.avg_statements, 1),
            "avg_visited": round(self.avg_visited, 1),
            "avg_dist": round(self.avg_distance, 1),
        }


def aggregate_results(results: List[PathResult], method: str,
                      sql_style: str = NSQL,
                      not_found: int = 0) -> MethodAggregate:
    """Fold per-query :class:`PathResult` statistics into a
    :class:`MethodAggregate`."""
    aggregate = MethodAggregate(method=method.upper(), sql_style=sql_style,
                                queries=len(results), not_found=not_found)
    if not results:
        return aggregate
    count = float(len(results))
    phase_totals: Dict[str, float] = defaultdict(float)
    operator_totals: Dict[str, float] = defaultdict(float)
    for result in results:
        stats = result.stats
        if stats is None:
            continue
        aggregate.avg_time += stats.total_time
        aggregate.avg_expansions += stats.expansions
        aggregate.avg_statements += stats.statements
        aggregate.avg_visited += stats.visited_nodes
        aggregate.avg_distance += result.distance
        aggregate.avg_path_edges += result.num_edges
        for phase, seconds in stats.time_by_phase.items():
            phase_totals[phase] += seconds
        for operator, seconds in stats.time_by_operator.items():
            operator_totals[operator] += seconds
    aggregate.avg_time /= count
    aggregate.avg_expansions /= count
    aggregate.avg_statements /= count
    aggregate.avg_visited /= count
    aggregate.avg_distance /= count
    aggregate.avg_path_edges /= count
    aggregate.time_by_phase = {key: value / count for key, value in phase_totals.items()}
    aggregate.time_by_operator = {
        key: value / count for key, value in operator_totals.items()
    }
    return aggregate


def run_workload(finder: RelationalPathFinder,
                 queries: Iterable[Tuple[int, int]],
                 method: str,
                 sql_style: str = NSQL,
                 max_iterations: Optional[int] = None) -> MethodAggregate:
    """Run every query with ``method`` and aggregate the statistics."""
    results: List[PathResult] = []
    not_found = 0
    for source, target in queries:
        try:
            result = finder.shortest_path(source, target, method=method,
                                          sql_style=sql_style,
                                          max_iterations=max_iterations)
        except PathNotFoundError:
            not_found += 1
            continue
        results.append(result)
    return aggregate_results(results, method=method, sql_style=sql_style,
                             not_found=not_found)


def run_service_workload(service: PathService,
                         queries: Iterable[Tuple[int, int]],
                         method: str = "auto",
                         graph: str = DEFAULT_GRAPH,
                         sql_style: str = NSQL,
                         max_iterations: Optional[int] = None,
                         ) -> Tuple[MethodAggregate, BatchStats]:
    """Run a workload through the service's batch API.

    Returns the same :class:`MethodAggregate` as :func:`run_workload` (the
    label is the batch's dominant resolved method when planning with
    ``"auto"``) plus the batch's :class:`BatchStats`.

    The aggregate covers only the executions this batch actually performed;
    answers replayed from the result cache cost ~nothing and would distort
    the per-execution averages, so they count toward :class:`BatchStats`
    (``cache_hits``, ``total_time``) but not toward the aggregate.  On a
    fully warm cache the aggregate is therefore empty — pass a
    ``cache_size=0`` service for timing measurements, as
    :func:`repro.bench.experiments.method_comparison` does.
    """
    from repro.service.planner import QuerySpec

    specs = [QuerySpec(source=source, target=target, graph=graph,
                       method=method, sql_style=sql_style,
                       max_iterations=max_iterations)
             for source, target in queries]
    batch = service.shortest_path_many(specs, graph=graph,
                                       method=method, sql_style=sql_style)
    label = method.upper()
    if label == "AUTO" and batch.stats.per_method:
        label = max(batch.stats.per_method.items(), key=lambda item: item[1])[0]
    executed_results = [result
                        for result, replayed in zip(batch.results,
                                                    batch.from_cache)
                        if result is not None and not replayed]
    aggregate = aggregate_results(executed_results, method=label,
                                  sql_style=sql_style,
                                  not_found=batch.stats.not_found)
    return aggregate, batch.stats
