"""Random shortest-path query workloads.

Queries are sampled so that the target is reachable from the source and at
least a couple of hops away (adjacent pairs would trivialize every method
and tell us nothing about the search strategies being compared).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.graph.model import Graph


@dataclass
class QueryWorkload:
    """A reproducible batch of shortest-path queries.

    Attributes:
        queries: list of ``(source, target)`` pairs.
        seed: the PRNG seed the workload was drawn with.
        min_hops: minimal BFS hop distance enforced between the endpoints.
    """

    queries: List[Tuple[int, int]] = field(default_factory=list)
    seed: int = 0
    min_hops: int = 2

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def _bfs_reachable(graph: Graph, source: int, min_hops: int,
                   max_nodes: int = 50_000) -> List[int]:
    """Nodes reachable from ``source`` that are at least ``min_hops`` away."""
    hops = {source: 0}
    queue = deque([source])
    eligible: List[int] = []
    while queue and len(hops) < max_nodes:
        node = queue.popleft()
        for neighbor, _cost in graph.out_edges(node):
            if neighbor not in hops:
                hops[neighbor] = hops[node] + 1
                if hops[neighbor] >= min_hops:
                    eligible.append(neighbor)
                queue.append(neighbor)
    return eligible


def generate_queries(graph: Graph, count: int, seed: int = 0,
                     min_hops: int = 2,
                     max_attempts_per_query: int = 50) -> QueryWorkload:
    """Sample ``count`` connected ``(source, target)`` pairs.

    Args:
        graph: graph to sample from.
        count: number of queries.
        seed: PRNG seed.
        min_hops: minimal hop distance between the endpoints.
        max_attempts_per_query: how many random sources to try before
            relaxing the ``min_hops`` constraint for that query.

    Returns:
        A :class:`QueryWorkload`; it may contain fewer than ``count`` queries
        only if the graph has no connected pair at all.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    workload = QueryWorkload(seed=seed, min_hops=min_hops)
    if not nodes:
        return workload
    for _ in range(count):
        pair = _sample_pair(graph, nodes, rng, min_hops, max_attempts_per_query)
        if pair is not None:
            workload.queries.append(pair)
    return workload


def _sample_pair(graph: Graph, nodes: List[int], rng: random.Random,
                 min_hops: int, max_attempts: int) -> Optional[Tuple[int, int]]:
    relaxed_candidate: Optional[Tuple[int, int]] = None
    for _ in range(max_attempts):
        source = rng.choice(nodes)
        eligible = _bfs_reachable(graph, source, min_hops)
        if eligible:
            return source, rng.choice(eligible)
        nearby = _bfs_reachable(graph, source, 1)
        if nearby and relaxed_candidate is None:
            relaxed_candidate = (source, rng.choice(nearby))
    return relaxed_candidate
