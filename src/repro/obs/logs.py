"""Structured JSON logging on top of stdlib :mod:`logging`.

The library is silent by default (a ``NullHandler`` sits on the
``repro`` root logger); applications opt in with::

    from repro import obs
    obs.configure_logging()          # JSON lines on stderr

Every record is emitted as one JSON object with ``ts`` / ``level`` /
``logger`` / ``message``, the ambient ``request_id`` (when one is bound
— see :func:`repro.obs.bind_request_id`), and any structured fields
passed through ``extra``::

    log = obs.get_logger("serve.server")
    log.info("request", extra={"endpoint": "/shortest_path",
                               "status": 200, "duration_ms": 12.3})
"""

from __future__ import annotations

import io
import json
import logging
from typing import IO, Optional

from repro.obs.trace import current_request_id

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

# Attributes every LogRecord carries; anything else came in via
# ``extra`` and belongs in the structured document.
_RESERVED = frozenset(
    vars(logging.LogRecord("", 0, "", 0, "", (), None))
) | {"message", "asctime", "taskName", "request_id"}


class _RequestIdFilter(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "request_id"):
            record.request_id = current_request_id()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields are merged in."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None)
        if request_id:
            doc["request_id"] = request_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exception"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=repr)


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO,
                      stream: Optional[IO[str]] = None) -> logging.Logger:
    """Opt in to structured JSON logging for the ``repro`` hierarchy.

    Idempotent: calling it again replaces the previously installed
    handler (useful for pointing at a fresh stream in tests).  Returns
    the configured root ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter())
    handler.addFilter(_RequestIdFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


class CapturingStream(io.StringIO):
    """A tiny helper for tests and docs: collects emitted JSON lines."""

    def records(self) -> list:
        return [json.loads(line) for line in self.getvalue().splitlines()
                if line.strip()]


# Libraries must not spam an unconfigured root logger.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
