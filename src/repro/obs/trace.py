"""Dapper-style per-query tracing: ``Trace`` / ``Span`` trees.

One logical query produces one :class:`Trace` — a tree of named,
timed :class:`Span` s (plan → cache lookup → pool checkout →
per-FEM-iteration spans → merge).  The tree crosses layers through an
*ambient span* carried in a :mod:`contextvars` context variable:

* :meth:`Tracer.span` opens a span.  With no ambient span active it
  becomes the **root** of a new trace (and binds a ``request_id``);
  otherwise it nests under the ambient span.  Whoever opened the root
  owns attaching the finished trace to the query result.
* :func:`span` (module level) is *ambient-only*: inside an active trace
  it opens a child span, outside one it returns a shared no-op span.
  Deep layers (FEM iteration loops, pool checkout) use this form so
  untraced hot paths pay one contextvar read and nothing else.

Traces serialize to plain dicts (:meth:`Trace.as_dict` /
:meth:`Trace.from_dict`) so the serve protocol can carry them across the
wire; the router *adopts* a remote trace as a child span of its own
tree, yielding one tree spanning local and remote shards.

``request_id`` uses its own context variable so correlation survives
even where tracing is disabled: the serve client stamps it on every
retry attempt of one logical request, and the server binds the received
id before dispatching, so logs and traces on both sides correlate.
"""

from __future__ import annotations

import contextvars
import uuid
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.clock import now

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "bind_request_id",
    "current_request_id",
    "current_span",
    "new_request_id",
    "record_span",
    "span",
]

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None)
_request_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_request_id", default=None)


def new_request_id() -> str:
    """A fresh 16-hex-char correlation id."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> Optional[str]:
    """The request id bound to this context, if any."""
    return _request_id.get()


class bind_request_id:
    """Context manager binding a request id to the current context::

        with bind_request_id(rid):
            ...  # logs and new traces carry rid
    """

    __slots__ = ("_request_id", "_token")

    def __init__(self, request_id: Optional[str]) -> None:
        self._request_id = request_id
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[str]:
        self._token = _request_id.set(self._request_id)
        return self._request_id

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._token is not None:
            _request_id.reset(self._token)
            self._token = None


class Span:
    """A named, timed node in a trace tree."""

    __slots__ = ("name", "tags", "children", "offset_s", "duration_s",
                 "_start", "trace")

    def __init__(self, name: str, tags: Optional[Dict[str, Any]] = None,
                 offset_s: float = 0.0, duration_s: float = 0.0) -> None:
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.children: List[Span] = []
        self.offset_s = offset_s        # start relative to the parent's start
        self.duration_s = duration_s
        self._start: Optional[float] = None  # clock.now() at begin, local only
        self.trace: Optional[Trace] = None   # set on root spans only

    # -- construction --------------------------------------------------

    def begin(self) -> "Span":
        self._start = now()
        return self

    def finish(self) -> "Span":
        if self._start is not None:
            self.duration_s = now() - self._start
        return self

    def child(self, name: str, **tags: Any) -> "Span":
        """Open (and begin) a child span; caller must ``finish()`` it."""
        node = Span(name, tags)
        node.begin()
        if self._start is not None and node._start is not None:
            node.offset_s = max(0.0, node._start - self._start)
        self.children.append(node)
        return node

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def record(self, name: str, seconds: float, **tags: Any) -> "Span":
        """Append an already-measured child (e.g. a pool-checkout wait
        whose duration the lease captured)."""
        node = Span(name, tags, duration_s=max(0.0, float(seconds)))
        if self._start is not None:
            node.offset_s = max(0.0, now() - self._start - node.duration_s)
        self.children.append(node)
        return node

    def adopt(self, remote: "Trace | Span", **tags: Any) -> "Span":
        """Attach a finished (typically deserialized remote) span tree
        as a child of this span."""
        node = remote.root if isinstance(remote, Trace) else remote
        node.tags.update(tags)
        if self._start is not None:
            node.offset_s = max(0.0, now() - self._start - node.duration_s)
        self.children.append(node)
        return node

    # -- introspection -------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        return [node for node in self.walk() if node.name == name]

    def child_seconds(self) -> float:
        return sum(child.duration_s for child in self.children)

    # -- serialization -------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "offset_s": round(self.offset_s, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.tags:
            doc["tags"] = dict(self.tags)
        if self.children:
            doc["children"] = [child.as_dict() for child in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        node = cls(str(doc.get("name", "span")),
                   tags=doc.get("tags") or {},
                   offset_s=float(doc.get("offset_s", 0.0)),
                   duration_s=float(doc.get("duration_s", 0.0)))
        for child_doc in doc.get("children", ()):
            node.children.append(cls.from_dict(child_doc))
        return node

    def render(self, indent: int = 0) -> str:
        tag_text = "".join(f" {k}={v}" for k, v in sorted(self.tags.items()))
        line = (f"{'  ' * indent}{self.name} "
                f"{self.duration_s * 1000.0:.3f}ms{tag_text}")
        return "\n".join([line] + [child.render(indent + 1)
                                   for child in self.children])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
                f"children={len(self.children)})")


class _NoopSpan(Span):
    """Shared do-nothing span: what ambient helpers hand out when no
    trace is active.  Every mutator is a no-op so hot paths need no
    ``if span is not None`` guards."""

    def begin(self) -> "Span":
        return self

    def finish(self) -> "Span":
        return self

    def child(self, name: str, **tags: Any) -> "Span":
        return self

    def tag(self, **tags: Any) -> "Span":
        return self

    def record(self, name: str, seconds: float, **tags: Any) -> "Span":
        return self

    def adopt(self, remote: "Trace | Span", **tags: Any) -> "Span":
        return self


NOOP_SPAN = _NoopSpan("noop")


class Trace:
    """A finished (or in-flight) span tree plus its correlation id."""

    __slots__ = ("root", "request_id")

    def __init__(self, root: Span, request_id: Optional[str] = None) -> None:
        self.root = root
        self.request_id = request_id or new_request_id()

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    def walk(self) -> Iterator[Span]:
        return self.root.walk()

    def find(self, name: str) -> List[Span]:
        return self.root.find(name)

    def as_dict(self) -> Dict[str, Any]:
        return {"request_id": self.request_id, "root": self.root.as_dict()}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Trace":
        return cls(Span.from_dict(doc.get("root") or {"name": "query"}),
                   request_id=doc.get("request_id"))

    def render(self) -> str:
        return f"trace {self.request_id}\n{self.root.render(1)}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.request_id!r}, duration_s={self.duration_s:.6f})"


class _SpanContext:
    """The context manager behind :meth:`Tracer.span` and :func:`span`."""

    __slots__ = ("_name", "_tags", "_root_ok", "_request_id_hint",
                 "_disabled", "_span", "_span_token", "_rid_token")

    def __init__(self, name: str, tags: Dict[str, Any], root_ok: bool,
                 request_id: Optional[str] = None,
                 disabled: bool = False) -> None:
        self._name = name
        self._tags = tags
        self._root_ok = root_ok
        self._request_id_hint = request_id
        self._disabled = disabled
        self._span: Span = NOOP_SPAN
        self._span_token: Optional[contextvars.Token] = None
        self._rid_token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        if self._disabled:
            return NOOP_SPAN
        parent = _current_span.get()
        if parent is not None and parent is not NOOP_SPAN:
            self._span = parent.child(self._name, **self._tags)
        elif self._root_ok:
            root = Span(self._name, self._tags).begin()
            rid = (self._request_id_hint or current_request_id()
                   or new_request_id())
            root.trace = Trace(root, request_id=rid)
            if current_request_id() != rid:
                self._rid_token = _request_id.set(rid)
            self._span = root
        else:
            return NOOP_SPAN
        self._span_token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._span_token is not None:
            _current_span.reset(self._span_token)
            self._span_token = None
        if self._rid_token is not None:
            _request_id.reset(self._rid_token)
            self._rid_token = None
        if self._span is not NOOP_SPAN:
            self._span.finish()
            if exc_type is not None:
                self._span.tag(error=exc_type.__name__)


class Tracer:
    """Factory for spans that may *start* traces.

    Components that own query entry points (``PathService``,
    ``ShardRouter``) hold a ``Tracer``; deeper layers use the ambient
    :func:`span` helper instead, so they never create orphan traces when
    called outside a query.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def span(self, name: str, request_id: Optional[str] = None,
             **tags: Any) -> _SpanContext:
        if not self.enabled:
            return _SpanContext(name, {}, root_ok=False, disabled=True)
        return _SpanContext(name, tags, root_ok=True, request_id=request_id)


def current_span() -> Optional[Span]:
    """The ambient span, or ``None`` outside any trace."""
    active = _current_span.get()
    return None if active is NOOP_SPAN else active


def span(name: str, **tags: Any) -> _SpanContext:
    """Ambient-only span: a child of the active span, or a shared no-op
    span when no trace is active.  Safe (and cheap) on hot paths."""
    return _SpanContext(name, tags, root_ok=False)


def record_span(name: str, seconds: float, **tags: Any) -> None:
    """Append a pre-measured child to the ambient span, if any."""
    active = _current_span.get()
    if active is not None and active is not NOOP_SPAN:
        active.record(name, seconds, **tags)
