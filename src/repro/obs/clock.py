"""Timing primitives — THE one place timing semantics are defined.

Every duration measured anywhere in :mod:`repro` goes through this
module: :func:`now` is the monotonic high-resolution clock for elapsed
time, :func:`timer` is the exception-safe context manager around it, and
:func:`wall_time` is the epoch clock for *timestamps* (catalog records,
calibration dates) — the one thing a monotonic clock cannot provide.

Centralizing the choice means the rest of ``src/repro`` never touches
``time.perf_counter()`` / ``time.time()`` directly (a lint check,
``tools/check_timing.py``, enforces this), so properties like
"monotonic, immune to wall-clock steps, measured even when the block
raises" are guaranteed in exactly one place.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Timer", "now", "timer", "wall_time"]


def now() -> float:
    """Monotonic high-resolution seconds, for measuring durations.

    Never compare this against :func:`wall_time` — the two clocks share
    no epoch.
    """
    return time.perf_counter()


def wall_time() -> float:
    """Wall-clock seconds since the Unix epoch, for *timestamps* only
    (manifest records, calibration dates).  Subject to clock steps; never
    use it to measure a duration."""
    return time.time()


class Timer:
    """An exception-safe stopwatch.

    Use via :func:`timer`::

        with timer() as t:
            do_work()          # t.seconds is set even if this raises
        latency = t.seconds

    Attributes:
        seconds: elapsed seconds, finalized when the ``with`` block exits
            (exception or not).  While the block is still running it reads
            as the elapsed time so far.
    """

    __slots__ = ("_started", "_seconds")

    def __init__(self) -> None:
        self._started = now()
        self._seconds: Optional[float] = None

    @property
    def seconds(self) -> float:
        if self._seconds is None:
            return now() - self._started
        return self._seconds

    def __enter__(self) -> "Timer":
        self._started = now()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._seconds = now() - self._started


def timer() -> Timer:
    """A fresh :class:`Timer` context manager (monotonic, exception-safe)."""
    return Timer()
