"""A thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single source of truth for operational counters in
:mod:`repro` — the executor, :class:`~repro.service.pool.StorePool`,
:class:`~repro.service.cache.ResultCache`, the planner, the shard router
and the serve server all publish into one, and the legacy ``*Stats``
dataclasses are *views* over it rather than parallel bookkeeping.

Design notes:

* **Stdlib-only, deterministic.** Histograms use fixed upper bounds;
  percentiles are estimated by linear interpolation inside the bucket
  that contains the requested rank (and clamped to the exact observed
  maximum), so two runs that observe the same values report the same
  percentiles.
* **Labels.** Metrics are grouped into families by name; each distinct
  label set is a child with its own value.  ``registry.counter(name,
  labels)`` returns the same child object every time, so hot paths may
  cache the handle.
* **Collectors.** Structural gauges (pool occupancy, cache size) are
  refreshed lazily: components register a collector callback which runs
  just before :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.render_prometheus`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency buckets in seconds, Prometheus-style log-ish spacing."""

DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = tuple(
    round(b * 1000.0, 4) for b in DEFAULT_LATENCY_BUCKETS
)
"""The same shape in milliseconds, for the workload harness."""

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, object]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (float amounts allowed)."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (pool occupancy, cache size)."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    Observations land in the first bucket whose upper bound is >= the
    value; anything beyond the last bound lands in the implicit ``+Inf``
    bucket.  Exact ``count`` / ``sum`` / ``max`` are tracked alongside,
    so means and maxima are exact and only intermediate percentiles are
    bucket-interpolated.
    """

    kind = "histogram"
    __slots__ = ("_bounds", "_counts", "_lock", "_count", "_sum", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    def _state(self) -> Tuple[List[int], int, float, float]:
        with self._lock:
            return list(self._counts), self._count, self._sum, self._max

    @property
    def count(self) -> int:
        return self._state()[1]

    @property
    def sum(self) -> float:
        return self._state()[2]

    @property
    def max(self) -> float:
        return self._state()[3]

    def percentile(self, q: float) -> float:
        counts, count, _, maximum = self._state()
        return _estimate_percentile(self._bounds, counts, count, maximum, q)

    def summary(self) -> Dict[str, float]:
        counts, count, total, maximum = self._state()
        return _summary_from_state(self._bounds, counts, count, total, maximum)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` ending with +Inf."""
        counts, _, _, _ = self._state()
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self._bounds, counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out


def _estimate_percentile(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    maximum: float,
    q: float,
) -> float:
    """Deterministic rank-then-interpolate estimate over bucket counts."""
    if count <= 0:
        return 0.0
    rank = max(1, math.ceil((q / 100.0) * count))
    cumulative = 0
    for index, in_bucket in enumerate(counts):
        if in_bucket == 0:
            cumulative += in_bucket
            continue
        if cumulative + in_bucket >= rank:
            if index >= len(bounds):  # +Inf bucket: the max is all we know
                return maximum
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - cumulative) / in_bucket
            return min(lower + (upper - lower) * fraction, maximum)
        cumulative += in_bucket
    return maximum


def _summary_from_state(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    total: float,
    maximum: float,
) -> Dict[str, float]:
    return {
        "count": count,
        "sum": total,
        "mean": (total / count) if count else 0.0,
        "max": maximum,
        "p50": _estimate_percentile(bounds, counts, count, maximum, 50.0),
        "p95": _estimate_percentile(bounds, counts, count, maximum, 95.0),
        "p99": _estimate_percentile(bounds, counts, count, maximum, 99.0),
    }


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[_LabelKey, object] = {}


class MetricsRegistry:
    """Thread-safe named families of counters / gauges / histograms."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- metric handles ------------------------------------------------

    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None,
                help: str = "") -> Counter:
        return self._child(name, "counter", labels, help)  # type: ignore[return-value]

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None,
              help: str = "") -> Gauge:
        return self._child(name, "gauge", labels, help)  # type: ignore[return-value]

    def histogram(self, name: str, labels: Optional[Mapping[str, object]] = None,
                  help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._child(name, "histogram", labels, help,
                           buckets=tuple(sorted(float(b) for b in buckets)))  # type: ignore[return-value]

    def _child(self, name: str, kind: str,
               labels: Optional[Mapping[str, object]], help_text: str,
               buckets: Optional[Tuple[float, ...]] = None):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}")
            elif kind == "histogram" and buckets != family.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{family.buckets}")
            if help_text and not family.help:
                family.help = help_text
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(buckets or DEFAULT_LATENCY_BUCKETS)
                family.children[key] = child
            return child

    # -- reads ---------------------------------------------------------

    def value(self, name: str,
              labels: Optional[Mapping[str, object]] = None) -> float:
        """Current value of a counter/gauge child; 0.0 when absent."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            child = family.children.get(_label_key(labels))
        if child is None:
            return 0.0
        return child.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across every label set."""
        with self._lock:
            family = self._families.get(name)
            children = list(family.children.values()) if family else []
        return sum(child.value for child in children)  # type: ignore[union-attr]

    def summary(self, name: str,
                labels: Optional[Mapping[str, object]] = None) -> Dict[str, float]:
        """Histogram summary.  ``labels=None`` merges every child of the
        family (bucket counts, counts, sums, max), which is how per-kind
        histograms roll up into an overall percentile."""
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind != "histogram":
                return _summary_from_state((), (0,), 0, 0.0, 0.0)
            if labels is not None:
                child = family.children.get(_label_key(labels))
                children = [child] if child is not None else []
            else:
                children = list(family.children.values())
        if not children:
            bounds = (family.buckets or DEFAULT_LATENCY_BUCKETS)
            return _summary_from_state(bounds, [0] * (len(bounds) + 1),
                                       0, 0.0, 0.0)
        bounds = children[0].bounds  # type: ignore[union-attr]
        counts = [0] * (len(bounds) + 1)
        count, total, maximum = 0, 0.0, 0.0
        for child in children:
            c_counts, c_count, c_sum, c_max = child._state()  # type: ignore[union-attr]
            for i, value in enumerate(c_counts):
                counts[i] += value
            count += c_count
            total += c_sum
            maximum = max(maximum, c_max)
        return _summary_from_state(bounds, counts, count, total, maximum)

    def histogram_labels(self, name: str) -> List[Dict[str, str]]:
        """The label sets registered under a histogram family."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            return [dict(key) for key in family.children]

    # -- collectors ----------------------------------------------------

    def register_collector(self, collector: Callable[[], None]) -> Callable[[], None]:
        """Register a callback refreshing lazy gauges before export."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-safe dump of every family, for ``metrics()`` APIs."""
        self._collect()
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            families = [(f.name, f.kind, f.help, list(f.children.items()))
                        for f in self._families.values()]
        for name, kind, help_text, children in sorted(families):
            values: List[Dict[str, object]] = []
            for key, child in sorted(children):
                entry: Dict[str, object] = {"labels": dict(key)}
                if kind == "histogram":
                    entry.update(child.summary())  # type: ignore[union-attr]
                    entry["buckets"] = {
                        ("+Inf" if math.isinf(bound) else repr(bound)): c
                        for bound, c in child.cumulative_buckets()  # type: ignore[union-attr]
                    }
                else:
                    entry["value"] = child.value  # type: ignore[union-attr]
                values.append(entry)
            out[name] = {"type": kind, "help": help_text, "values": values}
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format v0.0.4."""
        self._collect()
        with self._lock:
            families = [(f.name, f.kind, f.help, list(f.children.items()))
                        for f in self._families.values()]
        lines: List[str] = []
        for name, kind, help_text, children in sorted(families):
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for key, child in sorted(children):
                if kind == "histogram":
                    for bound, cumulative in child.cumulative_buckets():  # type: ignore[union-attr]
                        le = "+Inf" if math.isinf(bound) else _format_value(bound)
                        label_text = _render_labels(key + (("le", le),))
                        lines.append(f"{name}_bucket{label_text} {cumulative}")
                    label_text = _render_labels(key)
                    lines.append(
                        f"{name}_sum{label_text} {_format_value(child.sum)}")  # type: ignore[union-attr]
                    lines.append(f"{name}_count{label_text} {child.count}")  # type: ignore[union-attr]
                else:
                    label_text = _render_labels(key)
                    lines.append(
                        f"{name}{label_text} {_format_value(child.value)}")  # type: ignore[union-attr]
        return "\n".join(lines) + "\n"


def _render_labels(items: Iterable[Tuple[str, str]]) -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in items]
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
