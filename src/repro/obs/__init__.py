"""End-to-end observability for :mod:`repro` — stdlib-only.

Three pillars, wired through every layer of the stack:

* **Tracing** (:mod:`repro.obs.trace`): per-query :class:`Trace` /
  :class:`Span` trees — plan, cache lookup, pool checkout, per-FEM-
  iteration spans, remote-shard hops — exposed via
  ``PathService.explain(..., analyze=True)`` and ``PathResult.trace``
  and carried across the serve wire.
* **Metrics** (:mod:`repro.obs.metrics`): a thread-safe
  :class:`MetricsRegistry` of counters / gauges / fixed-bucket
  histograms that the executor, pools, caches, planner, router and
  server publish into; rendered as Prometheus text by the shard
  server's ``/metrics`` endpoint.
* **Logging** (:mod:`repro.obs.logs`): structured JSON logging with a
  propagated per-request ``request_id``; opt in with
  :func:`configure_logging`.

Plus the timing primitives (:mod:`repro.obs.clock`) every other module
uses instead of raw ``time.perf_counter()`` / ``time.time()`` — see
``tools/check_timing.py``.
"""

from repro.obs import schema
from repro.obs.clock import Timer, now, timer, wall_time
from repro.obs.logs import (
    CapturingStream,
    JsonFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Trace,
    Tracer,
    bind_request_id,
    current_request_id,
    current_span,
    new_request_id,
    record_span,
    span,
)

__all__ = [
    "CapturingStream",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Timer",
    "Trace",
    "Tracer",
    "bind_request_id",
    "configure_logging",
    "current_request_id",
    "current_span",
    "get_logger",
    "new_request_id",
    "now",
    "record_span",
    "schema",
    "span",
    "timer",
    "wall_time",
]
