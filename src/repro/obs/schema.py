"""The canonical metric names and stats-dict schema.

One stable, documented, snake_case vocabulary shared by three surfaces:

1. the ``/metrics`` Prometheus endpoint (the ``METRIC_*`` constants),
2. the JSON snapshot APIs (``PathService.metrics()`` /
   ``ShardRouter.metrics()``), and
3. the legacy ``*Stats.as_dict()`` payloads, whose historical keys are
   kept for one release as deprecated aliases (see
   ``DEPRECATED_STATS_ALIASES``; canonical duration keys carry an
   explicit ``_s`` / ``_seconds`` unit suffix).

The full catalog — name, type, labels, meaning — is documented in
``docs/observability.md``; ``tests/test_obs.py`` asserts the two stay in
sync.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "ALL_METRIC_NAMES",
    "DEPRECATED_STATS_ALIASES",
    "STATS_SCHEMA_VERSION",
    "with_deprecated_aliases",
]

STATS_SCHEMA_VERSION = 1

# -- query execution (PathService / Executor) --------------------------
METRIC_QUERIES = "repro_queries_total"                    # counter {graph,kind,method,backend}
METRIC_QUERY_LATENCY = "repro_query_latency_seconds"      # histogram {kind}
METRIC_QUERY_QUEUE = "repro_query_queue_seconds"          # histogram (pool wait)
METRIC_NOT_FOUND = "repro_not_found_total"                # counter
METRIC_BATCHES = "repro_batches_total"                    # counter {mode}
METRIC_SINGLE_FLIGHT = "repro_single_flight_hits_total"   # counter

# -- resilience --------------------------------------------------------
METRIC_DEADLINE_EXCEEDED = "repro_deadline_exceeded_total"  # counter {graph}
METRIC_SHED = "repro_shed_total"                          # counter {endpoint}
METRIC_BREAKER_STATE = "repro_breaker_state"              # gauge {shard}

# -- planner -----------------------------------------------------------
METRIC_PLANNER_COST_ERROR = "repro_planner_cost_error_ratio"  # histogram {method}

# -- result cache ------------------------------------------------------
METRIC_CACHE_HITS = "repro_cache_hits_total"              # counter {cache}
METRIC_CACHE_MISSES = "repro_cache_misses_total"          # counter {cache}
METRIC_CACHE_NEGATIVE_HITS = "repro_cache_negative_hits_total"  # counter {cache}
METRIC_CACHE_EVICTIONS = "repro_cache_evictions_total"    # counter {cache,reason}
METRIC_CACHE_SIZE = "repro_cache_size"                    # gauge {cache}
METRIC_CACHE_NEGATIVE_SIZE = "repro_cache_negative_size"  # gauge {cache}
METRIC_CACHE_MEMORY = "repro_cache_memory_bytes"          # gauge {cache}

# -- store pool --------------------------------------------------------
METRIC_POOL_CHECKOUTS = "repro_pool_checkouts_total"      # counter {graph}
METRIC_POOL_WAITS = "repro_pool_waits_total"              # counter {graph}
METRIC_POOL_TIMEOUTS = "repro_pool_timeouts_total"        # counter {graph}
METRIC_POOL_REPLICAS = "repro_pool_replicas_total"        # counter {graph,mode}
METRIC_POOL_CAPACITY = "repro_pool_capacity"              # gauge {graph}
METRIC_POOL_CREATED = "repro_pool_created"                # gauge {graph}
METRIC_POOL_IDLE = "repro_pool_idle"                      # gauge {graph}
METRIC_POOL_IN_USE = "repro_pool_in_use"                  # gauge {graph}

# -- shard router ------------------------------------------------------
METRIC_FAILOVERS = "repro_failovers_total"                # counter {shard}
METRIC_SHARD_LATENCY = "repro_shard_latency_seconds"      # histogram {shard}
METRIC_SHARD_ERRORS = "repro_shard_errors_total"          # counter {shard}
METRIC_SHARED_CACHE_HITS = "repro_shared_cache_hits_total"  # counter
METRIC_ROUTER_QUERIES = "repro_router_queries_total"      # counter {kind}

# -- serve server ------------------------------------------------------
METRIC_HTTP_REQUESTS = "repro_http_requests_total"        # counter {endpoint,status}
METRIC_HTTP_LATENCY = "repro_http_latency_seconds"        # histogram {endpoint}

# -- workload harness --------------------------------------------------
METRIC_TRAFFIC_LATENCY_MS = "repro_traffic_latency_ms"    # histogram {kind}
METRIC_TRAFFIC_QUERIES = "repro_traffic_queries_total"    # counter {kind}
METRIC_TRAFFIC_NOT_FOUND = "repro_traffic_not_found_total"  # counter
METRIC_TRAFFIC_ERRORS = "repro_traffic_errors_total"      # counter
METRIC_TRAFFIC_WRONG = "repro_traffic_wrong_answers_total"  # counter

ALL_METRIC_NAMES: Dict[str, str] = {
    name: value
    for name, value in sorted(globals().items())
    if name.startswith("METRIC_")
}
"""``{constant_name: metric_name}`` — the complete exported catalog."""

# Canonical key -> historical key, kept for one release.  Consumers
# should migrate to the canonical (unit-suffixed) keys; the aliases are
# slated for removal in the next release.
DEPRECATED_STATS_ALIASES: Dict[str, Dict[str, str]] = {
    "batch": {
        "total_time_s": "total_time",
        "queue_time_s": "queue_time",
        "execute_time_s": "execute_time",
    },
    "router": {
        "total_time_s": "total_time",
    },
    # CacheStats keys were already unit-suffixed snake_case; no aliases.
    "cache": {},
}


def with_deprecated_aliases(canonical: Mapping[str, object],
                            kind: str) -> Dict[str, object]:
    """Extend a canonical stats dict with the deprecated legacy keys.

    ``kind`` is one of ``DEPRECATED_STATS_ALIASES``' groups.  Unknown
    kinds pass through unchanged, so callers can apply this
    unconditionally.
    """
    out = dict(canonical)
    for canonical_key, legacy_key in DEPRECATED_STATS_ALIASES.get(kind, {}).items():
        if canonical_key in out and legacy_key not in out:
            out[legacy_key] = out[canonical_key]
    return out
