"""The asyncio front end: ``await`` and ``async for`` over the engine.

The engine is synchronous by design (SQL execution against embedded
stores), so the async surface is a thin adapter: every blocking call runs
on a bounded :class:`~concurrent.futures.ThreadPoolExecutor` via
``loop.run_in_executor``, and the event loop only ever awaits — one
process can hold tens of thousands of in-flight queries while a handful
of worker threads grind through them.  The service's own thread safety
(store pools, single-flight dedup, locked caches) is what makes the
concurrent calls sound; this module adds no locking of its own.

Two wrappers, mirroring the sync pair:

* :class:`AsyncPathService` over one
  :class:`~repro.service.session.PathService`;
* :class:`AsyncShardRouter` over a
  :class:`~repro.shard.router.ShardRouter` (local, remote, and mixed
  shards alike — failover included, since it wraps the same router).

Both offer ``await shortest_path(...)`` and an ``async for`` batch::

    async with router.as_async() as aio:
        async for index, result in aio.shortest_path_many(queries):
            ...  # completion order, not input order

Batch items resolve *as they complete*; each yielded pair carries the
query's input index so callers can reorder.  Unreachable pairs yield
``None`` results (pass ``raise_on_unreachable=True`` to get the
exception instead).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import (
    AsyncIterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.errors import PathNotFoundError
from repro.service.batch import normalize_queries
from repro.service.planner import QueryPlan, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import BatchQuery, PathService
    from repro.shard.router import ScatterResult, ShardRouter

DEFAULT_ASYNC_WORKERS = 8


class _AsyncFacade:
    """Shared machinery: a worker pool and a run-blocking-call helper."""

    def __init__(self, max_workers: int = DEFAULT_ASYNC_WORKERS) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-aio")
        self._closed = False

    async def _run(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        if kwargs:
            return await loop.run_in_executor(
                self._pool, lambda: fn(*args, **kwargs))
        return await loop.run_in_executor(self._pool, fn, *args)

    async def _stream(self, specs: Sequence[QuerySpec],
                      answer_one, raise_on_unreachable: bool
                      ) -> AsyncIterator[Tuple[int, Optional[PathResult]]]:
        """Yield ``(input index, result)`` pairs in completion order."""

        async def one(index: int, spec: QuerySpec):
            try:
                return index, await self._run(answer_one, spec)
            except PathNotFoundError:
                if raise_on_unreachable:
                    raise
                return index, None

        tasks = [asyncio.ensure_future(one(index, spec))
                 for index, spec in enumerate(specs)]
        try:
            for next_done in asyncio.as_completed(tasks):
                yield await next_done
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
                elif not task.cancelled():
                    # Retrieve abandoned exceptions (early exit /
                    # raise_on_unreachable) so asyncio does not log
                    # "exception was never retrieved" at teardown.
                    task.exception()

    async def aclose(self) -> None:
        """Shut the worker pool down (idempotent); the wrapped sync object
        is NOT closed — it outlives its async facade by design."""
        if self._closed:
            return
        self._closed = True
        await self._run(lambda: None)  # drain: let queued calls finish
        self._pool.shutdown(wait=True)

    async def __aenter__(self):
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()


class AsyncPathService(_AsyncFacade):
    """``await``-able facade over one :class:`PathService`.

    Obtain via :meth:`PathService.as_async`.  All query semantics —
    caching, planning, single-flight — are the wrapped service's own.
    """

    def __init__(self, service: "PathService",
                 max_workers: int = DEFAULT_ASYNC_WORKERS) -> None:
        super().__init__(max_workers)
        self.service = service

    async def shortest_path(self, source: int, target: int,
                            graph: str = "default", method: str = "auto",
                            sql_style: str = NSQL,
                            max_iterations: Optional[int] = None,
                            use_cache: bool = True) -> PathResult:
        """``await``-able :meth:`PathService.shortest_path`."""
        return await self._run(
            self.service.shortest_path, source, target,
            graph=graph, method=method, sql_style=sql_style,
            max_iterations=max_iterations, use_cache=use_cache)

    async def explain(self, source: int, target: int,
                      graph: str = "default", method: str = "auto",
                      sql_style: str = NSQL) -> QueryPlan:
        """``await``-able :meth:`PathService.explain`."""
        return await self._run(self.service.explain, source, target,
                               graph=graph, method=method,
                               sql_style=sql_style)

    def shortest_path_many(self, queries: Sequence["BatchQuery"],
                           graph: str = "default", method: str = "auto",
                           sql_style: str = NSQL,
                           raise_on_unreachable: bool = False
                           ) -> AsyncIterator[Tuple[int, Optional[PathResult]]]:
        """``async for (index, result)`` over a batch, completion order.

        Every query runs as an independent awaited call, so results
        stream back the moment they finish; duplicates still collapse
        onto the service's result cache.
        """
        specs = normalize_queries(queries, graph=graph, method=method,
                                  sql_style=sql_style)
        return self._stream(
            specs,
            lambda spec: self.service.shortest_path(
                spec.source, spec.target, graph=spec.graph,
                method=spec.method, sql_style=spec.sql_style,
                max_iterations=spec.max_iterations),
            raise_on_unreachable)

    async def gather(self, queries: Sequence["BatchQuery"],
                     graph: str = "default", method: str = "auto",
                     sql_style: str = NSQL,
                     raise_on_unreachable: bool = False
                     ) -> List[Optional[PathResult]]:
        """Await the whole batch; results come back in *input* order."""
        results: List[Optional[PathResult]] = [None] * len(queries)
        async for index, result in self.shortest_path_many(
                queries, graph=graph, method=method, sql_style=sql_style,
                raise_on_unreachable=raise_on_unreachable):
            results[index] = result
        return results


class AsyncShardRouter(_AsyncFacade):
    """``await``-able facade over a :class:`ShardRouter`.

    Obtain via :meth:`ShardRouter.as_async`.  Routing, replica failover,
    and the shared cross-shard cache are the wrapped router's own — the
    facade only moves the blocking calls off the event loop.
    """

    def __init__(self, router: "ShardRouter",
                 max_workers: int = DEFAULT_ASYNC_WORKERS) -> None:
        super().__init__(max_workers)
        self.router = router

    async def shortest_path(self, source: int, target: int, graph: str,
                            method: str = "auto", sql_style: str = NSQL,
                            max_iterations: Optional[int] = None,
                            use_cache: bool = True) -> PathResult:
        """``await``-able :meth:`ShardRouter.shortest_path` (routed,
        failover included)."""
        return await self._run(
            self.router.shortest_path, source, target, graph=graph,
            method=method, sql_style=sql_style,
            max_iterations=max_iterations, use_cache=use_cache)

    async def explain(self, source: int, target: int, graph: str,
                      method: str = "auto",
                      sql_style: str = NSQL) -> QueryPlan:
        """``await``-able :meth:`ShardRouter.explain`."""
        return await self._run(self.router.explain, source, target,
                               graph=graph, method=method,
                               sql_style=sql_style)

    def shortest_path_many(self, queries: Sequence["BatchQuery"],
                           graph: Optional[str] = None,
                           method: str = "auto", sql_style: str = NSQL,
                           raise_on_unreachable: bool = False
                           ) -> AsyncIterator[Tuple[int, Optional[PathResult]]]:
        """``async for (index, result)`` over a routed batch, completion
        order; each query routes (and fails over) independently."""
        from repro.shard.router import DEFAULT_GRAPH
        specs = normalize_queries(queries, graph=graph or DEFAULT_GRAPH,
                                  method=method, sql_style=sql_style)
        return self._stream(
            specs,
            lambda spec: self.router.shortest_path(
                spec.source, spec.target, graph=spec.graph,
                method=spec.method, sql_style=spec.sql_style,
                max_iterations=spec.max_iterations),
            raise_on_unreachable)

    async def scatter(self, queries: Sequence["BatchQuery"],
                      graph: Optional[str] = None, method: str = "auto",
                      sql_style: str = NSQL,
                      raise_on_unreachable: bool = False,
                      concurrency: int = 1,
                      checkout_timeout: Optional[float] = None
                      ) -> "ScatterResult":
        """``await``-able :meth:`ShardRouter.shortest_path_many`: one full
        scatter-gather (slice batching, per-shard stats, input order)."""
        return await self._run(
            self.router.shortest_path_many, queries, graph=graph,
            method=method, sql_style=sql_style,
            raise_on_unreachable=raise_on_unreachable,
            concurrency=concurrency, checkout_timeout=checkout_timeout)


__all__ = [
    "DEFAULT_ASYNC_WORKERS",
    "AsyncPathService",
    "AsyncShardRouter",
]
