"""The serve wire protocol: JSON codecs for every object that crosses it.

One shard server and its clients exchange plain JSON documents over
HTTP — no pickling, no framing beyond HTTP itself — so any process (or
language) can speak to a shard.  This module is the single source of
truth for how the library's value objects look on the wire:

* :class:`~repro.service.planner.QuerySpec` — a flat field dict;
* :class:`~repro.core.path.PathResult` — source/target/distance/path
  plus the full serialized :class:`~repro.core.stats.QueryStats`, so a
  remote result reports the same per-phase and per-operator breakdowns
  as a local one;
* :class:`~repro.service.planner.QueryPlan` — for remote ``explain()``,
  cost breakdown included;
* **errors** — a ``{"type", "message"}`` pair; the type is the exception
  class name inside :mod:`repro.errors`, so the client re-raises the
  *same* exception type the server saw (a remote unreachable pair is a
  :class:`~repro.errors.PathNotFoundError` on both ends).  Types that do
  not map back raise :class:`~repro.errors.RemoteProtocolError` instead
  of guessing.

The protocol is versioned (:data:`PROTOCOL_VERSION`); the server stamps
every response envelope and the client refuses a mismatched major
version rather than mis-decode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import repro.errors as _errors_module
from repro.core.path import PathResult
from repro.core.stats import QueryStats
from repro.errors import RemoteProtocolError, ReproError
from repro.obs import Trace
from repro.service.costmodel import CostEstimate
from repro.service.planner import QueryPlan, QuerySpec

PROTOCOL_VERSION = 1
"""Bumped on any incompatible change to the payload shapes below."""


# -- query specs -----------------------------------------------------------------

def spec_to_dict(spec: QuerySpec) -> Dict[str, object]:
    """Serialize one :class:`QuerySpec` (all fields, flat)."""
    return {
        "source": spec.source,
        "target": spec.target,
        "graph": spec.graph,
        "method": spec.method,
        "sql_style": spec.sql_style,
        "max_iterations": spec.max_iterations,
        "kind": spec.kind,
        "max_hops": spec.max_hops,
        "timeout_s": spec.timeout_s,
    }


def spec_from_dict(data: Dict[str, object]) -> QuerySpec:
    """Rebuild a :class:`QuerySpec`; missing required fields raise
    :class:`RemoteProtocolError` (the spec is the request — a server must
    not guess what was asked)."""
    try:
        max_iterations = data.get("max_iterations")
        max_hops = data.get("max_hops")
        timeout_s = data.get("timeout_s")
        return QuerySpec(
            source=int(data["source"]),
            target=int(data["target"]),
            graph=str(data.get("graph", "default")),
            method=str(data.get("method", "auto")),
            sql_style=str(data.get("sql_style", "nsql")),
            max_iterations=None if max_iterations is None
            else int(max_iterations),
            # Absent on documents from older clients: both default to the
            # plain shortest-path kind, so the wire stays compatible.
            kind=str(data.get("kind", "path")),
            max_hops=None if max_hops is None else int(max_hops),
            # Absent on documents from pre-deadline clients: no budget.
            timeout_s=None if timeout_s is None else float(timeout_s),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RemoteProtocolError(
            f"malformed query spec on the wire: {data!r} ({exc})"
        ) from exc


def specs_to_list(specs: Sequence[QuerySpec]) -> List[Dict[str, object]]:
    return [spec_to_dict(spec) for spec in specs]


def specs_from_list(data: Sequence[Dict[str, object]]) -> List[QuerySpec]:
    return [spec_from_dict(item) for item in data]


# -- results ---------------------------------------------------------------------

def result_to_dict(result: PathResult) -> Dict[str, object]:
    """Serialize one :class:`PathResult`, statistics included.

    The span tree (``result.trace``) travels as a nested ``trace`` field
    when present, so a router in front of remote shards can stitch the
    remote execution into its own trace; the field is simply absent when
    tracing was off (older servers never emit it, older clients ignore
    it — the wire stays compatible both ways).
    """
    data: Dict[str, object] = {
        "source": result.source,
        "target": result.target,
        "distance": result.distance,
        "path": list(result.path),
        "stats": None if result.stats is None else result.stats.as_dict(),
    }
    if result.trace is not None:
        data["trace"] = result.trace.as_dict()
    return data


def result_from_dict(data: Dict[str, object]) -> PathResult:
    """Rebuild one :class:`PathResult` from the wire."""
    try:
        stats = data.get("stats")
        trace = data.get("trace")
        return PathResult(
            source=int(data["source"]),
            target=int(data["target"]),
            distance=float(data["distance"]),
            path=[int(node) for node in data.get("path", [])],
            stats=None if stats is None else QueryStats.from_dict(stats),
            trace=None if trace is None else Trace.from_dict(trace),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RemoteProtocolError(
            f"malformed path result on the wire ({exc})"
        ) from exc


def results_to_list(results: Sequence[Optional[PathResult]]
                    ) -> List[Optional[Dict[str, object]]]:
    """Serialize a batch's result column (``None`` marks unreachable)."""
    return [None if result is None else result_to_dict(result)
            for result in results]


def results_from_list(data: Sequence[Optional[Dict[str, object]]]
                      ) -> List[Optional[PathResult]]:
    return [None if item is None else result_from_dict(item)
            for item in data]


def errors_to_list(errors: Sequence[Optional[BaseException]]
                   ) -> List[Optional[Dict[str, object]]]:
    """Serialize a batch's positional error column (``None`` marks a
    position that succeeded or was merely unreachable)."""
    return [None if exc is None else error_to_dict(exc) for exc in errors]


def errors_from_list(data: Sequence[Optional[Dict[str, object]]]
                     ) -> List[Optional[ReproError]]:
    return [None if item is None else error_from_dict(item)
            for item in data]


# -- plans -----------------------------------------------------------------------

def plan_to_dict(plan: QueryPlan) -> Dict[str, object]:
    """Serialize one :class:`QueryPlan` (remote ``explain()``)."""
    return {
        "spec": spec_to_dict(plan.spec),
        "method": plan.method,
        "reason": plan.reason,
        "uses_segtable": plan.uses_segtable,
        "bidirectional": plan.bidirectional,
        "frontier_mode": plan.frontier_mode,
        "phases": list(plan.phases),
        "operators_per_iteration": list(plan.operators_per_iteration),
        "estimated_iterations": plan.estimated_iterations,
        "cost_breakdown": None if plan.cost_breakdown is None else {
            method: estimate.as_dict()
            for method, estimate in plan.cost_breakdown.items()
        },
        "predicted_seconds": plan.predicted_seconds,
    }


def plan_from_dict(data: Dict[str, object]) -> QueryPlan:
    """Rebuild one :class:`QueryPlan` from the wire."""
    try:
        breakdown = data.get("cost_breakdown")
        estimated = data.get("estimated_iterations")
        predicted = data.get("predicted_seconds")
        return QueryPlan(
            spec=spec_from_dict(data["spec"]),
            method=str(data["method"]),
            reason=str(data["reason"]),
            uses_segtable=bool(data.get("uses_segtable", False)),
            bidirectional=bool(data.get("bidirectional", True)),
            frontier_mode=str(data.get("frontier_mode", "set-at-a-time")),
            phases=tuple(str(phase) for phase in data.get("phases", ())),
            operators_per_iteration=tuple(
                str(op) for op in data.get("operators_per_iteration", ())),
            estimated_iterations=None if estimated is None else int(estimated),
            cost_breakdown=None if breakdown is None else {
                str(method): CostEstimate.from_dict(raw)
                for method, raw in breakdown.items()
            },
            predicted_seconds=None if predicted is None else float(predicted),
        )
    except RemoteProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise RemoteProtocolError(
            f"malformed query plan on the wire ({exc})"
        ) from exc


# -- errors ----------------------------------------------------------------------

def error_to_dict(exc: BaseException) -> Dict[str, object]:
    """Serialize an exception for the error envelope.

    Library errors travel as their class name so the client re-raises the
    identical type; anything else is flattened to its class name too but
    will come back as :class:`RemoteProtocolError` — the client must not
    fabricate arbitrary exception types from wire input.

    A ``retry_after`` attribute (the admission-control backoff hint of
    :class:`~repro.errors.ServerOverloadedError`) rides along as an
    optional field; documents without it decode exactly as before, so
    the wire stays compatible in both directions.
    """
    document: Dict[str, object] = {"type": type(exc).__name__,
                                   "message": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if isinstance(retry_after, (int, float)):
        document["retry_after"] = float(retry_after)
    return document


def error_from_dict(data: Dict[str, object]) -> ReproError:
    """Rebuild the exception a server reported.

    Only names that resolve to :class:`ReproError` subclasses inside
    :mod:`repro.errors` are honored; unknown or non-library types come
    back as :class:`RemoteProtocolError` carrying the original name and
    message, so nothing is silently swallowed.
    """
    name = str(data.get("type", ""))
    message = str(data.get("message", "(no message)"))
    candidate = getattr(_errors_module, name, None)
    if (isinstance(candidate, type) and issubclass(candidate, ReproError)
            and candidate is not ReproError):
        rebuilt = candidate(message)
        retry_after = data.get("retry_after")
        if isinstance(retry_after, (int, float)):
            rebuilt.retry_after = float(retry_after)
        return rebuilt
    return RemoteProtocolError(
        f"remote shard reported a {name or '(untyped)'} error: {message}"
    )


__all__ = [
    "PROTOCOL_VERSION",
    "error_from_dict",
    "error_to_dict",
    "errors_from_list",
    "errors_to_list",
    "plan_from_dict",
    "plan_to_dict",
    "result_from_dict",
    "result_to_dict",
    "results_from_list",
    "results_to_list",
    "spec_from_dict",
    "spec_to_dict",
    "specs_from_list",
    "specs_to_list",
]
