"""``python -m repro.serve`` — run one shard server.

Warm-starts a :class:`~repro.service.session.PathService` from a
persistent catalog and serves it over HTTP/JSON until interrupted::

    python -m repro.serve --catalog catalogs/a --port 8155

The bound URL is printed on stdout as soon as the server listens (with
``--port 0`` that is the only way to learn the ephemeral port), so a
supervisor script can scrape it::

    serving shard 'a' (graphs: alpha, beta) at http://127.0.0.1:8155
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.serve.server import ShardServer
from repro.service.session import PathService
from repro.shard.spec import default_shard_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve one warm-started PathService over HTTP/JSON.")
    parser.add_argument("--catalog", required=True,
                        help="catalog directory to warm-start from")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8155,
                        help="bind port; 0 picks an ephemeral one "
                             "(default: 8155)")
    parser.add_argument("--shard-id", default=None,
                        help="shard identity stamped into cache keys "
                             "(default: the catalog directory's basename)")
    parser.add_argument("--no-strict", action="store_true",
                        help="skip catalog entries that fail to attach "
                             "instead of refusing to start")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="result-cache capacity (default: 1024)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    shard_id = args.shard_id or default_shard_name(args.catalog)
    service = PathService.open(
        args.catalog, strict=not args.no_strict, shard_id=shard_id,
        cache_size=args.cache_size)
    server = ShardServer(service, host=args.host, port=args.port,
                         own_service=True, quiet=not args.verbose)
    graphs = ", ".join(service.graphs()) or "(none)"
    server.start()
    print(f"serving shard {shard_id!r} (graphs: {graphs}) at {server.url}",
          flush=True)
    try:
        # start() already serves on a daemon thread; park the main thread
        # so Ctrl-C lands here and shuts down cleanly.
        import threading
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
