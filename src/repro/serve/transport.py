"""The ``"remote"`` shard transport: a networked shard behind the router.

Registered beside ``"inprocess"`` when :mod:`repro.serve` is imported, so
one :class:`~repro.shard.router.ShardRouter` mixes local and networked
shards transparently::

    router = ShardRouter.open(
        catalog_paths=["catalogs/a", "http://10.0.0.7:8155"])

Every :class:`~repro.shard.spec.ShardTransport` operation is overridden
with one wire call (the base class's ``service``-delegating defaults
cannot apply — there is no in-process service).  Scatter-gather stays
bit-identical to a monolithic run because the server executes the very
same :func:`~repro.service.batch.execute_batch` path this process would,
and results cross the wire losslessly (distances, paths, and full
:class:`~repro.core.stats.QueryStats`).

Client knobs ride in ``spec.service_options``: ``timeout`` (seconds per
request — a slow shard exceeding it becomes
:class:`~repro.errors.ShardUnavailableError`, which is what lets the
router fail over), ``retries`` (transport-level retries with full-jitter
backoff before that error escapes), and ``backoff_seed`` (deterministic
jitter for tests and the chaos bench).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ShardError
from repro.serve.client import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    ShardClient,
)
from repro.shard.spec import ShardSpec, ShardTransport, is_shard_url

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.manifest import CatalogEntry
    from repro.core.path import PathResult
    from repro.service.batch import BatchResult
    from repro.service.costmodel import CostProfile
    from repro.service.planner import QueryPlan, QuerySpec
    from repro.service.session import PathService


class RemoteTransport(ShardTransport):
    """A shard reached over the serve wire protocol.

    The spec's ``catalog_path`` is the server's base URL (or pass it as
    ``service_options["url"]`` when the spec keeps a filesystem path for
    bookkeeping).  Connecting probes ``/health`` once, so a dead address
    fails at :meth:`ShardSpec.open` time — connection refused at open is
    an immediate :class:`~repro.errors.ShardUnavailableError`, not a
    latent batch failure.
    """

    def __init__(self, spec: ShardSpec, strict: bool = True) -> None:
        super().__init__(spec)
        options = dict(spec.service_options)
        url = str(options.pop("url", "") or spec.catalog_path)
        if not is_shard_url(url):
            raise ShardError(
                f"remote shard {spec.name!r} needs an http(s):// URL; got "
                f"{url!r} (put it in catalog_path or "
                f"service_options['url'])"
            )
        seed = options.pop("backoff_seed", None)
        self._client = ShardClient(
            url,
            timeout=float(options.pop("timeout", DEFAULT_TIMEOUT)),
            retries=int(options.pop("retries", DEFAULT_RETRIES)),
            backoff_seed=None if seed is None else int(seed))  # type: ignore[arg-type]
        if options:
            raise ShardError(
                f"remote shard {spec.name!r} got unsupported service "
                f"options {tuple(sorted(options))}; the remote transport "
                f"accepts 'url', 'timeout', 'retries', and 'backoff_seed' "
                f"— service knobs belong to the server process"
            )
        # strict has no remote meaning (the server already warm-started);
        # the health probe is the open-time validation instead.
        self._client.health()

    @property
    def client(self) -> ShardClient:
        """The underlying wire client (for tests and diagnostics)."""
        return self._client

    @property
    def url(self) -> str:
        return self._client.url

    @property
    def service(self) -> "PathService":
        raise ShardError(
            f"shard {self.spec.name!r} is remote ({self._client.url}); it "
            f"has no in-process service — full data moves and pool "
            f"inspection need an inprocess transport"
        )

    def close(self) -> None:
        """Nothing to release: connections are per-request, and the server
        process outlives its clients by design."""

    # -- operation surface (every call is one wire round trip) -------------------

    def graphs(self) -> Tuple[str, ...]:
        return tuple(str(name) for name in self._client.health()["graphs"])

    def routing_entries(self) -> Dict[str, "CatalogEntry"]:
        return self._client.routing_entries()

    def stamp_ownership(self, graph: str, shard: str) -> None:
        self._client.stamp_ownership(graph, shard)

    def shortest_path(self, spec: "QuerySpec",
                      use_cache: bool = True) -> "PathResult":
        return self._client.shortest_path(spec, use_cache=use_cache)

    def explain(self, spec: "QuerySpec") -> "QueryPlan":
        return self._client.explain(spec)

    def plan_specs(self, specs: Sequence["QuerySpec"]) -> List["QueryPlan"]:
        return self._client.plan_many(specs)

    def execute_specs(self, specs: Sequence["QuerySpec"], *,
                      concurrency: int = 1,
                      checkout_timeout: Optional[float] = None,
                      plans: Optional[Sequence["QueryPlan"]] = None,
                      share_frontier: object = False
                      ) -> "BatchResult":
        # plans cannot ship over the wire; the server re-plans its slice
        # deterministically, so the results are identical anyway.
        from repro.service.batch import BatchResult
        results, from_cache, stats, errors = self._client.execute(
            specs, concurrency=concurrency,
            checkout_timeout=checkout_timeout,
            share_frontier=share_frontier)
        return BatchResult(specs=list(specs), results=results,
                           from_cache=from_cache, stats=stats,
                           errors=errors)

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True,
                  **probe_options: object) -> Dict[str, "CostProfile"]:
        return self._client.calibrate(backend, persist=persist,
                                      **probe_options)

    def health(self) -> Dict[str, object]:
        return dict(self._client.health())


__all__ = ["RemoteTransport"]
