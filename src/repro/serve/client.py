"""The shard client: typed calls against one shard server.

Stdlib :mod:`urllib.request` under the hood; every public method decodes
the response envelope back into the library's own objects (results carry
full :class:`~repro.core.stats.QueryStats`, errors re-raise as their
original :mod:`repro.errors` type).  Failure taxonomy:

* connection refused / reset, timeouts, and the server dying mid-request
  raise :class:`~repro.errors.ShardUnavailableError` — the one error the
  router may retry verbatim on an identical-fingerprint replica;
* a reachable server answering garbage (bad JSON, wrong envelope, wrong
  protocol version) raises :class:`~repro.errors.RemoteProtocolError` —
  retrying cannot help;
* a clean library error (unknown graph, unreachable pair, ...) re-raises
  as that library error, exactly like a local call.

Transient transport failures are retried ``retries`` times with a
*full-jitter* exponential backoff (attempt ``n`` sleeps a uniform draw
from ``[0, BACKOFF_SECONDS * 2**n]``) before
:class:`ShardUnavailableError` escapes — but only for *idempotent*
requests; ``calibrate`` and ``stamp`` are attempted once.  An overloaded
server's ``retry_after`` hint floors the drawn delay, and a query budget
(``QuerySpec.timeout_s``) caps both the sleep and the per-attempt HTTP
timeout, so a budgeted query can never out-sleep its own deadline.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.catalog.manifest import CatalogEntry
from repro.core.deadline import (
    check_deadline,
    deadline_from_timeout,
    remaining_budget,
)
from repro.core.path import PathResult
from repro.core.stats import BatchStats
from repro.errors import RemoteProtocolError, ReproError, ShardUnavailableError
from repro.obs import current_request_id, new_request_id
from repro.serve import protocol
from repro.service.costmodel import CostProfile
from repro.service.planner import QueryPlan, QuerySpec

DEFAULT_TIMEOUT = 30.0
DEFAULT_RETRIES = 2
BACKOFF_SECONDS = 0.05
"""Backoff scale: retry attempt ``n`` sleeps ``uniform(0, 0.05 * 2**n)``
seconds (full jitter — retried clients spread out instead of thundering
back in lockstep)."""

_Body = Union[None, Dict[str, object], Callable[[], Dict[str, object]]]
"""A request body, or a factory called once per attempt (so a budgeted
spec is re-serialized with its *remaining* budget on every retry)."""


class ShardClient:
    """A typed HTTP client for one shard server.

    Thread-safe: every request opens its own connection, so scatter
    threads may share one client.  ``timeout`` bounds each request
    end-to-end (connect + response); a slow shard that exceeds it raises
    :class:`ShardUnavailableError`, which is what lets the router fail
    over instead of hanging a batch.

    ``backoff_seed`` makes retry jitter deterministic — tests and the
    chaos bench replay the exact same backoff schedule run after run;
    leave it ``None`` in production so independent clients desynchronize.
    """

    def __init__(self, url: str, *, timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 backoff_seed: Optional[int] = None) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self._rng = random.Random(backoff_seed)
        self._rng_lock = threading.Lock()

    # -- wire plumbing -----------------------------------------------------------

    def _backoff_delay(self, attempt: int,
                       retry_after: Optional[float],
                       deadline: Optional[float]) -> float:
        """The sleep before retry ``attempt``: a full-jitter draw, floored
        at the server's ``retry_after`` hint (an overloaded server knows
        its own queue better than our schedule does) and capped at the
        query's remaining budget (never out-sleep the deadline)."""
        with self._rng_lock:
            delay = self._rng.uniform(0.0, BACKOFF_SECONDS * (2 ** attempt))
        if retry_after is not None:
            delay = max(delay, retry_after)
        budget = remaining_budget(deadline)
        if budget is not None:
            delay = min(delay, max(0.0, budget))
        return delay

    def _request_once(self, path: str,
                      body: Optional[Dict[str, object]],
                      request_id: Optional[str] = None,
                      timeout: Optional[float] = None) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if request_id is None:
            request_id = current_request_id()
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers,
            method="GET" if data is None else "POST")
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=self.timeout if timeout is None else timeout
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            # The server answered with an error envelope: decode it below
            # like any other payload (400/500 carry the same shape).
            raw = exc.read()
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as exc:
            raise ShardUnavailableError(
                f"shard at {self.url} is unreachable ({path}): {exc}"
            ) from exc
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered non-JSON on {path}: {exc}"
            ) from exc
        if not isinstance(envelope, dict) or "ok" not in envelope:
            raise RemoteProtocolError(
                f"shard at {self.url} answered a malformed envelope on "
                f"{path}: {envelope!r}"
            )
        version = envelope.get("protocol")
        if version != protocol.PROTOCOL_VERSION:
            raise RemoteProtocolError(
                f"shard at {self.url} speaks protocol {version!r}; this "
                f"client speaks {protocol.PROTOCOL_VERSION}"
            )
        if not envelope["ok"]:
            raise protocol.error_from_dict(envelope.get("error", {}))
        data_out = envelope.get("data")
        if not isinstance(data_out, dict):
            raise RemoteProtocolError(
                f"shard at {self.url} answered ok without a data object "
                f"on {path}"
            )
        return data_out

    def _request(self, path: str, body: _Body = None,
                 *, idempotent: bool = True,
                 deadline: Optional[float] = None) -> Dict[str, object]:
        attempts = (1 + self.retries) if idempotent else 1
        last: Optional[ShardUnavailableError] = None
        # One logical request = one correlation id: every retry attempt
        # carries the SAME X-Request-Id, so server logs and traces show a
        # retried call as one query, not two.  An ambient id (bound by a
        # router/service trace) wins over a freshly minted one.
        request_id = current_request_id() or new_request_id()
        for attempt in range(attempts):
            # A budgeted query raises its typed deadline error locally
            # instead of sending a request the server would reject anyway.
            check_deadline(deadline, f"{path} attempt {attempt + 1}")
            timeout = self.timeout
            budget = remaining_budget(deadline)
            if budget is not None:
                timeout = min(timeout, budget)
            payload = body() if callable(body) else body
            try:
                return self._request_once(path, payload,
                                          request_id=request_id,
                                          timeout=timeout)
            except ShardUnavailableError as exc:
                last = exc
                if attempt + 1 < attempts:
                    retry_after = getattr(exc, "retry_after", None)
                    time.sleep(self._backoff_delay(
                        attempt,
                        float(retry_after) if isinstance(
                            retry_after, (int, float)) else None,
                        deadline))
        assert last is not None
        raise last

    # -- typed operations --------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Liveness probe; raises :class:`ShardUnavailableError` when the
        server is down (no retries — health checks must answer fast)."""
        return self._request_once("/health", None)

    def routing_entries(self) -> Dict[str, CatalogEntry]:
        """The server catalog's manifest entries."""
        data = self._request("/routing")
        try:
            return {str(name): CatalogEntry.from_dict(raw)
                    for name, raw in dict(data["entries"]).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered malformed routing entries "
                f"({exc})"
            ) from exc

    def stats(self) -> Dict[str, object]:
        """The server's cache counters and hosted graph list."""
        return self._request("/stats")

    def metrics_text(self) -> str:
        """Scrape the server's ``/metrics`` endpoint.

        Returns the raw Prometheus text exposition (no JSON envelope —
        this is the same bytes a Prometheus scraper would see).
        """
        request = urllib.request.Request(
            self.url + "/metrics", method="GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as exc:
            raise ShardUnavailableError(
                f"shard at {self.url} is unreachable (/metrics): {exc}"
            ) from exc

    def stamp_ownership(self, graph: str, shard: str) -> None:
        """Record ``shard`` as ``graph``'s owner in the server's manifest."""
        self._request("/stamp", {"graph": graph, "shard": shard},
                      idempotent=False)

    def shortest_path(self, spec: QuerySpec,
                      use_cache: bool = True) -> PathResult:
        """Answer one query on the remote shard.

        A budgeted spec (``timeout_s``) bounds the call end to end on
        *this* side of the wire: the HTTP timeout and any retry backoff
        are clamped to the remaining budget, and each attempt re-sends
        the spec with the budget still left — so the server's own
        deadline covers only the time actually remaining, not the
        original allowance.  Raises
        :class:`~repro.errors.DeadlineExceededError` once the budget is
        gone, whichever side of the wire noticed first.
        """
        deadline = deadline_from_timeout(spec.timeout_s)

        def body() -> Dict[str, object]:
            send = spec
            budget = remaining_budget(deadline)
            if budget is not None:
                if budget <= 0:
                    # Raced out between the loop's check and now; raise
                    # the typed error (a QuerySpec cannot even express a
                    # spent budget).
                    check_deadline(deadline, "query dispatch")
                send = replace(spec, timeout_s=budget)
            return {"spec": protocol.spec_to_dict(send),
                    "use_cache": use_cache}

        data = self._request("/shortest_path", body, deadline=deadline)
        return protocol.result_from_dict(self._field(data, "result"))

    def explain(self, spec: QuerySpec) -> QueryPlan:
        """The plan the remote shard would execute."""
        data = self._request("/explain",
                             {"spec": protocol.spec_to_dict(spec)})
        return protocol.plan_from_dict(self._field(data, "plan"))

    def plan_many(self, specs: Sequence[QuerySpec]) -> List[QueryPlan]:
        """Plan (= validate) a batch slice in one round trip."""
        data = self._request("/plan_many",
                             {"specs": protocol.specs_to_list(specs)})
        plans = data.get("plans")
        if not isinstance(plans, list) or len(plans) != len(specs):
            raise RemoteProtocolError(
                f"shard at {self.url} answered {0 if not isinstance(plans, list) else len(plans)} "
                f"plans for {len(specs)} specs"
            )
        return [protocol.plan_from_dict(plan) for plan in plans]

    def execute(self, specs: Sequence[QuerySpec], *,
                concurrency: int = 1,
                checkout_timeout: Optional[float] = None,
                share_frontier: object = False
                ) -> Tuple[List[Optional[PathResult]], List[bool],
                           BatchStats, List[Optional[ReproError]]]:
        """Execute a batch slice; returns (results, from_cache, stats,
        errors) — ``errors`` is positional, one slot per spec, ``None``
        where the query succeeded (a budgeted sibling expiring does not
        poison the rest of the slice).

        Safe to retry: execution is read-only and result caching makes a
        replay answer from cache.
        """
        data = self._request("/execute", {
            "specs": protocol.specs_to_list(specs),
            "concurrency": concurrency,
            "checkout_timeout": checkout_timeout,
            "share_frontier": share_frontier,
        })
        raw_results = data.get("results")
        raw_cached = data.get("from_cache")
        if (not isinstance(raw_results, list)
                or not isinstance(raw_cached, list)
                or len(raw_results) != len(specs)
                or len(raw_cached) != len(specs)):
            raise RemoteProtocolError(
                f"shard at {self.url} answered a misaligned batch "
                f"(asked {len(specs)} specs)"
            )
        results = protocol.results_from_list(raw_results)
        # Absent on pre-deadline servers: nothing failed positionally.
        raw_errors = data.get("errors")
        if raw_errors is None:
            errors: List[Optional[ReproError]] = [None] * len(specs)
        elif isinstance(raw_errors, list) and len(raw_errors) == len(specs):
            errors = protocol.errors_from_list(raw_errors)
        else:
            raise RemoteProtocolError(
                f"shard at {self.url} answered a misaligned error column "
                f"(asked {len(specs)} specs)"
            )
        try:
            stats = BatchStats.from_dict(dict(self._field(data, "stats")))
        except (TypeError, ValueError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered malformed batch stats "
                f"({exc})"
            ) from exc
        return results, [bool(flag) for flag in raw_cached], stats, errors

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True,
                  **probe_options: object) -> Dict[str, CostProfile]:
        """Calibrate the remote shard's planner cost model (no retries —
        probing is expensive and not idempotent on the server's catalog)."""
        data = self._request("/calibrate", {
            "backend": backend,
            "persist": persist,
            "probe_options": dict(probe_options),
        }, idempotent=False)
        try:
            return {str(name): CostProfile.from_dict(dict(raw))
                    for name, raw in dict(self._field(data, "profiles")).items()}
        except (TypeError, ValueError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered malformed cost profiles "
                f"({exc})"
            ) from exc

    # -- helpers -----------------------------------------------------------------

    def _field(self, data: Dict[str, object], name: str) -> Dict[str, object]:
        value = data.get(name)
        if not isinstance(value, dict):
            raise RemoteProtocolError(
                f"shard at {self.url} answered without the {name!r} field"
            )
        return value


__all__ = [
    "BACKOFF_SECONDS",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT",
    "ShardClient",
]
