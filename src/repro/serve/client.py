"""The shard client: typed calls against one shard server.

Stdlib :mod:`urllib.request` under the hood; every public method decodes
the response envelope back into the library's own objects (results carry
full :class:`~repro.core.stats.QueryStats`, errors re-raise as their
original :mod:`repro.errors` type).  Failure taxonomy:

* connection refused / reset, timeouts, and the server dying mid-request
  raise :class:`~repro.errors.ShardUnavailableError` — the one error the
  router may retry verbatim on an identical-fingerprint replica;
* a reachable server answering garbage (bad JSON, wrong envelope, wrong
  protocol version) raises :class:`~repro.errors.RemoteProtocolError` —
  retrying cannot help;
* a clean library error (unknown graph, unreachable pair, ...) re-raises
  as that library error, exactly like a local call.

Transient transport failures are retried ``retries`` times with a short
exponential backoff before :class:`ShardUnavailableError` escapes — but
only for *idempotent* requests; ``calibrate`` and ``stamp`` are attempted
once.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.manifest import CatalogEntry
from repro.core.path import PathResult
from repro.core.stats import BatchStats
from repro.errors import RemoteProtocolError, ShardUnavailableError
from repro.obs import current_request_id, new_request_id
from repro.serve import protocol
from repro.service.costmodel import CostProfile
from repro.service.planner import QueryPlan, QuerySpec

DEFAULT_TIMEOUT = 30.0
DEFAULT_RETRIES = 2
BACKOFF_SECONDS = 0.05
"""First retry delay; doubles per attempt (0.05, 0.1, ...)."""


class ShardClient:
    """A typed HTTP client for one shard server.

    Thread-safe: every request opens its own connection, so scatter
    threads may share one client.  ``timeout`` bounds each request
    end-to-end (connect + response); a slow shard that exceeds it raises
    :class:`ShardUnavailableError`, which is what lets the router fail
    over instead of hanging a batch.
    """

    def __init__(self, url: str, *, timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)

    # -- wire plumbing -----------------------------------------------------------

    def _request_once(self, path: str,
                      body: Optional[Dict[str, object]],
                      request_id: Optional[str] = None) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if request_id is None:
            request_id = current_request_id()
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers,
            method="GET" if data is None else "POST")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            # The server answered with an error envelope: decode it below
            # like any other payload (400/500 carry the same shape).
            raw = exc.read()
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as exc:
            raise ShardUnavailableError(
                f"shard at {self.url} is unreachable ({path}): {exc}"
            ) from exc
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered non-JSON on {path}: {exc}"
            ) from exc
        if not isinstance(envelope, dict) or "ok" not in envelope:
            raise RemoteProtocolError(
                f"shard at {self.url} answered a malformed envelope on "
                f"{path}: {envelope!r}"
            )
        version = envelope.get("protocol")
        if version != protocol.PROTOCOL_VERSION:
            raise RemoteProtocolError(
                f"shard at {self.url} speaks protocol {version!r}; this "
                f"client speaks {protocol.PROTOCOL_VERSION}"
            )
        if not envelope["ok"]:
            raise protocol.error_from_dict(envelope.get("error", {}))
        data_out = envelope.get("data")
        if not isinstance(data_out, dict):
            raise RemoteProtocolError(
                f"shard at {self.url} answered ok without a data object "
                f"on {path}"
            )
        return data_out

    def _request(self, path: str, body: Optional[Dict[str, object]] = None,
                 *, idempotent: bool = True) -> Dict[str, object]:
        attempts = (1 + self.retries) if idempotent else 1
        delay = BACKOFF_SECONDS
        last: Optional[ShardUnavailableError] = None
        # One logical request = one correlation id: every retry attempt
        # carries the SAME X-Request-Id, so server logs and traces show a
        # retried call as one query, not two.  An ambient id (bound by a
        # router/service trace) wins over a freshly minted one.
        request_id = current_request_id() or new_request_id()
        for attempt in range(attempts):
            try:
                return self._request_once(path, body, request_id=request_id)
            except ShardUnavailableError as exc:
                last = exc
                if attempt + 1 < attempts:
                    time.sleep(delay)
                    delay *= 2
        assert last is not None
        raise last

    # -- typed operations --------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Liveness probe; raises :class:`ShardUnavailableError` when the
        server is down (no retries — health checks must answer fast)."""
        return self._request_once("/health", None)

    def routing_entries(self) -> Dict[str, CatalogEntry]:
        """The server catalog's manifest entries."""
        data = self._request("/routing")
        try:
            return {str(name): CatalogEntry.from_dict(raw)
                    for name, raw in dict(data["entries"]).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered malformed routing entries "
                f"({exc})"
            ) from exc

    def stats(self) -> Dict[str, object]:
        """The server's cache counters and hosted graph list."""
        return self._request("/stats")

    def metrics_text(self) -> str:
        """Scrape the server's ``/metrics`` endpoint.

        Returns the raw Prometheus text exposition (no JSON envelope —
        this is the same bytes a Prometheus scraper would see).
        """
        request = urllib.request.Request(
            self.url + "/metrics", method="GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as exc:
            raise ShardUnavailableError(
                f"shard at {self.url} is unreachable (/metrics): {exc}"
            ) from exc

    def stamp_ownership(self, graph: str, shard: str) -> None:
        """Record ``shard`` as ``graph``'s owner in the server's manifest."""
        self._request("/stamp", {"graph": graph, "shard": shard},
                      idempotent=False)

    def shortest_path(self, spec: QuerySpec,
                      use_cache: bool = True) -> PathResult:
        """Answer one query on the remote shard."""
        data = self._request("/shortest_path",
                             {"spec": protocol.spec_to_dict(spec),
                              "use_cache": use_cache})
        return protocol.result_from_dict(self._field(data, "result"))

    def explain(self, spec: QuerySpec) -> QueryPlan:
        """The plan the remote shard would execute."""
        data = self._request("/explain",
                             {"spec": protocol.spec_to_dict(spec)})
        return protocol.plan_from_dict(self._field(data, "plan"))

    def plan_many(self, specs: Sequence[QuerySpec]) -> List[QueryPlan]:
        """Plan (= validate) a batch slice in one round trip."""
        data = self._request("/plan_many",
                             {"specs": protocol.specs_to_list(specs)})
        plans = data.get("plans")
        if not isinstance(plans, list) or len(plans) != len(specs):
            raise RemoteProtocolError(
                f"shard at {self.url} answered {0 if not isinstance(plans, list) else len(plans)} "
                f"plans for {len(specs)} specs"
            )
        return [protocol.plan_from_dict(plan) for plan in plans]

    def execute(self, specs: Sequence[QuerySpec], *,
                concurrency: int = 1,
                checkout_timeout: Optional[float] = None,
                share_frontier: object = False
                ) -> Tuple[List[Optional[PathResult]], List[bool], BatchStats]:
        """Execute a batch slice; returns (results, from_cache, stats).

        Safe to retry: execution is read-only and result caching makes a
        replay answer from cache.
        """
        data = self._request("/execute", {
            "specs": protocol.specs_to_list(specs),
            "concurrency": concurrency,
            "checkout_timeout": checkout_timeout,
            "share_frontier": share_frontier,
        })
        raw_results = data.get("results")
        raw_cached = data.get("from_cache")
        if (not isinstance(raw_results, list)
                or not isinstance(raw_cached, list)
                or len(raw_results) != len(specs)
                or len(raw_cached) != len(specs)):
            raise RemoteProtocolError(
                f"shard at {self.url} answered a misaligned batch "
                f"(asked {len(specs)} specs)"
            )
        results = protocol.results_from_list(raw_results)
        try:
            stats = BatchStats.from_dict(dict(self._field(data, "stats")))
        except (TypeError, ValueError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered malformed batch stats "
                f"({exc})"
            ) from exc
        return results, [bool(flag) for flag in raw_cached], stats

    def calibrate(self, backend: Optional[str] = None, *,
                  persist: bool = True,
                  **probe_options: object) -> Dict[str, CostProfile]:
        """Calibrate the remote shard's planner cost model (no retries —
        probing is expensive and not idempotent on the server's catalog)."""
        data = self._request("/calibrate", {
            "backend": backend,
            "persist": persist,
            "probe_options": dict(probe_options),
        }, idempotent=False)
        try:
            return {str(name): CostProfile.from_dict(dict(raw))
                    for name, raw in dict(self._field(data, "profiles")).items()}
        except (TypeError, ValueError) as exc:
            raise RemoteProtocolError(
                f"shard at {self.url} answered malformed cost profiles "
                f"({exc})"
            ) from exc

    # -- helpers -----------------------------------------------------------------

    def _field(self, data: Dict[str, object], name: str) -> Dict[str, object]:
        value = data.get(name)
        if not isinstance(value, dict):
            raise RemoteProtocolError(
                f"shard at {self.url} answered without the {name!r} field"
            )
        return value


__all__ = [
    "BACKOFF_SECONDS",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT",
    "ShardClient",
]
