"""Networked shard serving: wire protocol, server, client, transports.

Importing this package registers the ``"remote"`` shard transport, so::

    import repro.serve  # registers "remote"
    router = ShardRouter.open(
        catalog_paths=["catalogs/a", "http://10.0.0.7:8155"])

mixes an in-process shard with a networked one behind the same router —
:meth:`ShardSpec.open` also performs this import on demand when it meets
an unregistered transport name, so specs built first still work.

Run a shard server with ``python -m repro.serve --catalog catalogs/a``.
"""

from __future__ import annotations

from repro.serve.aio import AsyncPathService, AsyncShardRouter
from repro.serve.client import ShardClient
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import ShardServer
from repro.serve.transport import RemoteTransport
from repro.shard.spec import (
    REMOTE_TRANSPORT,
    available_transports,
    register_transport,
)

if REMOTE_TRANSPORT not in available_transports():
    register_transport(REMOTE_TRANSPORT, RemoteTransport)

__all__ = [
    "PROTOCOL_VERSION",
    "REMOTE_TRANSPORT",
    "AsyncPathService",
    "AsyncShardRouter",
    "RemoteTransport",
    "ShardClient",
    "ShardServer",
]
