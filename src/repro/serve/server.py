"""The shard server: one warm-started :class:`PathService` over HTTP/JSON.

Stdlib only — :class:`http.server.ThreadingHTTPServer` carries the serve
wire protocol (:mod:`repro.serve.protocol`), one thread per in-flight
request, all of them sharing the process's single ``PathService`` exactly
the way a parallel batch shares it (the service's pool/executor machinery
is already thread-safe).

Endpoints (all responses are ``{"ok", "protocol", "data" | "error"}``
envelopes):

========================  =====  =============================================
``/health``               GET    liveness + hosted graphs
``/routing``              GET    the catalog manifest entries (routing slice)
``/stats``                GET    cache counters and graph list
``/metrics``              GET    Prometheus text exposition (no JSON envelope)
``/stamp``                POST   record a graph's owning shard in the manifest
``/shortest_path``        POST   one query
``/explain``              POST   plan one query without executing
``/plan_many``            POST   validate/plan a batch slice (fail-fast pass)
``/execute``              POST   execute a batch slice, stats included
``/calibrate``            POST   calibrate the planner cost model
========================  =====  =============================================

Library errors cross the wire as their :mod:`repro.errors` class name with
HTTP 400; anything unexpected is a 500.  Use :class:`ShardServer` for
embedded (in-test) serving and ``python -m repro.serve`` for a standalone
process.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import RemoteProtocolError, ReproError
from repro.obs import bind_request_id, get_logger, timer
from repro.obs.schema import METRIC_HTTP_LATENCY, METRIC_HTTP_REQUESTS
from repro.serve import protocol
from repro.service.batch import execute_batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import PathService

MAX_REQUEST_BYTES = 64 * 1024 * 1024
"""Upper bound on one request body; a batch of a million specs fits."""

REQUEST_ID_HEADER = "X-Request-Id"
"""Correlation header: a client stamps the same id on every retry attempt
of one logical request, and the server binds it so traces and structured
log lines on both ends share it."""

_LOG = get_logger("serve.server")


class _ShardRequestHandler(BaseHTTPRequestHandler):
    """Dispatches one HTTP request against the server's PathService."""

    # The server attribute is a _ShardHTTPServer (set by ShardServer).
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        # Route through the server's quiet flag instead of stderr spam.
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------------

    def _reply(self, status: int, data: Dict[str, object]) -> None:
        body = json.dumps(data).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _ok(self, data: Dict[str, object]) -> None:
        self._reply(200, {"ok": True,
                          "protocol": protocol.PROTOCOL_VERSION,
                          "data": data})

    def _fail(self, status: int, exc: BaseException) -> None:
        self._reply(status, {"ok": False,
                             "protocol": protocol.PROTOCOL_VERSION,
                             "error": protocol.error_to_dict(exc)})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_REQUEST_BYTES:
            raise ValueError(f"request body of {length} bytes exceeds the "
                             f"{MAX_REQUEST_BYTES}-byte bound")
        raw = self.rfile.read(length) if length else b"{}"
        document = json.loads(raw.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    def _dispatch(self, handlers: Dict[str, object]) -> None:
        handler = handlers.get(self.path)
        # Known endpoints keep their own label; everything else collapses
        # onto one, so a port scan cannot explode metric cardinality.
        endpoint = self.path if handler is not None else "(unknown)"
        request_id = self.headers.get(REQUEST_ID_HEADER) or None
        self._status = 500
        with bind_request_id(request_id), timer() as took:
            if handler is None:
                self._reply(404, {
                    "ok": False,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "error": {"type": "RemoteProtocolError",
                              "message": f"unknown endpoint {self.path!r}"},
                })
            else:
                try:
                    self._ok(handler())  # type: ignore[operator]
                except ReproError as exc:
                    self._fail(400, exc)
                except Exception as exc:  # noqa: BLE001 - must answer, not die
                    self._fail(500, exc)
            self._observe_http(endpoint, self._status, took.seconds)

    def _observe_http(self, endpoint: str, status: int,
                      seconds: float) -> None:
        registry = self._service.registry
        registry.counter(METRIC_HTTP_REQUESTS,
                         {"endpoint": endpoint, "status": str(status)}).inc()
        registry.histogram(METRIC_HTTP_LATENCY,
                           {"endpoint": endpoint}).observe(seconds)
        _LOG.info("request served", extra={
            "endpoint": endpoint, "status": status,
            "duration_s": round(seconds, 6),
        })

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/metrics":
            # Prometheus scrapes expect the raw text exposition format,
            # not the JSON envelope — answered before JSON dispatch.
            self._handle_metrics()
            return
        self._dispatch({
            "/health": self._handle_health,
            "/routing": self._handle_routing,
            "/stats": self._handle_stats,
        })

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch({
            "/stamp": self._handle_stamp,
            "/shortest_path": self._handle_shortest_path,
            "/explain": self._handle_explain,
            "/plan_many": self._handle_plan_many,
            "/execute": self._handle_execute,
            "/calibrate": self._handle_calibrate,
        })

    # -- endpoints ---------------------------------------------------------------

    @property
    def _service(self) -> "PathService":
        return self.server.service  # type: ignore[attr-defined]

    def _handle_metrics(self) -> None:
        with timer() as took:
            body = self._service.registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        self._observe_http("/metrics", 200, took.seconds)

    def _handle_health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "shard": self._service.shard_id,
            "graphs": list(self._service.graphs()),
        }

    def _handle_routing(self) -> Dict[str, object]:
        catalog = self._service.catalog
        entries = {} if catalog is None else {
            name: entry.to_dict()
            for name, entry in catalog.entries().items()
        }
        return {"entries": entries}

    def _handle_stats(self) -> Dict[str, object]:
        return {
            "shard": self._service.shard_id,
            "graphs": list(self._service.graphs()),
            "cache": asdict(self._service.cache_info()),
        }

    def _handle_stamp(self) -> Dict[str, object]:
        body = self._read_body()
        catalog = self._service.catalog
        if catalog is None:
            raise ReproError("this shard server has no catalog to stamp")
        catalog.set_shard(str(body["graph"]), str(body["shard"]))
        return {"stamped": True}

    def _handle_shortest_path(self) -> Dict[str, object]:
        body = self._read_body()
        spec = protocol.spec_from_dict(body.get("spec", {}))
        result = self._service.shortest_path(
            spec.source, spec.target, graph=spec.graph, method=spec.method,
            sql_style=spec.sql_style, max_iterations=spec.max_iterations,
            use_cache=bool(body.get("use_cache", True)),
            kind=spec.kind, max_hops=spec.max_hops)
        return {"result": protocol.result_to_dict(result)}

    def _handle_explain(self) -> Dict[str, object]:
        body = self._read_body()
        spec = protocol.spec_from_dict(body.get("spec", {}))
        return {"plan": protocol.plan_to_dict(self._service.plan(spec))}

    def _handle_plan_many(self) -> Dict[str, object]:
        body = self._read_body()
        specs = protocol.specs_from_list(body.get("specs", []))
        plans = [self._service.plan(spec) for spec in specs]
        return {"plans": [protocol.plan_to_dict(plan) for plan in plans]}

    def _handle_execute(self) -> Dict[str, object]:
        body = self._read_body()
        specs = protocol.specs_from_list(body.get("specs", []))
        timeout = body.get("checkout_timeout")
        share = body.get("share_frontier", False)
        if share not in (False, True, "auto"):
            raise RemoteProtocolError(
                f"malformed share_frontier on the wire: {share!r}"
            )
        batch = execute_batch(
            self._service, specs, raise_on_unreachable=False,
            concurrency=int(body.get("concurrency", 1)),
            checkout_timeout=None if timeout is None else float(timeout),
            share_frontier=share)
        return {
            "results": protocol.results_to_list(batch.results),
            "from_cache": list(batch.from_cache),
            "stats": batch.stats.as_dict(),
        }

    def _handle_calibrate(self) -> Dict[str, object]:
        body = self._read_body()
        backend = body.get("backend")
        profiles = self._service.calibrate(
            None if backend is None else str(backend),
            persist=bool(body.get("persist", True)),
            **dict(body.get("probe_options", {})))
        return {"profiles": {name: profile.as_dict()
                             for name, profile in profiles.items()}}


class _ShardHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the PathService for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: "PathService", quiet: bool,
                 handler_class: Optional[type] = None) -> None:
        super().__init__(address, handler_class or _ShardRequestHandler)
        self.service = service
        self.quiet = quiet


class ShardServer:
    """One shard server: a PathService listening on ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port` —
    this is how the tests and the smoke bench run hermetically).  The
    server does **not** own the service by default: closing the server
    stops answering but leaves the service usable in-process; pass
    ``own_service=True`` (the CLI does) to close it too.

    Usable as a context manager::

        with ShardServer(service, port=0) as server:
            client = ShardClient(server.url)
    """

    def __init__(self, service: "PathService", host: str = "127.0.0.1",
                 port: int = 0, *, own_service: bool = False,
                 quiet: bool = True,
                 handler_class: Optional[type] = None) -> None:
        self._service = service
        self._own_service = own_service
        self._httpd = _ShardHTTPServer((host, port), service, quiet,
                                       handler_class)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one, after ``port=0`` resolution)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL remote clients (and specs) should use."""
        return f"http://{self.host}:{self.port}"

    @property
    def service(self) -> "PathService":
        return self._service

    def start(self) -> "ShardServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-serve-{self.port}", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's main loop)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving (idempotent); in-flight requests finish first."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd.server_close()
        if self._own_service:
            self._service.close()

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


__all__ = ["MAX_REQUEST_BYTES", "REQUEST_ID_HEADER", "ShardServer"]
