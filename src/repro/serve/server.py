"""The shard server: one warm-started :class:`PathService` over HTTP/JSON.

Stdlib only — :class:`http.server.ThreadingHTTPServer` carries the serve
wire protocol (:mod:`repro.serve.protocol`), one thread per in-flight
request, all of them sharing the process's single ``PathService`` exactly
the way a parallel batch shares it (the service's pool/executor machinery
is already thread-safe).

Endpoints (all responses are ``{"ok", "protocol", "data" | "error"}``
envelopes):

========================  =====  =============================================
``/health``               GET    liveness + hosted graphs
``/routing``              GET    the catalog manifest entries (routing slice)
``/stats``                GET    cache counters and graph list
``/metrics``              GET    Prometheus text exposition (no JSON envelope)
``/stamp``                POST   record a graph's owning shard in the manifest
``/shortest_path``        POST   one query
``/explain``              POST   plan one query without executing
``/plan_many``            POST   validate/plan a batch slice (fail-fast pass)
``/execute``              POST   execute a batch slice, stats included
``/calibrate``            POST   calibrate the planner cost model
========================  =====  =============================================

Library errors cross the wire as their :mod:`repro.errors` class name with
HTTP 400; anything unexpected is a 500.  Use :class:`ShardServer` for
embedded (in-test) serving and ``python -m repro.serve`` for a standalone
process.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import (
    DeadlineExceededError,
    RemoteProtocolError,
    ReproError,
    ServerOverloadedError,
)
from repro.obs import bind_request_id, get_logger, timer
from repro.obs.schema import (
    METRIC_HTTP_LATENCY,
    METRIC_HTTP_REQUESTS,
    METRIC_SHED,
)
from repro.serve import protocol
from repro.service.batch import execute_batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.session import PathService

MAX_REQUEST_BYTES = 64 * 1024 * 1024
"""Upper bound on one request body; a batch of a million specs fits."""

REQUEST_ID_HEADER = "X-Request-Id"
"""Correlation header: a client stamps the same id on every retry attempt
of one logical request, and the server binds it so traces and structured
log lines on both ends share it."""

SHUTDOWN_JOIN_TIMEOUT = 5.0
"""Seconds :meth:`ShardServer.close` waits for the serve thread."""

_GATED_ENDPOINTS = frozenset({"/shortest_path", "/execute"})
"""Execution endpoints subject to admission control.  Cheap control-plane
endpoints (health, routing, metrics, planning) always answer — an
operator must be able to observe an overloaded server."""

_LOG = get_logger("serve.server")


class _AdmissionGate:
    """Bounded in-flight execution with a bounded wait queue.

    At most ``max_inflight`` requests execute concurrently; up to
    ``max_queue`` more wait for a slot.  Beyond that the request is
    *shed*: :meth:`admit` raises a typed, retryable
    :class:`~repro.errors.ServerOverloadedError` whose ``retry_after``
    hint scales with the queue depth, so backed-off clients spread out
    instead of stampeding back in unison.
    """

    def __init__(self, max_inflight: int, max_queue: int,
                 retry_after: float) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self._cond = threading.Condition()
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._retry_after = retry_after
        self._inflight = 0
        self._queued = 0

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    def admit(self) -> None:
        """Take an execution slot, queueing for one if all are busy.

        Raises:
            ServerOverloadedError: the queue is full too; the error's
                ``retry_after`` tells the client how long to back off.
        """
        with self._cond:
            if self._inflight < self._max_inflight:
                self._inflight += 1
                return
            if self._queued >= self._max_queue:
                hint = self._retry_after * (1.0 + self._queued)
                raise ServerOverloadedError(
                    f"server overloaded: {self._inflight} in flight and "
                    f"{self._queued} queued; retry after {hint:.3f}s",
                    retry_after=hint,
                )
            self._queued += 1
            try:
                while self._inflight >= self._max_inflight:
                    self._cond.wait()
            finally:
                self._queued -= 1
            self._inflight += 1

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify()


class _ShardRequestHandler(BaseHTTPRequestHandler):
    """Dispatches one HTTP request against the server's PathService."""

    # The server attribute is a _ShardHTTPServer (set by ShardServer).
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        # Route through the server's quiet flag instead of stderr spam.
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------------

    def _reply(self, status: int, data: Dict[str, object]) -> None:
        body = json.dumps(data).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _ok(self, data: Dict[str, object]) -> None:
        self._reply(200, {"ok": True,
                          "protocol": protocol.PROTOCOL_VERSION,
                          "data": data})

    def _fail(self, status: int, exc: BaseException) -> None:
        self._reply(status, {"ok": False,
                             "protocol": protocol.PROTOCOL_VERSION,
                             "error": protocol.error_to_dict(exc)})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_REQUEST_BYTES:
            raise ValueError(f"request body of {length} bytes exceeds the "
                             f"{MAX_REQUEST_BYTES}-byte bound")
        raw = self.rfile.read(length) if length else b"{}"
        document = json.loads(raw.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    def _dispatch(self, handlers: Dict[str, object]) -> None:
        handler = handlers.get(self.path)
        # Known endpoints keep their own label; everything else collapses
        # onto one, so a port scan cannot explode metric cardinality.
        endpoint = self.path if handler is not None else "(unknown)"
        request_id = self.headers.get(REQUEST_ID_HEADER) or None
        self._status = 500
        with bind_request_id(request_id), timer() as took:
            if handler is None:
                self._reply(404, {
                    "ok": False,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "error": {"type": "RemoteProtocolError",
                              "message": f"unknown endpoint {self.path!r}"},
                })
            else:
                try:
                    self._ok(self._admitted(handler))
                except ServerOverloadedError as exc:
                    # Typed + retryable: 503 with the retry_after hint in
                    # the error document, counted as a shed.
                    self._service.registry.counter(
                        METRIC_SHED, {"endpoint": endpoint},
                        help="Requests shed by admission control").inc()
                    self._fail(503, exc)
                except ReproError as exc:
                    self._fail(400, exc)
                except Exception as exc:  # noqa: BLE001 - must answer, not die
                    self._fail(500, exc)
            self._observe_http(endpoint, self._status, took.seconds)

    def _admitted(self, handler: object) -> Dict[str, object]:
        """Run ``handler`` under the server's admission gate when its
        endpoint is execution-gated; control-plane endpoints bypass it."""
        gate = self.server.admission  # type: ignore[attr-defined]
        if gate is None or self.path not in _GATED_ENDPOINTS:
            return handler()  # type: ignore[operator]
        gate.admit()
        try:
            return handler()  # type: ignore[operator]
        finally:
            gate.release()

    def _observe_http(self, endpoint: str, status: int,
                      seconds: float) -> None:
        registry = self._service.registry
        registry.counter(METRIC_HTTP_REQUESTS,
                         {"endpoint": endpoint, "status": str(status)}).inc()
        registry.histogram(METRIC_HTTP_LATENCY,
                           {"endpoint": endpoint}).observe(seconds)
        _LOG.info("request served", extra={
            "endpoint": endpoint, "status": status,
            "duration_s": round(seconds, 6),
        })

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/metrics":
            # Prometheus scrapes expect the raw text exposition format,
            # not the JSON envelope — answered before JSON dispatch.
            self._handle_metrics()
            return
        self._dispatch({
            "/health": self._handle_health,
            "/routing": self._handle_routing,
            "/stats": self._handle_stats,
        })

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch({
            "/stamp": self._handle_stamp,
            "/shortest_path": self._handle_shortest_path,
            "/explain": self._handle_explain,
            "/plan_many": self._handle_plan_many,
            "/execute": self._handle_execute,
            "/calibrate": self._handle_calibrate,
        })

    # -- endpoints ---------------------------------------------------------------

    @property
    def _service(self) -> "PathService":
        return self.server.service  # type: ignore[attr-defined]

    def _handle_metrics(self) -> None:
        with timer() as took:
            body = self._service.registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        self._observe_http("/metrics", 200, took.seconds)

    def _handle_health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "shard": self._service.shard_id,
            "graphs": list(self._service.graphs()),
        }

    def _handle_routing(self) -> Dict[str, object]:
        catalog = self._service.catalog
        entries = {} if catalog is None else {
            name: entry.to_dict()
            for name, entry in catalog.entries().items()
        }
        return {"entries": entries}

    def _handle_stats(self) -> Dict[str, object]:
        return {
            "shard": self._service.shard_id,
            "graphs": list(self._service.graphs()),
            "cache": asdict(self._service.cache_info()),
        }

    def _handle_stamp(self) -> Dict[str, object]:
        body = self._read_body()
        catalog = self._service.catalog
        if catalog is None:
            raise ReproError("this shard server has no catalog to stamp")
        catalog.set_shard(str(body["graph"]), str(body["shard"]))
        return {"stamped": True}

    def _handle_shortest_path(self) -> Dict[str, object]:
        body = self._read_body()
        raw_spec = body.get("spec", {})
        if isinstance(raw_spec, dict):
            # Reject a request whose budget expired in flight BEFORE spec
            # validation: a QuerySpec cannot even express a non-positive
            # budget, and the caller must see the typed deadline error,
            # not a validation complaint about its own (once-valid) spec.
            budget = raw_spec.get("timeout_s")
            if isinstance(budget, (int, float)) and budget <= 0:
                raise DeadlineExceededError(
                    f"query budget already expired on arrival "
                    f"({float(budget) * 1000.0:.1f}ms remaining)"
                )
        spec = protocol.spec_from_dict(raw_spec)
        result = self._service.shortest_path(
            spec.source, spec.target, graph=spec.graph, method=spec.method,
            sql_style=spec.sql_style, max_iterations=spec.max_iterations,
            use_cache=bool(body.get("use_cache", True)),
            kind=spec.kind, max_hops=spec.max_hops,
            timeout_s=spec.timeout_s)
        return {"result": protocol.result_to_dict(result)}

    def _handle_explain(self) -> Dict[str, object]:
        body = self._read_body()
        spec = protocol.spec_from_dict(body.get("spec", {}))
        return {"plan": protocol.plan_to_dict(self._service.plan(spec))}

    def _handle_plan_many(self) -> Dict[str, object]:
        body = self._read_body()
        specs = protocol.specs_from_list(body.get("specs", []))
        plans = [self._service.plan(spec) for spec in specs]
        return {"plans": [protocol.plan_to_dict(plan) for plan in plans]}

    def _handle_execute(self) -> Dict[str, object]:
        body = self._read_body()
        specs = protocol.specs_from_list(body.get("specs", []))
        timeout = body.get("checkout_timeout")
        share = body.get("share_frontier", False)
        if share not in (False, True, "auto"):
            raise RemoteProtocolError(
                f"malformed share_frontier on the wire: {share!r}"
            )
        batch = execute_batch(
            self._service, specs, raise_on_unreachable=False,
            concurrency=int(body.get("concurrency", 1)),
            checkout_timeout=None if timeout is None else float(timeout),
            share_frontier=share)
        return {
            "results": protocol.results_to_list(batch.results),
            "from_cache": list(batch.from_cache),
            # Positional per-query failures (deadline expiries).  Older
            # clients simply ignore the extra field.
            "errors": protocol.errors_to_list(batch.errors),
            "stats": batch.stats.as_dict(),
        }

    def _handle_calibrate(self) -> Dict[str, object]:
        body = self._read_body()
        backend = body.get("backend")
        profiles = self._service.calibrate(
            None if backend is None else str(backend),
            persist=bool(body.get("persist", True)),
            **dict(body.get("probe_options", {})))
        return {"profiles": {name: profile.as_dict()
                             for name, profile in profiles.items()}}


class _ShardHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the PathService for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: "PathService", quiet: bool,
                 handler_class: Optional[type] = None,
                 admission: Optional[_AdmissionGate] = None) -> None:
        super().__init__(address, handler_class or _ShardRequestHandler)
        self.service = service
        self.quiet = quiet
        self.admission = admission


class ShardServer:
    """One shard server: a PathService listening on ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port` —
    this is how the tests and the smoke bench run hermetically).  The
    server does **not** own the service by default: closing the server
    stops answering but leaves the service usable in-process; pass
    ``own_service=True`` (the CLI does) to close it too.

    ``max_inflight`` turns on admission control for the execution
    endpoints (``/shortest_path`` and ``/execute``): at most that many
    requests execute at once, up to ``max_queue`` more wait, and
    everything beyond is shed with a retryable
    :class:`~repro.errors.ServerOverloadedError` carrying a
    ``retry_after`` backoff hint (``shed_retry_after`` scaled by queue
    depth).  ``None`` (the default) leaves admission unbounded — the
    pre-existing behaviour.

    Usable as a context manager::

        with ShardServer(service, port=0) as server:
            client = ShardClient(server.url)
    """

    def __init__(self, service: "PathService", host: str = "127.0.0.1",
                 port: int = 0, *, own_service: bool = False,
                 quiet: bool = True,
                 handler_class: Optional[type] = None,
                 max_inflight: Optional[int] = None,
                 max_queue: int = 16,
                 shed_retry_after: float = 0.05) -> None:
        self._service = service
        self._own_service = own_service
        admission = (None if max_inflight is None else
                     _AdmissionGate(max_inflight, max_queue,
                                    shed_retry_after))
        self._httpd = _ShardHTTPServer((host, port), service, quiet,
                                       handler_class, admission=admission)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._shutdown_stats: Optional[Dict[str, object]] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one, after ``port=0`` resolution)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL remote clients (and specs) should use."""
        return f"http://{self.host}:{self.port}"

    @property
    def service(self) -> "PathService":
        return self._service

    @property
    def admission(self) -> Optional[_AdmissionGate]:
        """The admission gate, or ``None`` when unbounded."""
        return self._httpd.admission

    @property
    def shutdown_stats(self) -> Optional[Dict[str, object]]:
        """How the last :meth:`close` went (``None`` until closed).

        Keys: ``thread_joined`` (bool — ``False`` means the serve thread
        was still alive after :data:`SHUTDOWN_JOIN_TIMEOUT` and the close
        proceeded anyway), ``join_timeout_s``, and ``join_seconds``.
        """
        return self._shutdown_stats

    def start(self) -> "ShardServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-serve-{self.port}", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's main loop)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving (idempotent); in-flight requests finish first.

        Waits :data:`SHUTDOWN_JOIN_TIMEOUT` seconds for the serve thread.
        A thread that fails to join in time (a wedged in-flight request)
        no longer passes silently: the close emits a structured warning
        and records the outcome in :attr:`shutdown_stats`.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        joined = True
        join_seconds = 0.0
        if self._thread is not None:
            started = time.monotonic()
            self._thread.join(timeout=SHUTDOWN_JOIN_TIMEOUT)
            join_seconds = time.monotonic() - started
            joined = not self._thread.is_alive()
            if not joined:
                _LOG.warning("serve thread failed to join", extra={
                    "thread": self._thread.name,
                    "join_timeout_s": SHUTDOWN_JOIN_TIMEOUT,
                    "port": self.port,
                })
        self._shutdown_stats = {
            "thread_joined": joined,
            "join_timeout_s": SHUTDOWN_JOIN_TIMEOUT,
            "join_seconds": round(join_seconds, 6),
        }
        self._httpd.server_close()
        if self._own_service:
            self._service.close()

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


__all__ = ["MAX_REQUEST_BYTES", "REQUEST_ID_HEADER",
           "SHUTDOWN_JOIN_TIMEOUT", "ShardServer"]
