"""Client-server graph store over any PEP-249 (DB-API) connection.

This is the paper's actual deployment story: the FEM operators running as
plain SQL inside an *unmodified commercial RDBMS* reached over a network
connection.  The embedded stores (:mod:`repro.core.store.sqlite`,
``minidb``) prove the algorithms; this store proves the architecture —
one generic implementation addressed by connection string::

    service.add_graph("social", graph, backend="dbapi",
                      db_path="postgresql://repro@db.example.com/graphs")
    service.add_graph("roads", graph, backend="dbapi",
                      db_path="fallback://127.0.0.1:5433/")

The scheme picks a *wire driver*: ``postgresql://`` (and ``postgres://``)
dials PostgreSQL through ``psycopg`` (see :mod:`repro.store.postgres`),
``fallback://`` dials the pure-stdlib socket server of
:mod:`repro.store.fallback_server` so tests and CI exercise the full
client-server path with zero third-party dependencies.  Everything above
the driver — statement texts, capability surface, error mapping — is
shared, so conformance results against the fallback server transfer
directly to a real PostgreSQL.

Capability surface, implemented natively rather than inherited:

* ``TVisited`` and the TSQL scratch tables are server-side ``TEMP``
  tables — connection-private on both engines — while ``TNodes`` /
  ``TEdges`` / the SegTable are shared durable relations.  That is what
  lets ``supports_concurrent_readers`` map the
  :class:`~repro.service.pool.StorePool` onto real server connections.
* :meth:`max_connections` reports the server's (or the DSN's
  ``pool_size``/``max_overflow``) connection cap so the pool can never
  exhaust the server.
* Persistence (:meth:`content_fingerprint`, :meth:`adopt_segtable`, a
  durable metadata relation recording the SegTable's ``lthd``) makes
  catalog warm starts — and even catalog-*less* adoption of a populated
  server database — rebuild nothing.
* Relocation (:meth:`export_database`) snapshots the server-side tables
  into a local SQLite file in the canonical schema, so an exported
  database opens under ``backend="sqlite"`` unchanged.
* Driver errors map onto :mod:`repro.errors`:
  :class:`~repro.errors.BackendConnectionError` (a
  :class:`~repro.errors.ShardUnavailableError`, so router failover and
  ``ShardClient`` retries treat a dead database server exactly like a
  dead shard) vs :class:`~repro.errors.BackendOperationalError` (the
  statement's fault; never retried).

Every graph store of this backend namespaces its shared relations with
the DSN's ``table_prefix`` (default ``repro_``), so several stores — and
every calibration probe, via :meth:`calibration_path` — can share one
server database without touching each other.
"""

from __future__ import annotations

import sqlite3
import uuid
from typing import (Any, Callable, Dict, Hashable, List, Optional, Sequence,
                    Tuple)
from urllib.parse import parse_qs, urlencode, urlsplit, urlunsplit

from repro.core.directions import Direction, INFINITY
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import OPERATOR_E, OPERATOR_F, OPERATOR_M
from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.registry import is_dsn, register_backend
from repro.errors import (
    BackendConnectionError,
    BackendOperationalError,
    InvalidDSNError,
    InvalidQueryError,
    PersistenceUnsupportedError,
)
from repro.graph.fingerprint import fingerprint_content
from repro.graph.model import Graph
from repro.store import fallback_server

_INF = INFINITY

DEFAULT_TABLE_PREFIX = "repro_"

# Memoized statement shapes, as in the SQLite store: one text, or the
# TSQL (create, update, insert) triple.
_SQLText = Any


# ---------------------------------------------------------------------------
# DSN
# ---------------------------------------------------------------------------

class ParsedDSN:
    """A connection string split into driver address + repro options.

    The repro-specific query parameters (``table_prefix``, ``pool_size``,
    ``max_overflow``) are stripped from :attr:`driver_dsn`, which is what
    the wire driver actually dials.
    """

    REPRO_PARAMS = ("table_prefix", "pool_size", "max_overflow")

    def __init__(self, dsn: str) -> None:
        if not is_dsn(dsn):
            raise InvalidDSNError(
                f"{dsn!r} is not a connection string; the dbapi backend is "
                f"addressed by DSN (e.g. postgresql://user@host/db or "
                f"fallback://127.0.0.1:5433/)"
            )
        self.dsn = dsn
        parts = urlsplit(dsn)
        self.scheme = parts.scheme.lower()
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port
        query = parse_qs(parts.query, keep_blank_values=True)
        self.table_prefix = query.get("table_prefix",
                                      [DEFAULT_TABLE_PREFIX])[0]
        if not self._valid_identifier(self.table_prefix):
            raise InvalidDSNError(
                f"table_prefix {self.table_prefix!r} is not a plain SQL "
                f"identifier prefix ([A-Za-z_][A-Za-z0-9_]*)"
            )
        try:
            pool_size = query.get("pool_size", [None])[0]
            overflow = query.get("max_overflow", ["0"])[0]
            self.pool_size = None if pool_size is None else int(pool_size)
            self.max_overflow = int(overflow)
        except ValueError as exc:
            raise InvalidDSNError(
                f"pool_size/max_overflow in {dsn!r} must be integers"
            ) from exc
        if self.pool_size is not None and self.pool_size < 1:
            raise InvalidDSNError("pool_size must be >= 1")
        stripped = {key: values for key, values in query.items()
                    if key not in self.REPRO_PARAMS}
        self.driver_dsn = urlunsplit(parts._replace(
            query=urlencode(stripped, doseq=True)))

    @staticmethod
    def _valid_identifier(prefix: str) -> bool:
        return bool(prefix) and prefix.isidentifier() and prefix.isascii()

    def connection_limit(self) -> Optional[int]:
        """The DSN-declared handle cap (``pool_size + max_overflow``), or
        ``None`` when the DSN does not declare one."""
        if self.pool_size is None:
            return None
        return self.pool_size + self.max_overflow

    def with_table_prefix(self, prefix: str) -> str:
        """This DSN with its ``table_prefix`` replaced by ``prefix``."""
        parts = urlsplit(self.dsn)
        query = parse_qs(parts.query, keep_blank_values=True)
        query["table_prefix"] = [prefix]
        return urlunsplit(parts._replace(query=urlencode(query, doseq=True)))


# ---------------------------------------------------------------------------
# Dialects and wire drivers
# ---------------------------------------------------------------------------

class Dialect:
    """The (small) SQL surface where PostgreSQL and SQLite differ.

    Everything else — window functions, ``INSERT ... ON CONFLICT DO
    UPDATE``, correlated updates, ``CREATE TEMP TABLE`` — is written once
    in portable form; derived tables always carry an ``AS`` alias because
    PostgreSQL requires one.
    """

    def __init__(self, name: str, placeholder: str,
                 table_exists_sql: str) -> None:
        self.name = name
        self.placeholder = placeholder
        self.table_exists_sql = table_exists_sql


SQLITE_DIALECT = Dialect(
    name="sqlite",
    placeholder="?",
    table_exists_sql=("SELECT count(*) FROM sqlite_master "
                      "WHERE type='table' AND name = ?"),
)

POSTGRES_DIALECT = Dialect(
    name="postgres",
    placeholder="%s",
    table_exists_sql=("SELECT count(*) FROM information_schema.tables "
                      "WHERE table_schema = current_schema() "
                      "AND table_name = %s"),
)


class WireDriver:
    """What a scheme resolves to: how to open PEP-249 connections, which
    dialect they speak, and which driver exceptions mean *transport* vs
    *statement* failure."""

    dialect: Dialect = SQLITE_DIALECT
    connection_exceptions: Tuple[type, ...] = ()
    programming_exceptions: Tuple[type, ...] = ()

    def connect(self) -> Any:
        raise NotImplementedError

    def server_limit(self, connection: Any) -> Optional[int]:
        """The server-advertised connection cap, when discoverable."""
        return None

    def describe(self) -> str:
        return type(self).__name__


class FallbackDriver(WireDriver):
    """Driver for ``fallback://host:port/`` — the stdlib wire server."""

    dialect = SQLITE_DIALECT
    connection_exceptions = (fallback_server.InterfaceError,
                             fallback_server.OperationalError,
                             ConnectionError, OSError)
    programming_exceptions = (fallback_server.ProgrammingError,)

    def __init__(self, parsed: ParsedDSN) -> None:
        self.host = parsed.host
        self.port = parsed.port or 5433

    def connect(self) -> fallback_server.FallbackConnection:
        return fallback_server.connect(self.host, self.port)

    def server_limit(self,
                     connection: fallback_server.FallbackConnection
                     ) -> Optional[int]:
        return connection.server_max_connections

    def describe(self) -> str:
        return f"fallback server at {self.host}:{self.port}"


_DRIVER_BUILDERS: Dict[str, Callable[[ParsedDSN], WireDriver]] = {}


def register_driver(scheme: str,
                    builder: Callable[[ParsedDSN], WireDriver]) -> None:
    """Map a DSN ``scheme`` to a wire-driver builder.

    :mod:`repro.store.postgres` registers ``postgresql``/``postgres``
    through this at import time; third-party engines can do the same.
    """
    _DRIVER_BUILDERS[scheme.lower()] = builder


register_driver("fallback", FallbackDriver)


def driver_for(parsed: ParsedDSN) -> WireDriver:
    """Build the wire driver a parsed DSN's scheme maps to."""
    builder = _DRIVER_BUILDERS.get(parsed.scheme)
    if builder is None:
        known = tuple(sorted(_DRIVER_BUILDERS))
        raise InvalidDSNError(
            f"no driver for DSN scheme {parsed.scheme!r}; known schemes: "
            f"{known}"
        )
    return builder(parsed)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class DBAPIGraphStore(GraphStore):
    """Graph store speaking PEP-249 to a client-server database.

    Shared relations are prefix-namespaced lower-case tables on the
    server (``{prefix}tnodes``, ``{prefix}tedges``, ``{prefix}toutsegs``,
    ``{prefix}tinsegs``, plus ``{prefix}meta`` recording the SegTable's
    ``lthd`` durably); per-query state (``tvisited``, TSQL scratch) lives
    in server-side ``TEMP`` tables, private to this store's connection.
    :meth:`clone` therefore just opens another server connection — no
    data movement — which is what makes pooled parallel batches real
    concurrent sessions against the same server database.
    """

    backend_name = "dbapi"
    supports_concurrent_readers = True

    def __init__(self, dsn: str, parsed: Optional[ParsedDSN] = None,
                 driver: Optional[WireDriver] = None) -> None:
        super().__init__()
        self.path = dsn
        self.parsed = parsed or ParsedDSN(dsn)
        self.driver = driver or driver_for(self.parsed)
        self.dialect = self.driver.dialect
        self._p = self.dialect.placeholder
        self.index_mode = IndexMode.CLUSTERED
        prefix = self.parsed.table_prefix
        self._tnodes = f"{prefix}tnodes"
        self._tedges = f"{prefix}tedges"
        self._toutsegs = f"{prefix}toutsegs"
        self._tinsegs = f"{prefix}tinsegs"
        self._meta = f"{prefix}meta"
        self._sql_cache: Dict[Tuple[Hashable, ...], _SQLText] = {}
        self._server_limit: Optional[int] = None
        self._closed = False
        try:
            self.connection = self.driver.connect()
        except self.driver.connection_exceptions as exc:
            raise BackendConnectionError(
                f"cannot connect to {self.driver.describe()}: {exc}"
            ) from exc
        self._server_limit = self.driver.server_limit(self.connection)
        self._create_visited_table()

    # -------------------------------------------------------------- execution

    def _run(self, sql: str, parameters: Sequence[object] = (),
             many: bool = False) -> Any:
        """Execute one statement, mapping driver errors onto the repro
        hierarchy: transport failures are retryable
        :class:`BackendConnectionError`, statement rejections are
        :class:`BackendOperationalError`."""
        try:
            cursor = self.connection.cursor()
            if many:
                cursor.executemany(sql, parameters)
            else:
                cursor.execute(sql, tuple(parameters))
            return cursor
        except self.driver.programming_exceptions as exc:
            raise BackendOperationalError(
                f"{self.driver.describe()} rejected a statement: {exc}"
            ) from exc
        except self.driver.connection_exceptions as exc:
            raise BackendConnectionError(
                f"lost connection to {self.driver.describe()}: {exc}"
            ) from exc

    def _execute(self, sql: str, parameters: Sequence[object] = ()) -> Any:
        self.stats.record_statement()
        return self._run(sql, parameters)

    def _execute_unlogged(self, sql: str,
                          parameters: Sequence[object] = ()) -> Any:
        return self._run(sql, parameters)

    def _scalar(self, cursor: Any) -> Any:
        row = cursor.fetchone()
        return None if row is None else row[0]

    def _commit(self) -> None:
        try:
            self.connection.commit()
        except self.driver.connection_exceptions as exc:
            raise BackendConnectionError(
                f"lost connection to {self.driver.describe()}: {exc}"
            ) from exc

    def _cached_sql(self, key: Tuple[Hashable, ...],
                    build: Callable[[], _SQLText]) -> _SQLText:
        cached = self._sql_cache.get(key)
        if cached is None:
            cached = build()
            self._sql_cache[key] = cached
        return cached

    def _table_exists(self, name: str) -> bool:
        cursor = self._run(self.dialect.table_exists_sql, (name,))
        return bool(self._scalar(cursor))

    def _seg_relation(self, direction: Direction) -> str:
        return self._toutsegs if direction.is_forward else self._tinsegs

    def _work_relation(self, direction: Direction) -> str:
        return self._seg_relation(direction) + "work"

    # ----------------------------------------------------------- capabilities

    def max_connections(self) -> Optional[int]:
        """Tightest of the DSN's declared ``pool_size + max_overflow`` and
        the server's own connection cap (the fallback server's hello
        frame; PostgreSQL's ``max_connections`` setting)."""
        bounds = [bound for bound in (self.parsed.connection_limit(),
                                      self._server_limit)
                  if bound is not None]
        return min(bounds) if bounds else None

    def supports_clone(self) -> bool:
        """Cloning is always available: the data lives on the server, so
        a clone is just one more connection."""
        return True

    def clone(self) -> "DBAPIGraphStore":
        """Open a fresh server connection over the same DSN.

        The clone sees the shared (committed) graph and SegTable
        relations and gets its own private ``tvisited`` temp table.
        """
        replica = DBAPIGraphStore(self.path, parsed=self.parsed,
                                  driver=driver_for(self.parsed))
        replica.index_mode = self.index_mode
        replica.has_segtable = self.has_segtable
        replica.segtable_lthd = self.segtable_lthd
        return replica

    def quiesce(self) -> None:
        """Commit the (possibly implicit) transaction so an idle pooled
        connection holds no server-side locks."""
        self._commit()

    def calibration_path(self) -> Optional[str]:
        """A DSN against the *same server* under a fresh probe prefix.

        Calibration constants are properties of the server, so probes
        must run there — but never in the hosted tables' namespace, and
        two concurrent probes must not collide, hence a unique prefix
        per call.  Probe stores are ``destroy()``-ed after measuring,
        which drops the prefixed tables again.
        """
        return self.parsed.with_table_prefix(f"calib{uuid.uuid4().hex[:8]}_")

    # ----------------------------------------------------------- persistence

    def supports_persistence(self) -> bool:
        """Server-side tables survive this client process by definition."""
        return True

    def has_persistent_tables(self) -> bool:
        return (self._table_exists(self._tnodes)
                and self._table_exists(self._tedges))

    def has_persistent_segtable(self) -> bool:
        return (self._table_exists(self._toutsegs)
                and self._table_exists(self._tinsegs))

    def adopt_segtable(self, lthd: float) -> None:
        if not self.has_persistent_segtable():
            raise PersistenceUnsupportedError(
                f"{self.path!r} holds no {self._toutsegs}/{self._tinsegs} "
                f"tables to adopt; build the SegTable before cataloging it"
            )
        self.has_segtable = True
        self.segtable_lthd = lthd

    def persistent_segtable_lthd(self) -> Optional[float]:
        """The durably recorded ``lthd`` (written by :meth:`seg_finish` /
        :meth:`load_segtable` into the metadata relation), enabling
        catalog-less adoption of a populated server database."""
        if not self._table_exists(self._meta):
            return None
        cursor = self._run(
            f"SELECT meta_value FROM {self._meta} "
            f"WHERE meta_key = {self._p}", ("segtable_lthd",))
        value = self._scalar(cursor)
        return None if value is None else float(value)

    def export_graph(self) -> Graph:
        self._require_persistent_tables()
        graph = Graph(directed=True)
        for (nid,) in self._run(
                f"SELECT nid FROM {self._tnodes}").fetchall():
            graph.add_node(int(nid))
        for fid, tid, cost in self._run(
                f"SELECT fid, tid, cost FROM {self._tedges}").fetchall():
            graph.add_edge(int(fid), int(tid), float(cost))
        return graph

    def content_fingerprint(self) -> str:
        self._require_persistent_tables()
        nodes = [int(row[0]) for row in self._run(
            f"SELECT nid FROM {self._tnodes}").fetchall()]
        edges = self._run(
            f"SELECT fid, tid, cost FROM {self._tedges}").fetchall()
        return fingerprint_content(nodes, edges)

    def supports_relocation(self) -> bool:
        """The server tables can be snapshotted into a local SQLite file
        (the portable interchange format of :meth:`export_database`)."""
        return True

    def export_database(self, dest_path: str) -> None:
        """Snapshot the graph (and any SegTable) into a local SQLite file
        in the *canonical* schema — ``TNodes``/``TEdges``/``TOutSegs``/
        ``TInSegs`` — so the export opens directly under
        ``backend="sqlite"`` and warm-attaches without any rebuild.  The
        client-server analogue of a ``pg_dump``: shard rebalancing uses
        it to ship a graph off the server onto file-backed storage.
        """
        self._require_persistent_tables()
        self._commit()  # snapshot committed state only
        nodes = self._run(f"SELECT nid FROM {self._tnodes}").fetchall()
        edges = self._run(
            f"SELECT fid, tid, cost FROM {self._tedges}").fetchall()
        dest = sqlite3.connect(dest_path)
        try:
            dest.execute("DROP TABLE IF EXISTS TNodes")
            dest.execute("DROP TABLE IF EXISTS TEdges")
            dest.execute("CREATE TABLE TNodes (nid INTEGER PRIMARY KEY)")
            dest.execute(
                "CREATE TABLE TEdges (fid INTEGER, tid INTEGER, cost REAL)")
            dest.executemany("INSERT INTO TNodes (nid) VALUES (?)",
                             [(int(row[0]),) for row in nodes])
            dest.executemany(
                "INSERT INTO TEdges (fid, tid, cost) VALUES (?, ?, ?)",
                [(int(fid), int(tid), float(cost))
                 for fid, tid, cost in edges])
            if self.index_mode != IndexMode.NONE:
                dest.execute("CREATE INDEX ix_tedges_fid ON TEdges (fid)")
                dest.execute("CREATE INDEX ix_tedges_tid ON TEdges (tid)")
            if self.has_persistent_segtable():
                for source, name in ((self._toutsegs, "TOutSegs"),
                                     (self._tinsegs, "TInSegs")):
                    rows = self._run(
                        f"SELECT fid, tid, pid, cost FROM {source}"
                    ).fetchall()
                    dest.execute(f"DROP TABLE IF EXISTS {name}")
                    dest.execute(
                        f"CREATE TABLE {name} (fid INTEGER, tid INTEGER, "
                        f"pid INTEGER, cost REAL)")
                    dest.executemany(
                        f"INSERT INTO {name} (fid, tid, pid, cost) "
                        f"VALUES (?, ?, ?, ?)",
                        [(int(fid), int(tid),
                          None if pid is None else int(pid), float(cost))
                         for fid, tid, pid, cost in rows])
                    if self.index_mode != IndexMode.NONE:
                        dest.execute(
                            f"CREATE INDEX ix_{name.lower()}_fid "
                            f"ON {name} (fid)")
            dest.commit()
        finally:
            dest.close()

    def _require_persistent_tables(self) -> None:
        if not self.has_persistent_tables():
            raise PersistenceUnsupportedError(
                f"{self.path!r} holds no {self._tnodes}/{self._tedges} "
                f"tables; it is not a loaded graph database"
            )

    # -------------------------------------------------------------- lifecycle

    def load_graph(self, graph: Graph,
                   index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create and populate the prefixed ``tnodes`` / ``tedges``."""
        self.index_mode = IndexMode.validate(index_mode)
        p = self._p
        self._execute_unlogged(f"DROP TABLE IF EXISTS {self._tnodes}")
        self._execute_unlogged(f"DROP TABLE IF EXISTS {self._tedges}")
        self._execute_unlogged(
            f"CREATE TABLE {self._tnodes} (nid BIGINT PRIMARY KEY)")
        self._execute_unlogged(
            f"CREATE TABLE {self._tedges} "
            f"(fid BIGINT, tid BIGINT, cost DOUBLE PRECISION)")
        node_rows = [(nid,) for nid in sorted(graph.nodes())]
        if node_rows:
            self._run(f"INSERT INTO {self._tnodes} (nid) VALUES ({p})",
                      node_rows, many=True)
        edge_rows = [(edge.fid, edge.tid, edge.cost)
                     for edge in graph.edges()]
        if edge_rows:
            self._run(
                f"INSERT INTO {self._tedges} (fid, tid, cost) "
                f"VALUES ({p}, {p}, {p})", edge_rows, many=True)
        if self.index_mode != IndexMode.NONE:
            self._execute_unlogged(
                f"CREATE INDEX ix_{self._tedges}_fid ON {self._tedges} (fid)")
            self._execute_unlogged(
                f"CREATE INDEX ix_{self._tedges}_tid ON {self._tedges} (tid)")
        self._ensure_meta_table()
        self._create_visited_table()
        self._commit()

    def _ensure_meta_table(self) -> None:
        self._execute_unlogged(
            f"CREATE TABLE IF NOT EXISTS {self._meta} "
            f"(meta_key TEXT PRIMARY KEY, meta_value TEXT)")

    def _record_meta(self, key: str, value: str) -> None:
        self._ensure_meta_table()
        p = self._p
        self._execute_unlogged(
            f"INSERT INTO {self._meta} (meta_key, meta_value) "
            f"VALUES ({p}, {p}) "
            f"ON CONFLICT (meta_key) DO UPDATE SET "
            f"meta_value = excluded.meta_value",
            (key, value))

    def _create_visited_table(self) -> None:
        # Server-side TEMP: session-private on PostgreSQL, connection-
        # private on the fallback server's SQLite — either way, pooled
        # clones over one database never see each other's search state.
        self._execute_unlogged(
            """
            CREATE TEMP TABLE IF NOT EXISTS tvisited (
                nid BIGINT PRIMARY KEY,
                d2s DOUBLE PRECISION, p2s BIGINT, f INTEGER,
                d2t DOUBLE PRECISION, p2t BIGINT, b INTEGER
            )
            """
        )

    def load_segtable(self, out_segments: Sequence[Dict[str, object]],
                      in_segments: Sequence[Dict[str, object]],
                      lthd: float,
                      index_mode: str = IndexMode.CLUSTERED) -> None:
        index_mode = IndexMode.validate(index_mode)
        p = self._p
        for name, rows in ((self._toutsegs, out_segments),
                           (self._tinsegs, in_segments)):
            self._execute_unlogged(f"DROP TABLE IF EXISTS {name}")
            self._execute_unlogged(
                f"CREATE TABLE {name} (fid BIGINT, tid BIGINT, pid BIGINT, "
                f"cost DOUBLE PRECISION)")
            seg_rows = [(row["fid"], row["tid"], row["pid"], row["cost"])
                        for row in rows]
            if seg_rows:
                self._run(
                    f"INSERT INTO {name} (fid, tid, pid, cost) "
                    f"VALUES ({p}, {p}, {p}, {p})", seg_rows, many=True)
            if index_mode != IndexMode.NONE:
                self._execute_unlogged(
                    f"CREATE INDEX ix_{name}_fid ON {name} (fid)")
        self._record_meta("segtable_lthd", repr(float(lthd)))
        self._commit()
        self.has_segtable = True
        self.segtable_lthd = lthd

    def segment_counts(self) -> Dict[str, int]:
        counts = {"out": 0, "in": 0}
        for key, name in (("out", self._toutsegs), ("in", self._tinsegs)):
            if self._table_exists(name):
                counts[key] = int(self._scalar(self._run(
                    f"SELECT count(*) FROM {name}")))
        return counts

    def close(self) -> None:
        """Close the server connection (temp state dies with the session;
        shared tables stay on the server)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.connection.close()
        except self.driver.connection_exceptions:
            pass  # server already gone; nothing left to release

    def destroy(self) -> None:
        """Drop this store's prefixed server tables, then close.

        This is the cleanup path for calibration probes and test
        fixtures sharing one server database: it removes exactly this
        prefix's namespace and nothing else.
        """
        try:
            for name in (self._tnodes, self._tedges, self._toutsegs,
                         self._tinsegs, self._toutsegs + "work",
                         self._tinsegs + "work", self._meta):
                self._execute_unlogged(f"DROP TABLE IF EXISTS {name}")
            self._commit()
        except BackendConnectionError:
            pass  # the server died first; its tables are its problem
        finally:
            self.close()

    # ---------------------------------------------------------- TVisited setup

    def reset_visited(self) -> None:
        self._create_visited_table()
        self._execute_unlogged("DELETE FROM tvisited")

    def insert_visited(self, rows: Sequence[Dict[str, object]]) -> None:
        self.stats.record_statement()
        p = self._p
        self._run(
            f"INSERT INTO tvisited (nid, d2s, p2s, f, d2t, p2t, b) "
            f"VALUES ({p}, {p}, {p}, {p}, {p}, {p}, {p})",
            [
                (row["nid"], row.get("d2s", _INF), row.get("p2s"),
                 row.get("f", 0), row.get("d2t", _INF), row.get("p2t"),
                 row.get("b", 0))
                for row in rows
            ],
            many=True,
        )

    # ---------------------------------------------------- statistics statements

    def top1_min_unfinalized(self, direction: Direction) -> Optional[int]:
        sql = self._cached_sql(("top1", direction.is_forward), lambda: (
            f"SELECT nid FROM tvisited WHERE {direction.flag_col} = 0 AND "
            f"{direction.dist_col} < {self._p} "
            f"ORDER BY {direction.dist_col} LIMIT 1"
        ))
        value = self._scalar(self._execute(sql, (_INF,)))
        return None if value is None else int(value)

    def min_unfinalized_distance(self, direction: Direction) -> Optional[float]:
        sql = self._cached_sql(("min_unfin", direction.is_forward), lambda: (
            f"SELECT min({direction.dist_col}) FROM tvisited "
            f"WHERE {direction.flag_col} = 0"
        ))
        value = self._scalar(self._execute(sql))
        if value is None or value >= _INF:
            return None
        return float(value)

    def count_unfinalized(self, direction: Direction) -> int:
        sql = self._cached_sql(("count_unfin", direction.is_forward), lambda: (
            f"SELECT count(*) FROM tvisited WHERE {direction.flag_col} = 0 "
            f"AND {direction.dist_col} < {self._p}"
        ))
        return int(self._scalar(self._execute(sql, (_INF,))))

    def min_total_cost(self) -> float:
        value = self._scalar(self._execute(
            "SELECT min(d2s + d2t) FROM tvisited"))
        return INFINITY if value is None else float(value)

    def meeting_node(self, min_cost: float) -> Optional[int]:
        sql = self._cached_sql(("meeting",), lambda: (
            f"SELECT nid FROM tvisited "
            f"WHERE abs(d2s + d2t - {self._p}) < 1e-9 LIMIT 1"
        ))
        value = self._scalar(self._execute(sql, (min_cost,)))
        return None if value is None else int(value)

    def is_finalized(self, nid: int, direction: Direction) -> bool:
        sql = self._cached_sql(("is_final", direction.is_forward), lambda: (
            f"SELECT 1 FROM tvisited WHERE nid = {self._p} AND "
            f"{direction.flag_col} = 1"
        ))
        return self._execute(sql, (nid,)).fetchone() is not None

    def visited_count(self) -> int:
        return int(self._scalar(self._execute_unlogged(
            "SELECT count(*) FROM tvisited")))

    def visited_rows(self) -> List[Dict[str, object]]:
        columns = ["nid", "d2s", "p2s", "f", "d2t", "p2t", "b"]
        rows = self._execute_unlogged(
            "SELECT nid, d2s, p2s, f, d2t, p2t, b FROM tvisited").fetchall()
        return [dict(zip(columns, row)) for row in rows]

    # ---------------------------------------------------- F-operator statements

    def finalize_node(self, nid: int, direction: Direction) -> None:
        sql = self._cached_sql(("final_node", direction.is_forward), lambda: (
            f"UPDATE tvisited SET {direction.flag_col} = 1 "
            f"WHERE nid = {self._p}"
        ))
        with self.stats.operator(OPERATOR_F):
            self._execute(sql, (nid,))

    def select_frontier_set(self, direction: Direction,
                            max_distance: float) -> int:
        def build() -> str:
            dist, flag = direction.dist_col, direction.flag_col
            p = self._p
            return f"""
                UPDATE tvisited SET {flag} = 2
                WHERE {flag} = 0 AND {dist} < {p}
                  AND ({dist} <= {p} OR {dist} = (
                        SELECT min(inner_v.{dist}) FROM tvisited inner_v
                        WHERE inner_v.{flag} = 0))
            """
        sql = self._cached_sql(("sel_frontier", direction.is_forward), build)
        with self.stats.operator(OPERATOR_F):
            cursor = self._execute(sql, (_INF, max_distance))
            return max(0, cursor.rowcount)

    def finalize_frontier(self, direction: Direction) -> int:
        sql = self._cached_sql(("final_frontier", direction.is_forward),
                               lambda: (f"UPDATE tvisited SET "
                                        f"{direction.flag_col} = 1 WHERE "
                                        f"{direction.flag_col} = 2"))
        with self.stats.operator(OPERATOR_F):
            cursor = self._execute(sql)
            return max(0, cursor.rowcount)

    # ------------------------------------------------------------ E+M operators

    def expand(self, direction: Direction, mid: Optional[int] = None,
               use_segtable: bool = False,
               prune_lb: Optional[float] = None,
               prune_min_cost: Optional[float] = None) -> int:
        if use_segtable and not self.has_segtable:
            raise InvalidQueryError(
                "SegTable expansion requested but no SegTable loaded")
        node_mode = mid is not None
        pruned = prune_lb is not None and prune_min_cost is not None
        parameters: List[object] = []
        if node_mode:
            parameters.append(mid)
        parameters.append(_INF)
        if pruned:
            parameters.extend([prune_lb, prune_min_cost])
        style = validate_sql_style(self.sql_style)
        shape = (direction.is_forward, node_mode, use_segtable, pruned)
        if style == NSQL:
            affected = self._expand_nsql(direction, shape, parameters)
        else:
            affected = self._expand_tsql(direction, shape, parameters)
        self.stats.affected_rows += affected
        return affected

    def _candidate_sql_text(self, direction: Direction, node_mode: bool,
                            use_segtable: bool, pruned: bool) -> str:
        """The inner SELECT producing (nid, cost, pred) candidates.

        Parameter slots, in order: ``[mid?] [inf] [prune_lb prune_min]?``.
        """
        dist, flag = direction.dist_col, direction.flag_col
        p = self._p
        if use_segtable:
            relation, key_col, other_col = (
                self._seg_relation(direction), "fid", "tid")
            pred_expr = "e.pid"
        else:
            relation = self._tedges
            key_col, other_col = direction.edge_key, direction.edge_other
            pred_expr = "q.nid"
        frontier_clause = f"q.nid = {p}" if node_mode else f"q.{flag} = 2"
        prune_clause = (f"AND q.{dist} + e.cost + {p} <= {p}"
                        if pruned else "")
        return f"""
            SELECT e.{other_col} AS nid, q.{dist} + e.cost AS cost,
                   {pred_expr} AS pred
            FROM tvisited q JOIN {relation} e ON q.nid = e.{key_col}
            WHERE {frontier_clause} AND q.{dist} < {p} {prune_clause}
        """

    def _expand_nsql(self, direction: Direction,
                     shape: Tuple[Hashable, ...],
                     parameters: List[object]) -> int:
        """Window-function dedup + upsert, with the ``AS`` aliases
        PostgreSQL requires on derived tables."""
        def build() -> str:
            candidate_sql = self._candidate_sql_text(direction, *shape[1:])
            dist, pred, flag = (direction.dist_col, direction.pred_col,
                                direction.flag_col)
            other_dist = "d2t" if direction.is_forward else "d2s"
            other_pred = "p2t" if direction.is_forward else "p2s"
            other_flag = "b" if direction.is_forward else "f"
            return f"""
                INSERT INTO tvisited (nid, {dist}, {pred}, {flag},
                                      {other_dist}, {other_pred}, {other_flag})
                SELECT nid, cost, pred, 0, {self._p}, NULL, 0 FROM (
                    SELECT nid, cost, pred,
                           row_number() OVER (PARTITION BY nid ORDER BY cost)
                               AS rownum
                    FROM ({candidate_sql}) AS cand
                ) AS ranked WHERE rownum = 1
                ON CONFLICT (nid) DO UPDATE SET
                    {dist} = excluded.{dist},
                    {pred} = excluded.{pred},
                    {flag} = 0
                WHERE tvisited.{dist} > excluded.{dist}
            """

        sql = self._cached_sql(("expand", NSQL) + shape, build)
        with self.stats.operator(OPERATOR_E):
            cursor = self._execute(sql, [_INF] + parameters)
            return max(0, cursor.rowcount)

    def _expand_tsql(self, direction: Direction,
                     shape: Tuple[Hashable, ...],
                     parameters: List[object]) -> int:
        """GROUP BY dedup into a temp table, then UPDATE + INSERT."""
        def build() -> Tuple[str, str, str]:
            candidate_sql = self._candidate_sql_text(direction, *shape[1:])
            dist, pred, flag = (direction.dist_col, direction.pred_col,
                                direction.flag_col)
            other_dist = "d2t" if direction.is_forward else "d2s"
            other_pred = "p2t" if direction.is_forward else "p2s"
            other_flag = "b" if direction.is_forward else "f"
            create = f"""
                CREATE TEMP TABLE tmp_expanded AS
                SELECT cand.nid AS nid, cand.cost AS cost,
                       min(cand.pred) AS pred
                FROM ({candidate_sql}) AS cand
                JOIN (
                    SELECT nid, min(cost) AS mincost
                    FROM ({candidate_sql}) AS inner_cand
                    GROUP BY nid
                ) AS agg ON cand.nid = agg.nid AND cand.cost = agg.mincost
                GROUP BY cand.nid, cand.cost
            """
            update = f"""
                UPDATE tvisited SET
                    {dist} = (SELECT cost FROM tmp_expanded t
                              WHERE t.nid = tvisited.nid),
                    {pred} = (SELECT pred FROM tmp_expanded t
                              WHERE t.nid = tvisited.nid),
                    {flag} = 0
                WHERE EXISTS (SELECT 1 FROM tmp_expanded t
                              WHERE t.nid = tvisited.nid
                                AND t.cost < tvisited.{dist})
            """
            insert = f"""
                INSERT INTO tvisited (nid, {dist}, {pred}, {flag},
                                      {other_dist}, {other_pred}, {other_flag})
                SELECT nid, cost, pred, 0, {self._p}, NULL, 0
                FROM tmp_expanded t
                WHERE NOT EXISTS (SELECT 1 FROM tvisited v
                                  WHERE v.nid = t.nid)
            """
            return create, update, insert

        create, update, insert = self._cached_sql(("expand", "tsql") + shape,
                                                  build)
        with self.stats.operator(OPERATOR_E):
            self._execute_unlogged("DROP TABLE IF EXISTS tmp_expanded")
            self._execute(create, parameters + parameters)
        with self.stats.operator(OPERATOR_M):
            updated = max(0, self._execute(update).rowcount)
            inserted = max(0, self._execute(insert, (_INF,)).rowcount)
            self._execute_unlogged("DROP TABLE IF EXISTS tmp_expanded")
        return updated + inserted

    def expand_hops(self, direction: Direction) -> int:
        """Hop-counting E/M: insert-only frontier expansion, ties on the
        predecessor broken to ``min(frontier nid)`` so the recovered
        witness path is deterministic (and bit-identical to the embedded
        backends')."""
        def build() -> str:
            dist, pred, flag = (direction.dist_col, direction.pred_col,
                                direction.flag_col)
            other_dist = "d2t" if direction.is_forward else "d2s"
            other_pred = "p2t" if direction.is_forward else "p2s"
            other_flag = "b" if direction.is_forward else "f"
            key_col, other_col = direction.edge_key, direction.edge_other
            return f"""
                INSERT INTO tvisited (nid, {dist}, {pred}, {flag},
                                      {other_dist}, {other_pred}, {other_flag})
                SELECT e.{other_col}, min(q.{dist}) + 1, min(q.nid), 0,
                       {self._p}, NULL, 0
                FROM tvisited q JOIN {self._tedges} e ON q.nid = e.{key_col}
                WHERE q.{flag} = 2
                  AND NOT EXISTS (SELECT 1 FROM tvisited v
                                  WHERE v.nid = e.{other_col})
                GROUP BY e.{other_col}
            """

        sql = self._cached_sql(("expand_hops", direction.is_forward), build)
        with self.stats.operator(OPERATOR_E):
            cursor = self._execute(sql, (_INF,))
            affected = max(0, cursor.rowcount)
        self.stats.affected_rows += affected
        return affected

    # ------------------------------------------------------------ path recovery

    def get_link(self, nid: int, direction: Direction) -> Optional[int]:
        sql = self._cached_sql(("get_link", direction.is_forward), lambda: (
            f"SELECT {direction.pred_col} FROM tvisited "
            f"WHERE nid = {self._p}"
        ))
        row = self._execute(sql, (nid,)).fetchone()
        if row is None or row[0] is None:
            return None
        return int(row[0])

    def get_distance(self, nid: int, direction: Direction) -> Optional[float]:
        sql = self._cached_sql(("get_dist", direction.is_forward), lambda: (
            f"SELECT {direction.dist_col} FROM tvisited "
            f"WHERE nid = {self._p}"
        ))
        row = self._execute(sql, (nid,)).fetchone()
        if row is None or row[0] is None or row[0] >= _INF:
            return None
        return float(row[0])

    # --------------------------------------------------- SegTable construction

    def seg_init(self, direction: Direction) -> int:
        name = self._work_relation(direction)
        fid_col, tid_col = (
            ("fid", "tid") if direction.is_forward else ("tid", "fid"))
        self._execute_unlogged(f"DROP TABLE IF EXISTS {name}")
        self._execute(
            f"""
            CREATE TABLE {name} AS
            SELECT {fid_col} AS fid, {tid_col} AS tid, {fid_col} AS pid,
                   min(cost) AS cost, 0 AS f
            FROM {self._tedges}
            WHERE {fid_col} != {tid_col}
            GROUP BY {fid_col}, {tid_col}
            """
        )
        self._execute_unlogged(
            f"CREATE UNIQUE INDEX ix_{name}_pair ON {name} (fid, tid)")
        return int(self._scalar(self._execute_unlogged(
            f"SELECT count(*) FROM {name}")))

    def seg_min_unexpanded(self, direction: Direction) -> Optional[float]:
        name = self._work_relation(direction)
        value = self._scalar(self._execute(
            f"SELECT min(cost) FROM {name} WHERE f = 0"))
        return None if value is None else float(value)

    def seg_select_frontier(self, direction: Direction,
                            max_cost: float) -> int:
        name = self._work_relation(direction)
        cursor = self._execute(
            f"""
            UPDATE {name} SET f = 2
            WHERE f = 0 AND (cost <= {self._p} OR cost = (
                SELECT min(inner_s.cost) FROM {name} inner_s
                WHERE inner_s.f = 0))
            """,
            (max_cost,),
        )
        return max(0, cursor.rowcount)

    def seg_expand(self, direction: Direction, lthd: float) -> int:
        name = self._work_relation(direction)
        key_col, other_col = direction.edge_key, direction.edge_other
        p = self._p
        candidate_sql = f"""
            SELECT s.fid AS fid, e.{other_col} AS tid, s.tid AS pid,
                   s.cost + e.cost AS cost
            FROM {name} s JOIN {self._tedges} e ON s.tid = e.{key_col}
            WHERE s.f = 2 AND s.cost + e.cost <= {p}
              AND e.{other_col} != s.fid
        """
        if validate_sql_style(self.sql_style) == NSQL:
            cursor = self._execute(
                f"""
                INSERT INTO {name} (fid, tid, pid, cost, f)
                SELECT fid, tid, pid, cost, 0 FROM (
                    SELECT fid, tid, pid, cost,
                           row_number() OVER (PARTITION BY fid, tid
                                              ORDER BY cost) AS rownum
                    FROM ({candidate_sql}) AS cand
                ) AS ranked WHERE rownum = 1
                ON CONFLICT (fid, tid) DO UPDATE SET
                    cost = excluded.cost, pid = excluded.pid, f = 0
                WHERE {name}.cost > excluded.cost
                """,
                (lthd,),
            )
            return max(0, cursor.rowcount)
        self._execute_unlogged("DROP TABLE IF EXISTS tmp_segcand")
        self._execute(
            f"""
            CREATE TEMP TABLE tmp_segcand AS
            SELECT cand.fid, cand.tid, min(cand.pid) AS pid, cand.cost
            FROM ({candidate_sql}) AS cand
            JOIN (SELECT fid, tid, min(cost) AS mincost
                  FROM ({candidate_sql}) AS inner_cand
                  GROUP BY fid, tid) AS agg
              ON cand.fid = agg.fid AND cand.tid = agg.tid
                 AND cand.cost = agg.mincost
            GROUP BY cand.fid, cand.tid, cand.cost
            """,
            (lthd, lthd),
        )
        updated = max(0, self._execute(
            f"""
            UPDATE {name} SET
                cost = (SELECT cost FROM tmp_segcand t
                        WHERE t.fid = {name}.fid AND t.tid = {name}.tid),
                pid = (SELECT pid FROM tmp_segcand t
                       WHERE t.fid = {name}.fid AND t.tid = {name}.tid),
                f = 0
            WHERE EXISTS (SELECT 1 FROM tmp_segcand t
                          WHERE t.fid = {name}.fid AND t.tid = {name}.tid
                            AND t.cost < {name}.cost)
            """
        ).rowcount)
        inserted = max(0, self._execute(
            f"""
            INSERT INTO {name} (fid, tid, pid, cost, f)
            SELECT fid, tid, pid, cost, 0 FROM tmp_segcand t
            WHERE NOT EXISTS (SELECT 1 FROM {name} w
                              WHERE w.fid = t.fid AND w.tid = t.tid)
            """
        ).rowcount)
        self._execute_unlogged("DROP TABLE IF EXISTS tmp_segcand")
        return updated + inserted

    def seg_finalize_frontier(self, direction: Direction) -> int:
        name = self._work_relation(direction)
        cursor = self._execute(f"UPDATE {name} SET f = 1 WHERE f = 2")
        return max(0, cursor.rowcount)

    def seg_finish(self, direction: Direction, lthd: float,
                   index_mode: str = IndexMode.CLUSTERED) -> int:
        index_mode = IndexMode.validate(index_mode)
        work = self._work_relation(direction)
        name = self._seg_relation(direction)
        self._execute_unlogged(f"DROP TABLE IF EXISTS {name}")
        self._execute(
            f"CREATE TABLE {name} AS SELECT fid, tid, pid, cost FROM {work}")
        if index_mode != IndexMode.NONE:
            self._execute_unlogged(
                f"CREATE INDEX ix_{name}_fid ON {name} (fid)")
        self._execute_unlogged(f"DROP TABLE IF EXISTS {work}")
        # Record the construction threshold durably, then publish: pooled
        # reader clones are separate server sessions and only see
        # committed data.
        self._record_meta("segtable_lthd", repr(float(lthd)))
        self._commit()
        self.has_segtable = True
        self.segtable_lthd = lthd
        return int(self._scalar(self._execute_unlogged(
            f"SELECT count(*) FROM {name}")))

    def seg_rows(self, direction: Direction) -> List[Dict[str, object]]:
        name = self._seg_relation(direction)
        if not self._table_exists(name):
            return []
        rows = self._execute_unlogged(
            f"SELECT fid, tid, pid, cost FROM {name}").fetchall()
        return [dict(zip(["fid", "tid", "pid", "cost"], row))
                for row in rows]


def _create_dbapi_store(path: Optional[str] = None,
                        buffer_capacity: int = 256) -> DBAPIGraphStore:
    """Backend-registry factory: ``path`` is the DSN.  The server manages
    its own caching, so ``buffer_capacity`` is accepted but unused."""
    del buffer_capacity
    if path is None:
        raise InvalidDSNError(
            "the dbapi backend has no in-memory mode; pass db_path=<DSN> "
            "(e.g. fallback://127.0.0.1:5433/ or postgresql://host/db)"
        )
    return DBAPIGraphStore(path)


register_backend(DBAPIGraphStore.backend_name, _create_dbapi_store,
                 replace=True)
