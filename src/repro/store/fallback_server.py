"""A pure-stdlib client-server DB-API engine: SQLite behind a wire protocol.

The DB-API graph store (:mod:`repro.store.dbapi`) exists to prove the FEM
operators run against an *unmodified client-server RDBMS* — but CI and the
default test run must stay hermetic, with no PostgreSQL container in
sight.  This module closes the gap: a tiny TCP server that owns one SQLite
database file and speaks a framed-JSON statement protocol, plus a PEP-249
style client (:func:`connect`) the generic DB-API store drives exactly
like ``psycopg``.  Everything a real server backend exercises — genuinely
separate connections, connection-private ``TEMP`` tables over shared
durable relations, per-statement network round-trips, a server-imposed
connection cap, transport errors distinct from SQL errors — happens for
real, just against a local socket.

Run it standalone::

    python -m repro.store.fallback_server --db graphs.db --port 5433

or in-process for tests and docs::

    from repro.store.fallback_server import serve_in_thread
    server = serve_in_thread()          # temp database, ephemeral port
    print(server.dsn)                   # fallback://127.0.0.1:PORT/
    server.close()

Wire protocol (version 1): every frame is a 4-byte big-endian length
followed by one UTF-8 JSON document.  The server sends a hello frame on
accept (``{"server": ..., "protocol": 1, "max_connections": N}``); the
client then sends ``{"op": "execute"|"executemany"|"commit"|"close",
"sql": ..., "params": ...}`` requests and receives ``{"ok": true, "rows":
..., "rowcount": ...}`` or ``{"ok": false, "error": <class>, "message":
...}``.  Non-finite floats ride on Python's permissive JSON (both ends
are the stdlib codec, so ``Infinity`` round-trips).
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import socketserver
import sqlite3
import struct
import tempfile
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

PROTOCOL_VERSION = 1
DEFAULT_MAX_CONNECTIONS = 16
"""Server-advertised connection cap — the ``max_connections`` store
capability the pool clamps to (see ``GraphStore.max_connections``)."""

_HEADER = struct.Struct(">I")
_MAX_FRAME = 256 * 1024 * 1024  # defensive bound; bulk loads stay far below


# ---------------------------------------------------------------------------
# PEP-249 style exception hierarchy (module-level, like any DB-API driver)
# ---------------------------------------------------------------------------

class Error(Exception):
    """Base DB-API error of the fallback driver."""


class InterfaceError(Error):
    """Client/transport-side failure: refused connection, dropped socket,
    malformed frame.  The generic store maps this (and
    :class:`OperationalError`) to ``repro.errors.BackendConnectionError``."""


class OperationalError(Error):
    """The server refused the connection at hello time (e.g. its
    connection cap is reached).  Raised only by ``connect``."""


class ProgrammingError(Error):
    """The statement was rejected (SQL error, missing table, bad
    parameters) — re-raised from the server's SQLite engine.  Any error
    *reply* maps here: the transport answered, so the failure is the
    statement's, whichever sqlite3 exception class produced it."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    body = json.dumps(payload).encode("utf-8")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise InterfaceError("connection closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame, normalizing *every* way a peer can hand us
    garbage — a truncated header, a dead socket mid-body, invalid UTF-8,
    malformed JSON — to :class:`InterfaceError`.  This matters at every
    call site: the generic DB-API store maps ``InterfaceError`` to
    ``repro.errors.BackendConnectionError``, but a leaked
    ``UnicodeDecodeError`` or ``json.JSONDecodeError`` (both plain
    ``ValueError`` subclasses) would escape that mapping and surface as
    an untyped crash instead of a retryable connection failure."""
    try:
        (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    except struct.error as exc:  # defensive; _recv_exact sizes the read
        raise InterfaceError(f"malformed frame header: {exc}") from exc
    if length > _MAX_FRAME:
        raise InterfaceError(f"frame of {length} bytes exceeds protocol bound")
    body = _recv_exact(sock, length)
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise InterfaceError(f"garbled frame from peer: {exc}") from exc


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class _Handler(socketserver.BaseRequestHandler):
    """One client connection: its own SQLite connection over the shared
    database file, so ``TEMP`` tables are genuinely connection-private
    while ``TNodes``/``TEdges``/the SegTable are shared — the same
    visibility contract a PostgreSQL session gives."""

    server: "FallbackServer"

    def handle(self) -> None:  # noqa: C901 - one dispatch loop, kept flat
        if not self.server._admit(self.request):
            _send_frame(self.request, {
                "server": "repro-fallback", "protocol": PROTOCOL_VERSION,
                "ok": False, "error": "OperationalError",
                "message": (f"too many connections (server limit "
                            f"{self.server.max_connections})"),
            })
            return
        connection = sqlite3.connect(self.server.db_path,
                                     check_same_thread=False,
                                     isolation_level=None,
                                     cached_statements=256)
        try:
            connection.execute("PRAGMA journal_mode = MEMORY")
            connection.execute("PRAGMA synchronous = OFF")
            connection.execute("PRAGMA temp_store = MEMORY")
            connection.execute("PRAGMA busy_timeout = 5000")
            _send_frame(self.request, {
                "server": "repro-fallback", "protocol": PROTOCOL_VERSION,
                "ok": True,
                "max_connections": self.server.max_connections,
            })
            while True:
                try:
                    request = _recv_frame(self.request)
                except (InterfaceError, ConnectionError, json.JSONDecodeError):
                    return  # client went away; nothing to answer
                op = request.get("op")
                if op == "close":
                    _send_frame(self.request, {"ok": True})
                    return
                _send_frame(self.request,
                            self._dispatch(connection, op, request))
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # client vanished mid-reply; its state dies with us
        finally:
            connection.close()
            self.server._release(self.request)

    def _dispatch(self, connection: sqlite3.Connection, op: Any,
                  request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if op == "commit":
                connection.commit()
                return {"ok": True, "rows": None, "rowcount": -1}
            sql = request.get("sql")
            if op not in ("execute", "executemany") or not isinstance(sql, str):
                return {"ok": False, "error": "ProgrammingError",
                        "message": f"unknown or malformed op {op!r}"}
            params = request.get("params")
            before = connection.total_changes
            if op == "execute":
                cursor = connection.execute(sql, tuple(params or ()))
            else:
                cursor = connection.executemany(
                    sql, [tuple(row) for row in (params or [])])
            rows: Optional[List[List[Any]]] = None
            if cursor.description is not None:
                rows = [list(row) for row in cursor.fetchall()]
            # sqlite3's cursor.rowcount is unreliable for INSERT..SELECT
            # and upserts; the total_changes delta is exactly changes().
            rowcount = connection.total_changes - before
            cursor.close()
            return {"ok": True, "rows": rows, "rowcount": rowcount}
        except sqlite3.Error as exc:
            return {"ok": False, "error": type(exc).__name__,
                    "message": str(exc)}


class FallbackServer(socketserver.ThreadingTCPServer):
    """The serving half: one shared SQLite file, one thread per client."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, db_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = DEFAULT_MAX_CONNECTIONS) -> None:
        self._owns_db = db_path is None
        if db_path is None:
            handle, db_path = tempfile.mkstemp(prefix="repro-fallback-",
                                               suffix=".db")
            os.close(handle)
        self.db_path = db_path
        self.max_connections = max_connections
        self._active = 0
        self._active_lock = threading.Lock()
        self._client_socks: set = set()
        super().__init__((host, port), _Handler)

    def _admit(self, sock: socket.socket) -> bool:
        with self._active_lock:
            if self._active >= self.max_connections:
                return False
            self._active += 1
            self._client_socks.add(sock)
            return True

    def _release(self, sock: socket.socket) -> None:
        with self._active_lock:
            self._active -= 1
            self._client_socks.discard(sock)

    @property
    def dsn(self) -> str:
        """The connection string clients dial: ``fallback://host:port/``."""
        host, port = self.server_address[:2]
        return f"fallback://{host}:{port}/"

    def close(self) -> None:
        """Stop serving and, when the database was server-created, delete
        its temp file.  Live client connections are severed, so from the
        clients' side a closed server is indistinguishable from a dead
        one — their next statement raises ``InterfaceError``."""
        self.shutdown()
        with self._active_lock:
            lingering = list(self._client_socks)
        for sock in lingering:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.server_close()
        if self._owns_db and os.path.exists(self.db_path):
            os.remove(self.db_path)


class ServerHandle:
    """What :func:`serve_in_thread` returns: the server plus its thread."""

    def __init__(self, server: FallbackServer,
                 thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def dsn(self) -> str:
        return self.server.dsn

    @property
    def db_path(self) -> str:
        return self.server.db_path

    def close(self) -> None:
        self.server.close()
        self.thread.join(timeout=5)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def serve_in_thread(db_path: Optional[str] = None, host: str = "127.0.0.1",
                    port: int = 0,
                    max_connections: int = DEFAULT_MAX_CONNECTIONS
                    ) -> ServerHandle:
    """Start a fallback server on a daemon thread; returns a handle whose
    ``.dsn`` is ready to dial (``port=0`` picks an ephemeral port)."""
    server = FallbackServer(db_path=db_path, host=host, port=port,
                            max_connections=max_connections)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-fallback-server", daemon=True)
    thread.start()
    return ServerHandle(server, thread)


# ---------------------------------------------------------------------------
# Client (the PEP-249 surface the generic DB-API store drives)
# ---------------------------------------------------------------------------

class FallbackCursor:
    """Cursor over one wire connection.  ``rowcount`` is the server's
    ``changes()`` delta for DML and ``-1`` otherwise, matching what a
    native driver reports."""

    def __init__(self, connection: "FallbackConnection") -> None:
        self._connection = connection
        self._rows: List[Sequence[Any]] = []
        self._cursor_index = 0
        self.rowcount = -1
        self.description: Optional[Tuple] = None

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "FallbackCursor":
        reply = self._connection._roundtrip(
            {"op": "execute", "sql": sql, "params": list(params)})
        rows = reply.get("rows")
        self._rows = [tuple(row) for row in rows] if rows is not None else []
        self.description = () if rows is not None else None
        self._cursor_index = 0
        self.rowcount = int(reply.get("rowcount", -1))
        return self

    def executemany(self, sql: str,
                    seq_of_params: Sequence[Sequence[Any]]) -> "FallbackCursor":
        reply = self._connection._roundtrip(
            {"op": "executemany", "sql": sql,
             "params": [list(row) for row in seq_of_params]})
        self._rows = []
        self.description = None
        self._cursor_index = 0
        self.rowcount = int(reply.get("rowcount", -1))
        return self

    def fetchone(self) -> Optional[Sequence[Any]]:
        if self._cursor_index >= len(self._rows):
            return None
        row = self._rows[self._cursor_index]
        self._cursor_index += 1
        return row

    def fetchall(self) -> List[Sequence[Any]]:
        rows = self._rows[self._cursor_index:]
        self._cursor_index = len(self._rows)
        return rows

    def close(self) -> None:
        self._rows = []


class FallbackConnection:
    """A DB-API connection over the wire protocol."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = _recv_frame(self._sock)
        except (OSError, InterfaceError) as exc:
            raise InterfaceError(
                f"cannot reach fallback server at {host}:{port}: {exc}"
            ) from exc
        if not hello.get("ok", False):
            self._sock.close()
            raise OperationalError(str(hello.get("message",
                                                 "server refused connection")))
        self.server_max_connections = int(
            hello.get("max_connections", DEFAULT_MAX_CONNECTIONS))
        self._closed = False
        self._lock = threading.Lock()

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise InterfaceError("connection is closed")
        with self._lock:
            try:
                _send_frame(self._sock, request)
                reply = _recv_frame(self._sock)
            except (OSError, InterfaceError, json.JSONDecodeError) as exc:
                self._closed = True
                self._sock.close()
                raise InterfaceError(
                    f"fallback server connection lost: {exc}"
                ) from exc
        if reply.get("ok", False):
            return reply
        # The server answered, so the transport is healthy: every error
        # reply is a *statement* failure (bad SQL, missing table, type
        # mismatch), whatever sqlite3 exception class produced it.  Only
        # connect-time refusal (the hello) raises OperationalError.
        name = str(reply.get("error", "ProgrammingError"))
        message = str(reply.get("message", "(no message)"))
        raise ProgrammingError(f"{name}: {message}")

    def cursor(self) -> FallbackCursor:
        return FallbackCursor(self)

    def execute(self, sql: str, params: Sequence[Any] = ()) -> FallbackCursor:
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str,
                    seq_of_params: Sequence[Sequence[Any]]) -> FallbackCursor:
        return self.cursor().executemany(sql, seq_of_params)

    def commit(self) -> None:
        self._roundtrip({"op": "commit"})

    def rollback(self) -> None:  # pragma: no cover - autocommit server
        pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            with self._lock:
                _send_frame(self._sock, {"op": "close"})
                _recv_frame(self._sock)
        except (OSError, InterfaceError, json.JSONDecodeError):
            pass  # closing a dead connection is fine
        finally:
            self._sock.close()


def connect(host: str, port: int, timeout: float = 30.0) -> FallbackConnection:
    """Open a DB-API connection to a running fallback server."""
    return FallbackConnection(host, port, timeout=timeout)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.fallback_server",
        description=("Serve a SQLite database over the repro fallback "
                     "DB-API wire protocol."))
    parser.add_argument("--db", default=None,
                        help="database file (default: a fresh temp file)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks an ephemeral one)")
    parser.add_argument("--max-connections", type=int,
                        default=DEFAULT_MAX_CONNECTIONS,
                        help="advertised connection cap (pool clamp)")
    options = parser.parse_args(argv)
    server = FallbackServer(db_path=options.db, host=options.host,
                            port=options.port,
                            max_connections=options.max_connections)
    print(f"serving {server.db_path} at {server.dsn}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
