"""PostgreSQL wire driver for the DB-API graph store.

The paper's experiments ran on PostgreSQL as the open-source platform;
this module makes ``postgresql://`` DSNs dial a real server through
``psycopg`` (version 3 preferred, ``psycopg2`` accepted).  The driver
import is *gated*: environments without either package — the hermetic CI
default — can still import this module, register the backend, and parse
DSNs; only actually connecting raises
:class:`~repro.errors.MissingDriverError`, pointing at the
``fallback://`` stdlib server as the dependency-free alternative.

Registered twice:

* as the ``postgresql`` / ``postgres`` DSN schemes of the generic
  ``dbapi`` backend (``backend="dbapi", db_path="postgresql://..."``);
* as a ``postgres`` backend name of its own, which additionally rejects
  non-PostgreSQL DSNs up front.

The CI ``postgres`` job runs the whole conformance suite against a live
``postgres:16`` service container via ``REPRO_TEST_DSN``; see
``tests/test_backend_conformance.py``.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.core.store.registry import register_backend
from repro.errors import InvalidDSNError, MissingDriverError
from repro.store.dbapi import (
    POSTGRES_DIALECT,
    DBAPIGraphStore,
    ParsedDSN,
    WireDriver,
    register_driver,
)

try:  # psycopg 3, the preferred driver
    import psycopg as _psycopg  # type: ignore[import-not-found]
    _PSYCOPG_VERSION = 3
except ImportError:  # pragma: no cover - depends on environment
    try:
        import psycopg2 as _psycopg  # type: ignore[import-not-found]
        _PSYCOPG_VERSION = 2
    except ImportError:
        _psycopg = None
        _PSYCOPG_VERSION = 0

POSTGRES_SCHEMES = ("postgresql", "postgres")


def driver_available() -> bool:
    """Whether a psycopg driver is importable in this environment."""
    return _psycopg is not None


class PostgresDriver(WireDriver):
    """Wire driver dialing PostgreSQL through psycopg (3 or 2)."""

    dialect = POSTGRES_DIALECT

    def __init__(self, parsed: ParsedDSN) -> None:
        if _psycopg is None:
            raise MissingDriverError(
                f"DSN {parsed.dsn!r} needs psycopg (or psycopg2), which is "
                f"not installed; use a fallback:// DSN for the stdlib "
                f"server, or install a PostgreSQL driver"
            )
        self.parsed = parsed
        # psycopg's exception hierarchy: OperationalError/InterfaceError
        # are transport-level, everything else under Error is the
        # statement's fault.
        self.connection_exceptions: Tuple[type, ...] = (
            _psycopg.OperationalError, _psycopg.InterfaceError, OSError)
        self.programming_exceptions: Tuple[type, ...] = (_psycopg.Error,)

    def connect(self) -> Any:
        if _PSYCOPG_VERSION == 3:
            return _psycopg.connect(self.parsed.driver_dsn, autocommit=True)
        connection = _psycopg.connect(self.parsed.driver_dsn)
        connection.autocommit = True
        return connection

    def server_limit(self, connection: Any) -> Optional[int]:
        cursor = connection.cursor()
        try:
            cursor.execute("SHOW max_connections")
            row = cursor.fetchone()
        finally:
            cursor.close()
        return None if row is None else int(row[0])

    def describe(self) -> str:
        return f"PostgreSQL at {self.parsed.host}"


for _scheme in POSTGRES_SCHEMES:
    register_driver(_scheme, PostgresDriver)


def _create_postgres_store(path: Optional[str] = None,
                           buffer_capacity: int = 256) -> DBAPIGraphStore:
    """Factory for ``backend="postgres"``: the generic DB-API store,
    restricted to PostgreSQL DSNs."""
    del buffer_capacity
    if path is None:
        raise InvalidDSNError(
            "the postgres backend has no in-memory mode; pass "
            "db_path='postgresql://user@host/db'"
        )
    parsed = ParsedDSN(path)
    if parsed.scheme not in POSTGRES_SCHEMES:
        raise InvalidDSNError(
            f"backend 'postgres' expects a postgresql:// DSN, got "
            f"{parsed.scheme!r}; use backend='dbapi' for other schemes"
        )
    return DBAPIGraphStore(path, parsed=parsed)


register_backend("postgres", _create_postgres_store, replace=True)
