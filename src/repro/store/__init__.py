"""Client-server store backends (the DB-API family).

Importing this package registers two backends with the store registry:

* ``dbapi`` — the generic PEP-249 store of :mod:`repro.store.dbapi`,
  addressed by connection string (``fallback://`` for the stdlib wire
  server, ``postgresql://`` for PostgreSQL through psycopg);
* ``postgres`` — the same store restricted to PostgreSQL DSNs
  (:mod:`repro.store.postgres`; registration succeeds even without
  psycopg installed — connecting is what needs the driver).

:mod:`repro.core.store` imports this package at the end of its own
initialisation, so the backends are available wherever the embedded
ones are.
"""

from repro.store import postgres  # noqa: F401  (registers postgresql://)
from repro.store.dbapi import (
    DBAPIGraphStore,
    ParsedDSN,
    WireDriver,
    register_driver,
)
from repro.store.fallback_server import serve_in_thread

__all__ = [
    "DBAPIGraphStore",
    "ParsedDSN",
    "WireDriver",
    "register_driver",
    "serve_in_thread",
]
