"""``python -m repro.catalog`` — operate on a session catalog from a shell.

Subcommands::

    python -m repro.catalog list    --catalog PATH
    python -m repro.catalog inspect --catalog PATH NAME
    python -m repro.catalog rebuild --catalog PATH NAME [--lthd X]
    python -m repro.catalog gc      --catalog PATH [--stale]

``list`` prints one line per entry; ``inspect`` dumps an entry's manifest
JSON; ``rebuild`` re-derives an entry (fingerprint, statistics, SegTable)
from its database file — the recovery path for stale entries; ``gc``
drops entries whose database file vanished (and, with ``--stale``, entries
flagged by a failed fingerprint check).

Exit status is 0 on success, 1 on a catalog error (missing entry,
unreadable manifest, missing database file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.errors import PersistentCatalogError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.catalog",
        description="Inspect and maintain a persistent session catalog.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_catalog_arg(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--catalog", required=True,
                         help="catalog directory (holds manifest.json)")

    list_cmd = subparsers.add_parser(
        "list", help="one line per cataloged graph")
    add_catalog_arg(list_cmd)

    inspect_cmd = subparsers.add_parser(
        "inspect", help="dump one entry's manifest JSON")
    add_catalog_arg(inspect_cmd)
    inspect_cmd.add_argument("name", help="cataloged graph name")

    rebuild_cmd = subparsers.add_parser(
        "rebuild",
        help="re-derive an entry (fingerprint, statistics, SegTable) "
             "from its database file")
    add_catalog_arg(rebuild_cmd)
    rebuild_cmd.add_argument("name", help="cataloged graph name")
    rebuild_cmd.add_argument("--lthd", type=float, default=None,
                             help="SegTable threshold (defaults to the "
                                  "entry's previous threshold; omit on an "
                                  "index-less entry to skip the build)")
    rebuild_cmd.add_argument("--sql-style", default=None,
                             choices=("nsql", "tsql"),
                             help="SQL style for the rebuild")

    gc_cmd = subparsers.add_parser(
        "gc", help="drop entries whose database file is gone")
    add_catalog_arg(gc_cmd)
    gc_cmd.add_argument("--stale", action="store_true",
                        help="also drop entries flagged stale by a failed "
                             "fingerprint check")
    return parser


def _format_list(catalog: Catalog) -> List[str]:
    entries = catalog.entries()
    if not entries:
        return [f"(catalog at {catalog.path} is empty)"]
    header = (f"{'name':<20} {'backend':<8} {'nodes':>8} {'edges':>9} "
              f"{'lthd':>6} {'state':<6} db_path")
    lines = [header, "-" * len(header)]
    for name in sorted(entries):
        entry = entries[name]
        lthd = "-" if entry.segtable is None else f"{entry.segtable.lthd:g}"
        state = "stale" if entry.stale else "ok"
        lines.append(
            f"{entry.name:<20} {entry.backend:<8} {entry.num_nodes:>8} "
            f"{entry.num_edges:>9} {lthd:>6} {state:<6} {entry.db_path}"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        # Never materialize a catalog from the CLI: a mistyped --catalog
        # path should error, not silently create an empty directory.
        catalog = Catalog(args.catalog, create=False)
        if args.command == "list":
            for line in _format_list(catalog):
                print(line)
        elif args.command == "inspect":
            entry = catalog.get(args.name)
            print(json.dumps(entry.to_dict(), indent=2, sort_keys=True))
        elif args.command == "rebuild":
            entry = catalog.rebuild(args.name, lthd=args.lthd,
                                    sql_style=args.sql_style)
            segments = (0 if entry.segtable is None or entry.segtable.build is None
                        else entry.segtable.build.encoding_number)
            print(f"rebuilt {entry.name!r}: {entry.num_nodes} nodes, "
                  f"{entry.num_edges} edges, fingerprint "
                  f"{entry.fingerprint[:18]}..., {segments} segments")
        elif args.command == "gc":
            removed = catalog.gc(remove_stale=args.stale)
            if removed:
                print(f"removed {len(removed)} entr"
                      f"{'y' if len(removed) == 1 else 'ies'}: "
                      f"{', '.join(removed)}")
            else:
                print("nothing to remove")
    except PersistentCatalogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `... inspect ... | head`
        return 0
    return 0


__all__ = ["main"]
