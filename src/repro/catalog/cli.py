"""``python -m repro.catalog`` — operate on a session catalog from a shell.

Subcommands::

    python -m repro.catalog list      --catalog PATH
    python -m repro.catalog inspect   --catalog PATH NAME
    python -m repro.catalog rebuild   --catalog PATH NAME [--lthd X]
    python -m repro.catalog gc        --catalog PATH [--stale]
    python -m repro.catalog shards    --catalog PATH [--catalog PATH ...]
    python -m repro.catalog calibrate --catalog PATH [--backend NAME ...]

``list`` prints one line per entry; ``inspect`` dumps an entry's manifest
JSON; ``rebuild`` re-derives an entry (fingerprint, statistics, SegTable)
from its database file — the recovery path for stale entries; ``gc``
drops entries whose database file vanished (and, with ``--stale``, entries
flagged by a failed fingerprint check); ``shards`` treats each given
catalog as one shard and prints the graph → shard routing table a
:class:`repro.shard.ShardRouter` would derive, without opening any
service — conflicting ownership (same graph name, different content
fingerprints) is reported and exits non-zero; ``calibrate`` runs the
planner's cost-model micro-benchmark for each backend (defaulting to the
backends the catalog's entries use) and persists the measured profiles in
the manifest, so every later warm start plans ``method="auto"`` from
measured costs with zero re-probing.

Exit status is 0 on success, 1 on a catalog error (missing entry,
unreadable manifest, missing database file) or a routing conflict.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.errors import (
    PersistentCatalogError,
    ShardError,
    UnknownBackendError,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.catalog",
        description="Inspect and maintain a persistent session catalog.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_catalog_arg(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--catalog", required=True,
                         help="catalog directory (holds manifest.json)")

    list_cmd = subparsers.add_parser(
        "list", help="one line per cataloged graph")
    add_catalog_arg(list_cmd)

    inspect_cmd = subparsers.add_parser(
        "inspect", help="dump one entry's manifest JSON")
    add_catalog_arg(inspect_cmd)
    inspect_cmd.add_argument("name", help="cataloged graph name")

    rebuild_cmd = subparsers.add_parser(
        "rebuild",
        help="re-derive an entry (fingerprint, statistics, SegTable) "
             "from its database file")
    add_catalog_arg(rebuild_cmd)
    rebuild_cmd.add_argument("name", help="cataloged graph name")
    rebuild_cmd.add_argument("--lthd", type=float, default=None,
                             help="SegTable threshold (defaults to the "
                                  "entry's previous threshold; omit on an "
                                  "index-less entry to skip the build)")
    rebuild_cmd.add_argument("--sql-style", default=None,
                             choices=("nsql", "tsql"),
                             help="SQL style for the rebuild")

    gc_cmd = subparsers.add_parser(
        "gc", help="drop entries whose database file is gone")
    add_catalog_arg(gc_cmd)
    gc_cmd.add_argument("--stale", action="store_true",
                        help="also drop entries flagged stale by a failed "
                             "fingerprint check")

    shards_cmd = subparsers.add_parser(
        "shards",
        help="print the graph -> shard routing table derived from one "
             "catalog per shard")
    shards_cmd.add_argument("--catalog", action="append", required=True,
                            dest="catalogs", metavar="PATH",
                            help="a shard's catalog directory (repeat once "
                                 "per shard; the shard is named after the "
                                 "directory, or use --name)")
    shards_cmd.add_argument("--name", action="append", dest="names",
                            metavar="NAME",
                            help="explicit shard names matching --catalog "
                                 "positionally (needed when two catalog "
                                 "directories share a basename)")

    calibrate_cmd = subparsers.add_parser(
        "calibrate",
        help="measure per-backend planner unit costs and persist the "
             "profiles in the manifest")
    add_catalog_arg(calibrate_cmd)
    calibrate_cmd.add_argument("--backend", action="append", dest="backends",
                               metavar="NAME",
                               help="backend to calibrate (repeatable; "
                                    "defaults to every backend the "
                                    "catalog's entries use)")
    calibrate_cmd.add_argument("--seed", type=int, default=0,
                               help="probe-graph seed")
    return parser


def _calibrate(catalog: Catalog, backends: Optional[Sequence[str]],
               seed: int) -> List[str]:
    """Run the ``calibrate`` subcommand; returns the report lines."""
    from repro.catalog.manifest import CalibrationRecord
    from repro.service.calibrate import calibrate_profile

    if not backends:
        backends = sorted({entry.backend
                           for entry in catalog.entries().values()})
    if not backends:
        raise PersistentCatalogError(
            f"catalog at {catalog.path} has no entries; pass --backend "
            f"NAME to name the backend(s) to calibrate"
        )
    lines = []
    for backend in backends:
        profile = calibrate_profile(backend, seed=seed)
        catalog.set_calibration(CalibrationRecord(
            backend=backend, profile=profile,
            calibrated_at=profile.calibrated_at))
        biases = ", ".join(f"{method}={bias:.2f}" for method, bias
                           in sorted(profile.method_bias.items()))
        lines.append(
            f"calibrated {backend!r} in {profile.probe_seconds:.2f}s: "
            f"statement={profile.statement_cost * 1e6:.1f}us "
            f"row={profile.row_cost * 1e6:.2f}us "
            f"seg_row={profile.seg_row_cost * 1e6:.2f}us "
            f"biases [{biases}]"
        )
    return lines


def _shards_table(catalog_paths: Sequence[str],
                  names: Optional[Sequence[str]]) -> List[str]:
    """Build and render the routing table for the ``shards`` subcommand."""
    # Imported lazily: the shard package depends on this package, and the
    # routing reader works on manifests alone (no service is opened).
    from repro.shard.routing import (
        format_routing_table,
        routing_table_from_catalogs,
    )
    from repro.shard.spec import default_shard_name

    if names is None:
        names = [default_shard_name(path) for path in catalog_paths]
    elif len(names) != len(catalog_paths):
        raise ShardError(
            f"got {len(names)} --name values for {len(catalog_paths)} "
            f"--catalog paths"
        )
    if len(set(names)) != len(names):
        raise ShardError(
            f"duplicate shard names {tuple(names)}; pass --name once per "
            f"--catalog to disambiguate"
        )
    catalogs = [(name, Catalog(path, create=False))
                for name, path in zip(names, catalog_paths)]
    table = routing_table_from_catalogs(catalogs)
    lines = format_routing_table(
        table, title=f"{len(table)} graph(s) across {len(catalogs)} shard(s)")
    for shard, owned in table.by_shard().items():
        lines.append(f"  {shard}: {', '.join(owned)}")
    return lines


def _format_list(catalog: Catalog) -> List[str]:
    entries = catalog.entries()
    if not entries:
        return [f"(catalog at {catalog.path} is empty)"]
    header = (f"{'name':<20} {'backend':<8} {'nodes':>8} {'edges':>9} "
              f"{'lthd':>6} {'state':<6} db_path")
    lines = [header, "-" * len(header)]
    for name in sorted(entries):
        entry = entries[name]
        lthd = "-" if entry.segtable is None else f"{entry.segtable.lthd:g}"
        state = "stale" if entry.stale else "ok"
        lines.append(
            f"{entry.name:<20} {entry.backend:<8} {entry.num_nodes:>8} "
            f"{entry.num_edges:>9} {lthd:>6} {state:<6} {entry.db_path}"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "shards":
            for line in _shards_table(args.catalogs, args.names):
                print(line)
            return 0
        # Never materialize a catalog from the CLI: a mistyped --catalog
        # path should error, not silently create an empty directory.
        catalog = Catalog(args.catalog, create=False)
        if args.command == "list":
            for line in _format_list(catalog):
                print(line)
        elif args.command == "inspect":
            entry = catalog.get(args.name)
            print(json.dumps(entry.to_dict(), indent=2, sort_keys=True))
        elif args.command == "rebuild":
            entry = catalog.rebuild(args.name, lthd=args.lthd,
                                    sql_style=args.sql_style)
            segments = (0 if entry.segtable is None or entry.segtable.build is None
                        else entry.segtable.build.encoding_number)
            print(f"rebuilt {entry.name!r}: {entry.num_nodes} nodes, "
                  f"{entry.num_edges} edges, fingerprint "
                  f"{entry.fingerprint[:18]}..., {segments} segments")
        elif args.command == "calibrate":
            for line in _calibrate(catalog, args.backends, args.seed):
                print(line)
        elif args.command == "gc":
            removed = catalog.gc(remove_stale=args.stale)
            if removed:
                print(f"removed {len(removed)} entr"
                      f"{'y' if len(removed) == 1 else 'ies'}: "
                      f"{', '.join(removed)}")
            else:
                print("nothing to remove")
    except (PersistentCatalogError, ShardError, UnknownBackendError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `... inspect ... | head`
        return 0
    return 0


__all__ = ["main"]
