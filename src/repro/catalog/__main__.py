"""Module entry point: ``python -m repro.catalog <command> ...``."""

import sys

from repro.catalog.cli import main

if __name__ == "__main__":
    sys.exit(main())
