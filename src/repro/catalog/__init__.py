"""Persistent session catalog: durable graph manifests and warm starts.

The paper's SegTable is an *offline* index — Figure 9 shows its size and
construction time growing sharply with ``lthd`` — yet without this package
every process rebuilt graphs, statistics, and SegTables from scratch.  The
catalog makes that state durable:

* a :class:`~repro.catalog.manifest.Manifest` (versioned JSON, written
  atomically) records each registered graph's backend, ``db_path``,
  content fingerprint, planner statistics, and SegTable metadata;
* :class:`Catalog` is the directory-rooted registry the service layer
  writes through (every mutation persists immediately) and
  ``PathService.open(catalog_path=...)`` reads to reattach everything —
  no edge reload, no statistics rescan, no SegTable reconstruction;
* fingerprints (:mod:`repro.graph.fingerprint`) detect a database file
  that changed underneath the manifest: the entry is marked stale and
  attaches fail with :class:`~repro.errors.FingerprintMismatchError`
  until it is re-registered or rebuilt;
* per-backend planner-calibration profiles
  (:class:`~repro.catalog.manifest.CalibrationRecord`) persist the cost
  model's measured unit costs, so a warm start plans ``method="auto"``
  from measured costs with zero re-probing;
* ``python -m repro.catalog`` (:mod:`repro.catalog.cli`) lists, inspects,
  rebuilds, calibrates, and garbage-collects entries from a shell.

See ``docs/catalog.md`` for the manifest format and invalidation rules,
and ``docs/planner.md`` for the calibration lifecycle.
"""

from repro.catalog.catalog import Catalog
from repro.catalog.manifest import (
    CalibrationRecord,
    CatalogEntry,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    Manifest,
    SegTableRecord,
    load_manifest,
    save_manifest,
)

__all__ = [
    "CalibrationRecord",
    "Catalog",
    "CatalogEntry",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Manifest",
    "SegTableRecord",
    "load_manifest",
    "save_manifest",
]
