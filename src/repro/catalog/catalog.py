"""The :class:`Catalog`: durable registry of graphs and their indexes.

A catalog is a directory holding one ``manifest.json`` (see
:mod:`repro.catalog.manifest`).  The service layer records every
``db_path``-backed graph it hosts — name, backend, content fingerprint,
planner statistics, SegTable metadata — and a later
``PathService.open(catalog_path=...)`` reattaches all of it: no bulk edge
reload, no statistics rescan, and crucially no re-run of the offline
SegTable expansion, whose construction cost is the dominant term the paper
measures in Figure 9.

Every mutator persists immediately, and — so that two services bound to
the same catalog cannot erase each other's registrations — every mutation
runs a **merge-on-write** cycle: re-read the manifest from disk, apply
this one change to the fresh copy, and atomically replace the file.  The
on-disk document is the source of truth; the in-memory copy is just the
latest parse of it.  The whole cycle holds an advisory file lock
(``.manifest.lock`` in the catalog directory, via ``flock``), so the
read-modify-write is exclusive across *every* writer sharing the
directory — other threads, other :class:`Catalog` handles, and other
processes — which is exactly the guarantee the shard router's rebalance
leans on when it rewrites two manifests.  (On platforms without
``fcntl`` the lock degrades to the in-process mutex only.)  The class
itself is additionally locked for concurrent threads of one service.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.catalog.manifest import (
    CalibrationRecord,
    CatalogEntry,
    MANIFEST_NAME,
    Manifest,
    SegTableRecord,
    load_manifest,
    save_manifest,
)
from repro.core.segtable import build_segtable as _build_segtable
from repro.core.store.registry import create_store, is_dsn
from repro.errors import CatalogEntryNotFoundError, ManifestError
from repro.obs import wall_time
from repro.graph.stats import compute_statistics

LOCK_NAME = ".manifest.lock"
"""Advisory lock file guarding the manifest's merge-on-write cycle."""


class Catalog:
    """A persistent session catalog rooted at a directory.

    Args:
        path: the catalog directory; created (with parents) if missing.
            An existing ``manifest.json`` inside is loaded and validated;
            otherwise the catalog starts empty and the manifest is written
            on first registration.
        create: create the directory when it does not exist.  Pass
            ``False`` to refuse instead (the CLI does, so a mistyped
            ``--catalog`` path errors rather than silently materializing
            an empty catalog).
    """

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = os.path.abspath(path)
        if os.path.isfile(self.path):
            raise ManifestError(
                f"catalog path {path!r} is a file; pass the catalog "
                f"*directory* (its manifest lives at "
                f"<dir>/{MANIFEST_NAME})"
            )
        if not os.path.isdir(self.path):
            if not create:
                raise ManifestError(
                    f"no catalog directory at {path!r}"
                )
            os.makedirs(self.path, exist_ok=True)
        self.manifest_path = os.path.join(self.path, MANIFEST_NAME)
        self.lock_path = os.path.join(self.path, LOCK_NAME)
        self._lock = threading.Lock()
        if os.path.exists(self.manifest_path):
            self._manifest = load_manifest(self.manifest_path)
        else:
            self._manifest = Manifest()

    @contextmanager
    def _mutate(self) -> Iterator[None]:
        """Exclusive merge-on-write window: the in-process mutex plus the
        advisory file lock, with the manifest re-read once both are held.
        Every mutator's read-modify-write runs inside this window, so no
        concurrent writer — thread, handle, or process — can have its
        registration erased by a stale document replay."""
        with self._lock:
            if fcntl is None:  # pragma: no cover - non-POSIX fallback
                self._refresh()
                yield
                return
            with open(self.lock_path, "a+b") as lock_handle:
                fcntl.flock(lock_handle, fcntl.LOCK_EX)
                try:
                    self._refresh()
                    yield
                finally:
                    fcntl.flock(lock_handle, fcntl.LOCK_UN)

    # -- reading -----------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """Registered graph names, sorted."""
        with self._lock:
            return tuple(sorted(self._manifest.entries))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._manifest.entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest.entries)

    def get(self, name: str) -> CatalogEntry:
        """The entry registered under ``name``.

        Raises:
            CatalogEntryNotFoundError: when ``name`` is not cataloged.
        """
        with self._lock:
            entry = self._manifest.entries.get(name)
        if entry is None:
            known = self.names() or "(empty catalog)"
            raise CatalogEntryNotFoundError(
                f"graph {name!r} is not in the catalog at {self.path!r}; "
                f"cataloged graphs: {known}"
            )
        return entry

    def entries(self) -> Dict[str, CatalogEntry]:
        """A snapshot of all entries, keyed by name."""
        with self._lock:
            return dict(self._manifest.entries)

    def resolve_db_path(self, entry: CatalogEntry) -> str:
        """The entry's database file as an absolute path (relative paths
        are anchored at the catalog directory, which makes a catalog that
        contains its database files relocatable).  A connection string
        (DSN-backed server entry) is no file at all and passes through
        unchanged."""
        if is_dsn(entry.db_path) or os.path.isabs(entry.db_path):
            return entry.db_path
        return os.path.join(self.path, entry.db_path)

    def normalize_db_path(self, db_path: str) -> str:
        """The manifest form of a caller-supplied ``db_path``: relative to
        the catalog directory when the file lives inside it (relocatable),
        absolute otherwise.  Callers resolve relative paths against their
        *cwd*, so the manifest must never store a cwd-relative path —
        :meth:`resolve_db_path` anchors at the catalog directory instead.
        Connection strings are stored verbatim — the server address is
        already location-independent."""
        if is_dsn(db_path):
            return db_path
        absolute = os.path.abspath(db_path)
        try:
            relative = os.path.relpath(absolute, self.path)
        except ValueError:  # pragma: no cover - Windows cross-drive paths
            return absolute
        if relative == os.curdir or relative.startswith(os.pardir):
            return absolute
        return relative

    # -- writing -----------------------------------------------------------------

    def put(self, entry: CatalogEntry) -> None:
        """Insert or replace ``entry`` and persist the manifest."""
        with self._mutate():
            self._manifest.entries[entry.name] = entry
            self._save()

    def remove(self, name: str) -> None:
        """Forget ``name`` and persist the manifest.

        Raises:
            CatalogEntryNotFoundError: when ``name`` is not cataloged.
        """
        with self._mutate():
            if name not in self._manifest.entries:
                raise CatalogEntryNotFoundError(
                    f"graph {name!r} is not in the catalog at {self.path!r}"
                )
            del self._manifest.entries[name]
            self._save()

    def mark_stale(self, name: str) -> None:
        """Flag ``name`` as stale (fingerprint mismatch) and persist, so
        every later attach fails fast until the entry is rebuilt."""
        with self._mutate():
            entry = self._manifest.entries.get(name)
            if entry is None:  # raced with a remove; nothing to mark
                return
            self._manifest.entries[name] = entry.touched(stale=True)
            self._save()

    def set_segtable(self, name: str,
                     record: Optional[SegTableRecord]) -> None:
        """Attach (or clear, with ``None``) SegTable metadata and persist.

        Raises:
            CatalogEntryNotFoundError: when ``name`` is not cataloged.
        """
        with self._mutate():
            entry = self._manifest.entries.get(name)
            if entry is None:
                raise CatalogEntryNotFoundError(
                    f"graph {name!r} is not in the catalog at {self.path!r}"
                )
            self._manifest.entries[name] = entry.touched(segtable=record)
            self._save()

    def get_calibration(self, backend: str) -> Optional[CalibrationRecord]:
        """The planner-calibration record persisted for ``backend``, or
        ``None``.  Callers must check the profile's host fingerprint —
        unit costs measured on another machine do not apply here."""
        with self._lock:
            return self._manifest.calibrations.get(backend.lower())

    def calibrations(self) -> Dict[str, CalibrationRecord]:
        """A snapshot of every persisted calibration record, by backend."""
        with self._lock:
            return dict(self._manifest.calibrations)

    def set_calibration(self, record: CalibrationRecord) -> None:
        """Persist (or replace) ``record`` under its backend name."""
        with self._mutate():
            self._manifest.calibrations[record.backend.lower()] = record
            self._save()

    def remove_calibration(self, backend: str) -> None:
        """Drop ``backend``'s calibration record (a no-op when absent)."""
        with self._mutate():
            if self._manifest.calibrations.pop(backend.lower(), None) is not None:
                self._save()

    def set_shard(self, name: str, shard: Optional[str]) -> None:
        """Stamp (or clear, with ``None``) the shard-ownership record on
        ``name``'s entry and persist.  A no-op when the record already
        matches, so routers re-opening an unchanged topology never rewrite
        the manifest.

        Raises:
            CatalogEntryNotFoundError: when ``name`` is not cataloged.
        """
        with self._mutate():
            entry = self._manifest.entries.get(name)
            if entry is None:
                raise CatalogEntryNotFoundError(
                    f"graph {name!r} is not in the catalog at {self.path!r}"
                )
            if entry.shard == shard:
                return
            self._manifest.entries[name] = entry.touched(shard=shard)
            self._save()

    def _refresh(self) -> None:
        """Re-parse the on-disk manifest (call with the lock held): every
        mutation applies to the freshest document, so another process's
        registrations are merged rather than overwritten."""
        if os.path.exists(self.manifest_path):
            self._manifest = load_manifest(self.manifest_path)
        else:
            self._manifest = Manifest()

    def _save(self) -> None:
        save_manifest(self._manifest, self.manifest_path)

    # -- maintenance -------------------------------------------------------------

    def reload(self) -> None:
        """Re-read the manifest from disk (picks up writes by other
        processes)."""
        with self._lock:
            self._refresh()

    def gc(self, remove_stale: bool = False) -> Tuple[str, ...]:
        """Drop entries whose database file vanished (and, with
        ``remove_stale=True``, entries flagged stale by a failed
        fingerprint check).  Returns the removed names."""
        removed: List[str] = []
        with self._mutate():
            for name, entry in list(self._manifest.entries.items()):
                db_path = self.resolve_db_path(entry)
                # A DSN entry is never "missing": server unreachability is
                # transient and typed (BackendConnectionError at attach),
                # not grounds for dropping the catalog entry.
                missing = not is_dsn(db_path) and not os.path.exists(db_path)
                if missing or (remove_stale and entry.stale):
                    del self._manifest.entries[name]
                    removed.append(name)
            if removed:
                self._save()
        return tuple(removed)

    def rebuild(self, name: str, lthd: Optional[float] = None,
                sql_style: Optional[str] = None,
                index_mode: Optional[str] = None) -> CatalogEntry:
        """Re-derive ``name``'s entry from its database file.

        This is the recovery path for a stale entry: the database file is
        the source of truth, so the graph is exported from it, the
        fingerprint and statistics recomputed, and — when the entry had a
        SegTable (or ``lthd`` is given) — the index rebuilt in place.
        Returns the refreshed entry.

        Raises:
            CatalogEntryNotFoundError: when ``name`` is not cataloged.
            ManifestError: when the database file is missing.
        """
        entry = self.get(name)
        db_path = self.resolve_db_path(entry)
        if not is_dsn(db_path) and not os.path.exists(db_path):
            raise ManifestError(
                f"cannot rebuild {name!r}: database file {db_path!r} is "
                f"missing (run gc to drop the entry)"
            )
        store = create_store(entry.backend, path=db_path,
                             buffer_capacity=entry.buffer_capacity)
        try:
            graph = store.export_graph()
            fingerprint = store.content_fingerprint()
            statistics = compute_statistics(graph)
            previous = entry.segtable
            threshold = lthd if lthd is not None else (
                previous.lthd if previous is not None else None)
            segtable: Optional[SegTableRecord] = None
            if threshold is not None:
                style = sql_style or (previous.sql_style if previous
                                      else "nsql")
                mode = index_mode or entry.index_mode
                build = _build_segtable(store, threshold, sql_style=style,
                                        index_mode=mode)
                segtable = SegTableRecord(lthd=threshold, sql_style=style,
                                          index_mode=mode, build=build,
                                          built_at=wall_time())
            refreshed = entry.touched(
                fingerprint=fingerprint,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                statistics=statistics,
                segtable=segtable,
                stale=False,
            )
        finally:
            store.close()
        self.put(refreshed)
        return refreshed


__all__ = ["Catalog"]
