"""The catalog manifest: a versioned, self-describing on-disk record.

One JSON document (``manifest.json`` inside the catalog directory)
describes every graph the catalog knows: where its database file lives,
which backend opens it, a content fingerprint to detect drift, the
serialized planner statistics, and — when built — the SegTable metadata
(threshold, table names, construction cost).  This is the classic
system-catalog pattern: the storage is self-describing, so a fresh process
can reattach everything without re-deriving it.

Writes are atomic (temp file + ``os.replace``), so a crash mid-save leaves
the previous manifest intact.  Unknown format versions and unreadable
documents raise :class:`~repro.errors.ManifestError` rather than guessing.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

_TEMP_COUNTER = 0
_TEMP_COUNTER_LOCK = threading.Lock()

from typing import TYPE_CHECKING

from repro.core.stats import SegTableBuildStats
from repro.errors import ManifestError
from repro.obs.clock import wall_time
from repro.graph.stats import GraphStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only; imported lazily at
    # runtime so the catalog layer does not pull in the whole service
    # package (which sits above it) at import time.
    from repro.service.costmodel import CostProfile

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

# SegTable relation names are fixed by the stores today, but the manifest
# records them anyway: a future backend (or a sidecar layout) can point the
# entry somewhere else without a format bump.
DEFAULT_OUT_TABLE = "TOutSegs"
DEFAULT_IN_TABLE = "TInSegs"


@dataclass(frozen=True)
class SegTableRecord:
    """Metadata of a materialized SegTable.

    Attributes:
        lthd: the build threshold (not recoverable from the tables).
        sql_style: SQL style the build ran with.
        index_mode: physical index mode of the segment tables.
        out_table: name of the forward segment relation.
        in_table: name of the backward segment relation.
        build: the construction statistics captured at build time — a
            warm-started session reports the offline cost it is reusing.
        built_at: UNIX timestamp of the build.
    """

    lthd: float
    sql_style: str = "nsql"
    index_mode: str = "clustered"
    out_table: str = DEFAULT_OUT_TABLE
    in_table: str = DEFAULT_IN_TABLE
    build: Optional[SegTableBuildStats] = None
    built_at: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "lthd": self.lthd,
            "sql_style": self.sql_style,
            "index_mode": self.index_mode,
            "out_table": self.out_table,
            "in_table": self.in_table,
            "build": None if self.build is None else self.build.as_dict(),
            "built_at": self.built_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegTableRecord":
        build = data.get("build")
        return cls(
            lthd=float(data["lthd"]),
            sql_style=str(data.get("sql_style", "nsql")),
            index_mode=str(data.get("index_mode", "clustered")),
            out_table=str(data.get("out_table", DEFAULT_OUT_TABLE)),
            in_table=str(data.get("in_table", DEFAULT_IN_TABLE)),
            build=None if build is None else SegTableBuildStats.from_dict(build),
            built_at=float(data.get("built_at", 0.0)),
        )


@dataclass(frozen=True)
class CalibrationRecord:
    """One backend's persisted planner-calibration profile.

    Keyed by backend name in the manifest; the profile inside carries the
    host fingerprint it was measured on, and a reattaching service ignores
    records from other hosts (unit costs do not travel between machines).

    Attributes:
        backend: backend-registry name the profile was measured for.
        profile: the measured unit costs and per-method biases.
        calibrated_at: UNIX timestamp of the probe run.
    """

    backend: str
    profile: "CostProfile"
    calibrated_at: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "profile": self.profile.as_dict(),
            "calibrated_at": self.calibrated_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CalibrationRecord":
        from repro.service.costmodel import CostProfile
        return cls(
            backend=str(data["backend"]),
            profile=CostProfile.from_dict(dict(data["profile"])),
            calibrated_at=float(data.get("calibrated_at", 0.0)),
        )


@dataclass(frozen=True)
class CatalogEntry:
    """One registered graph.

    Attributes:
        name: the graph's session name (manifest key).
        backend: backend-registry name that opens ``db_path``.
        db_path: backing database file (absolute, or relative to the
            catalog directory).
        fingerprint: content digest recorded at registration; a reattach
            that computes a different digest marks the entry stale.
        directed: whether the original graph was directed (informational —
            the stored edge set is always directed).
        index_mode: index strategy the graph was loaded with.
        buffer_capacity: buffer-pool page budget to reopen with.
        num_nodes / num_edges: stored counts (shown by the CLI).
        statistics: serialized planner statistics, so ``method="auto"``
            and ``explain()`` work immediately after a warm attach.
        segtable: SegTable metadata, ``None`` while unbuilt.
        shard: ownership record — the name of the shard that owns this
            graph, stamped by :class:`repro.shard.ShardRouter` when it
            adopts the catalog as a routing table (``None`` for graphs no
            router has claimed).  A rebalance (``ShardRouter.move``)
            rewrites it along with the entry's new home manifest.
        stale: set when a fingerprint check failed; stale entries refuse
            to attach until rebuilt or re-registered.
        created_at / updated_at: UNIX timestamps.
    """

    name: str
    backend: str
    db_path: str
    fingerprint: str
    directed: bool = True
    index_mode: str = "clustered"
    buffer_capacity: int = 256
    num_nodes: int = 0
    num_edges: int = 0
    statistics: Optional[GraphStatistics] = None
    segtable: Optional[SegTableRecord] = None
    shard: Optional[str] = None
    stale: bool = False
    created_at: float = field(default_factory=wall_time)
    updated_at: float = field(default_factory=wall_time)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "backend": self.backend,
            "db_path": self.db_path,
            "fingerprint": self.fingerprint,
            "directed": self.directed,
            "index_mode": self.index_mode,
            "buffer_capacity": self.buffer_capacity,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "statistics": None if self.statistics is None
            else self.statistics.as_dict(),
            "segtable": None if self.segtable is None
            else self.segtable.to_dict(),
            "shard": self.shard,
            "stale": self.stale,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CatalogEntry":
        statistics = data.get("statistics")
        segtable = data.get("segtable")
        return cls(
            name=str(data["name"]),
            backend=str(data["backend"]),
            db_path=str(data["db_path"]),
            fingerprint=str(data["fingerprint"]),
            directed=bool(data.get("directed", True)),
            index_mode=str(data.get("index_mode", "clustered")),
            buffer_capacity=int(data.get("buffer_capacity", 256)),
            num_nodes=int(data.get("num_nodes", 0)),
            num_edges=int(data.get("num_edges", 0)),
            statistics=None if statistics is None
            else GraphStatistics.from_dict(statistics),
            segtable=None if segtable is None
            else SegTableRecord.from_dict(segtable),
            shard=None if data.get("shard") is None
            else str(data["shard"]),
            stale=bool(data.get("stale", False)),
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
        )

    def touched(self, **changes: object) -> "CatalogEntry":
        """A copy with ``changes`` applied and ``updated_at`` refreshed."""
        return replace(self, updated_at=wall_time(), **changes)  # type: ignore[arg-type]


@dataclass
class Manifest:
    """The whole catalog document: a format version, named entries, and
    per-backend planner-calibration records."""

    version: int = MANIFEST_VERSION
    entries: Dict[str, CatalogEntry] = field(default_factory=dict)
    calibrations: Dict[str, CalibrationRecord] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "format_version": self.version,
            "graphs": {name: entry.to_dict()
                       for name, entry in sorted(self.entries.items())},
        }
        if self.calibrations:
            document["calibrations"] = {
                backend: record.to_dict()
                for backend, record in sorted(self.calibrations.items())
            }
        return document

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Manifest":
        version = data.get("format_version")
        if version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported catalog manifest version {version!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        graphs = data.get("graphs", {})
        if not isinstance(graphs, dict):
            raise ManifestError("catalog manifest 'graphs' must be an object")
        entries = {}
        for name, raw in graphs.items():
            try:
                entries[name] = CatalogEntry.from_dict(raw)
            except (KeyError, TypeError, ValueError) as exc:
                raise ManifestError(
                    f"catalog entry {name!r} is malformed: {exc}"
                ) from exc
        raw_calibrations = data.get("calibrations", {})
        if not isinstance(raw_calibrations, dict):
            raise ManifestError(
                "catalog manifest 'calibrations' must be an object"
            )
        calibrations = {}
        for backend, raw in raw_calibrations.items():
            try:
                calibrations[backend] = CalibrationRecord.from_dict(raw)
            except (KeyError, TypeError, ValueError) as exc:
                raise ManifestError(
                    f"calibration record {backend!r} is malformed: {exc}"
                ) from exc
        return cls(version=MANIFEST_VERSION, entries=entries,
                   calibrations=calibrations)


def load_manifest(path: str) -> Manifest:
    """Read and validate the manifest at ``path``.

    Raises:
        ManifestError: when the file is missing, unreadable, not valid
            JSON, or of an unsupported version.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ManifestError(f"no catalog manifest at {path!r}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(
            f"catalog manifest {path!r} is unreadable: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ManifestError(f"catalog manifest {path!r} is not a JSON object")
    return Manifest.from_dict(data)


def save_manifest(manifest: Manifest, path: str) -> None:
    """Atomically write ``manifest`` to ``path`` (temp file + rename), so a
    crash mid-save never corrupts the previous document.

    The temp name is unique per *writer* — pid, thread, and a counter —
    not just per process: two catalog handles flushing from different
    threads of one process must never scribble into the same temp file
    (the first ``os.replace`` would steal the second writer's bytes).
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    with _TEMP_COUNTER_LOCK:
        global _TEMP_COUNTER
        _TEMP_COUNTER += 1
        serial = _TEMP_COUNTER
    temp_path = (f"{path}.tmp.{os.getpid()}."
                 f"{threading.get_ident()}.{serial}")
    body = json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
    try:
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(body)
        os.replace(temp_path, path)
    finally:
        if os.path.exists(temp_path):  # pragma: no cover - error path
            os.remove(temp_path)


__all__ = [
    "CalibrationRecord",
    "CatalogEntry",
    "DEFAULT_IN_TABLE",
    "DEFAULT_OUT_TABLE",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Manifest",
    "SegTableRecord",
    "load_manifest",
    "save_manifest",
]
