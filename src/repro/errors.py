"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: storage-engine errors, relational-engine errors, and graph/search
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Graph substrate
# ---------------------------------------------------------------------------

class GraphError(ReproError):
    """Base class for graph construction and access errors."""


class NodeNotFoundError(GraphError):
    """A referenced node identifier does not exist in the graph."""


class NegativeWeightError(GraphError):
    """An edge weight is negative; Dijkstra-family algorithms require
    non-negative weights."""


class GraphFormatError(GraphError):
    """An edge-list or CSV file could not be parsed."""


# ---------------------------------------------------------------------------
# Storage engine
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage-engine errors."""


class PageError(StorageError):
    """A page-level invariant was violated (overflow, bad slot, bad id)."""


class PageFullError(PageError):
    """A record does not fit into the target page."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse: unpinning an unpinned page, no evictable frame."""


class DiskError(StorageError):
    """The disk manager could not read or write a page."""


class SerializationError(StorageError):
    """A row could not be encoded or decoded against its schema."""


# ---------------------------------------------------------------------------
# Index substrate
# ---------------------------------------------------------------------------

class IndexError_(StorageError):
    """Base class for index errors (named with a trailing underscore to avoid
    shadowing the built-in :class:`IndexError`)."""


class DuplicateKeyError(IndexError_):
    """A unique index rejected a duplicate key."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for relational-engine errors."""


class SchemaError(RelationalError):
    """A schema definition or row/schema mismatch error."""


class CatalogError(RelationalError):
    """Unknown table/index, or an attempt to redefine an existing one."""


class QueryError(RelationalError):
    """A logical or physical plan is malformed."""


class TypeMismatchError(RelationalError):
    """A value does not match the declared column type."""


class ConstraintViolationError(RelationalError):
    """A primary-key or unique constraint was violated."""


# ---------------------------------------------------------------------------
# Search / FEM core
# ---------------------------------------------------------------------------

class SearchError(ReproError):
    """Base class for path-search errors."""


class PathNotFoundError(SearchError):
    """No path exists between the requested source and target nodes."""


class InvalidQueryError(SearchError):
    """The shortest-path query itself is invalid (unknown node, bad method)."""


# ---------------------------------------------------------------------------
# Service layer (backend registry, sessions)
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for service-layer errors (registry, sessions, batches)."""


class UnknownBackendError(ServiceError, InvalidQueryError):
    """A backend name is not present in the backend registry.

    Also an :class:`InvalidQueryError` so legacy callers that guarded
    ``RelationalPathFinder(backend=...)`` with it keep working.
    """


class DuplicateBackendError(ServiceError):
    """A backend name is already registered (pass ``replace=True`` to
    overwrite it deliberately)."""


class UnknownGraphError(ServiceError):
    """A graph name is not hosted by the :class:`~repro.service.PathService`."""


class DuplicateGraphError(ServiceError):
    """A graph name is already hosted by the service."""


class ConcurrencyError(ServiceError):
    """Base class for store-pool and parallel-execution errors."""


class PoolClosedError(ConcurrencyError):
    """A checkout (or checkin) was attempted against a closed
    :class:`~repro.service.pool.StorePool`."""


class PoolTimeoutError(ConcurrencyError):
    """Waiting for a pooled store connection exceeded the caller's timeout
    (every member was checked out and the pool is at capacity)."""


class StoreCloneUnsupportedError(ConcurrencyError):
    """The store cannot produce a cheap reader clone of itself; the pool
    falls back to rehydrating a fresh replica from the hosted graph."""


class DeadlineExceededError(ServiceError):
    """A query's end-to-end time budget (``timeout_s``) ran out.

    Raised at whichever tier noticed first: waiting for a pooled store
    connection, between FEM iterations, on the serve wire before
    dispatch, or inside the router's failover loop.  The query may have
    done partial work; nothing partial is ever cached or used for
    planner training.  Retrying with a larger ``timeout_s`` (or none) is
    always safe — deadline expiry is a budget verdict, not a statement
    about the data."""


# ---------------------------------------------------------------------------
# Persistent session catalog
# ---------------------------------------------------------------------------

class PersistentCatalogError(ServiceError):
    """Base class for persistent-catalog errors (manifest, warm attach).

    Distinct from :class:`CatalogError`, which belongs to the mini
    relational engine's *table* catalog.
    """


class ManifestError(PersistentCatalogError):
    """The on-disk catalog manifest is missing, unreadable, or of an
    unsupported format version, or an entry references a database file
    that no longer exists."""


class CatalogEntryNotFoundError(PersistentCatalogError):
    """No catalog entry exists under the requested graph name."""


class FingerprintMismatchError(PersistentCatalogError):
    """The graph content on disk no longer matches the catalog entry's
    recorded fingerprint.  The entry is marked stale; re-register the graph
    or run ``python -m repro.catalog rebuild`` to re-derive it from the
    database file."""


class PersistenceUnsupportedError(PersistentCatalogError):
    """The store backend cannot persist (or re-export) its graph data, so
    it cannot participate in the session catalog."""


# ---------------------------------------------------------------------------
# Shard router (cross-service sharding)
# ---------------------------------------------------------------------------

class ShardError(ServiceError):
    """Base class for shard-router errors (routing, specs, rebalancing)."""


class ShardConflictError(ShardError):
    """Two shards claim ownership of the same graph name with *different*
    content fingerprints.  The router refuses to open (or to route) until
    one of the conflicting catalog entries is removed or rebuilt —
    silently picking a shard would answer queries against the wrong graph.

    Identical fingerprints are not a conflict: they are replicas, and the
    router deterministically routes to the first shard that lists one.
    """


class UnknownShardError(ShardError):
    """A shard name is not part of the router (or a graph name is routed
    to no shard at all)."""


class ShardUnavailableError(ShardError):
    """A shard could not be reached over its transport: connection refused,
    request timeout, or the server died mid-request.  Raised only for
    *transport-level* failures — query errors (unknown graph, unreachable
    pair, ...) propagate as themselves — so the router knows the query may
    be retried verbatim on an identical-fingerprint replica."""


class ServerOverloadedError(ShardUnavailableError):
    """A shard server shed this request under admission control: its
    in-flight gauge and wait queue were both full (``max_inflight`` /
    ``max_queue``).  Retryable by construction — the server answered, it
    just refused to take on more work — so it rides the
    :class:`ShardUnavailableError` machinery (client retries, router
    failover).  ``retry_after`` is the server's backoff hint in seconds;
    :class:`~repro.serve.client.ShardClient` sleeps at least that long
    before the next attempt."""

    def __init__(self, message: str = "server overloaded",
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RemoteProtocolError(ShardError):
    """A remote shard answered, but with a payload this client cannot
    interpret: malformed JSON, a missing field, or an error type that does
    not map back onto the :mod:`repro.errors` hierarchy.  Distinct from
    :class:`ShardUnavailableError` because retrying will not help — the
    two ends disagree about the protocol."""


# ---------------------------------------------------------------------------
# Client-server store backends (DB-API / PostgreSQL)
# ---------------------------------------------------------------------------

class StoreBackendError(ServiceError):
    """Base class for errors raised by client-server store backends (the
    DB-API family: PostgreSQL, the stdlib fallback server)."""


class BackendConnectionError(StoreBackendError, ShardUnavailableError):
    """The database *server* behind a store could not be reached — refused
    connection, dropped socket, server shutdown mid-statement.

    Also a :class:`ShardUnavailableError`: a shard whose backing database
    server is down is, from the router's point of view, an unavailable
    shard, so replica failover and :class:`~repro.serve.client.ShardClient`
    retry policies treat both identically."""


class BackendOperationalError(StoreBackendError):
    """The database server was reachable but rejected a statement (SQL
    error, constraint violation, permission problem).  Never retried —
    the statement itself is at fault, not the transport."""


class MissingDriverError(StoreBackendError):
    """The DSN requires a database driver that is not importable in this
    environment (e.g. ``postgresql://`` without ``psycopg`` installed).
    Hermetic environments use the ``fallback://`` stdlib server instead."""


class InvalidDSNError(StoreBackendError):
    """A connection string could not be parsed, or its scheme maps to no
    known driver."""
