"""Buffer pool: an LRU page cache with pin counts and statistics.

The buffer pool is the component the paper's buffer-size experiments
(Figures 8(b) and 9(g)) vary.  It caches :class:`SlottedPage` objects,
evicting the least-recently-used unpinned page when full and writing dirty
victims back through the :class:`DiskManager`.

Usage pattern::

    page = pool.fetch_page(page_id)      # pins the page
    ... read or modify page ...
    pool.unpin(page_id, dirty=True)      # release, marking it modified

or equivalently with the :meth:`BufferPool.page` context manager.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import BufferPoolError
from repro.storage.disk import DiskManager
from repro.storage.page import SlottedPage

DEFAULT_CAPACITY = 256
"""Default number of frames (pages) held in memory."""


@dataclass
class BufferPoolStats:
    """Counters describing buffer-pool behaviour during a run."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests served."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from memory (0.0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0


@dataclass
class _Frame:
    page: SlottedPage
    pin_count: int = 0
    dirty: bool = False


class BufferPool:
    """Fixed-capacity page cache with LRU replacement."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferPoolStats()
        self._frames: Dict[int, _Frame] = {}
        # LRU order for unpinned pages only; most recently used at the end.
        self._lru: "OrderedDict[int, None]" = OrderedDict()

    # -- page lifecycle -------------------------------------------------------

    def new_page(self) -> SlottedPage:
        """Allocate a fresh page on disk and return it pinned."""
        page_id = self.disk.allocate_page()
        page = SlottedPage(page_id, bytearray(self.disk.page_size))
        self._admit(page_id, _Frame(page=page, pin_count=1, dirty=True))
        return page

    def fetch_page(self, page_id: int) -> SlottedPage:
        """Return the page, reading it from disk on a miss, and pin it."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            frame.pin_count += 1
            self._lru.pop(page_id, None)
            return frame.page
        self.stats.misses += 1
        data = self.disk.read_page(page_id)
        page = SlottedPage(page_id, data)
        self._admit(page_id, _Frame(page=page, pin_count=1, dirty=False))
        return page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin on ``page_id``; mark it dirty when modified."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not resident")
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        frame.dirty = frame.dirty or dirty
        if frame.pin_count == 0:
            self._lru[page_id] = None

    @contextmanager
    def page(self, page_id: int, dirty: bool = False) -> Iterator[SlottedPage]:
        """Context manager: fetch, yield, then unpin the page."""
        page = self.fetch_page(page_id)
        try:
            yield page
        finally:
            self.unpin(page_id, dirty=dirty)

    # -- flushing and eviction -------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write a resident page back to disk if it is dirty."""
        frame = self._frames.get(page_id)
        if frame is None:
            return
        if frame.dirty:
            self.disk.write_page(page_id, frame.page.to_bytes())
            self.stats.dirty_writebacks += 1
            frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    def _admit(self, page_id: int, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = frame
        if frame.pin_count == 0:
            self._lru[page_id] = None

    def _evict_one(self) -> None:
        if not self._lru:
            raise BufferPoolError(
                "buffer pool is full and every page is pinned; "
                "increase the capacity or unpin pages"
            )
        victim_id, _ = self._lru.popitem(last=False)
        frame = self._frames.pop(victim_id)
        if frame.dirty:
            self.disk.write_page(victim_id, frame.page.to_bytes())
            self.stats.dirty_writebacks += 1
        self.stats.evictions += 1

    # -- management -------------------------------------------------------------

    def set_capacity(self, capacity: int) -> None:
        """Change the number of frames, evicting pages if shrinking."""
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self.capacity = capacity
        while len(self._frames) > self.capacity:
            self._evict_one()

    @property
    def num_resident(self) -> int:
        """Number of pages currently cached."""
        return len(self._frames)

    def reset_stats(self) -> None:
        """Clear buffer-pool and disk counters (between experiment phases)."""
        self.stats.reset()
        self.disk.reset_counters()

    def close(self) -> None:
        """Flush everything and close the underlying disk manager."""
        self.flush_all()
        self.disk.close()
