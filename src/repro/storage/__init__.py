"""Storage engine substrate: pages, disk manager, buffer pool and heap files.

The paper's experiments hinge on disk-resident graphs being accessed through
a database buffer (Figures 8(b) and 9(g) sweep the buffer size).  This
package provides that substrate:

* :class:`~repro.storage.disk.DiskManager` / ``InMemoryDiskManager`` — page
  allocation plus raw page read/write, with I/O counters.
* :class:`~repro.storage.page.SlottedPage` — the classic slotted page layout
  holding variable-length records.
* :class:`~repro.storage.buffer_pool.BufferPool` — a pin-count LRU buffer
  pool with hit/miss/eviction statistics.
* :class:`~repro.storage.heap_file.HeapFile` — an unordered record file built
  from slotted pages; tables in ``repro.rdb`` sit on top of it.
"""

from repro.storage.disk import DiskManager, FileDiskManager, InMemoryDiskManager, PAGE_SIZE
from repro.storage.page import RecordId, SlottedPage
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.heap_file import HeapFile
from repro.storage.serialization import RowSerializer

__all__ = [
    "PAGE_SIZE",
    "BufferPool",
    "BufferPoolStats",
    "DiskManager",
    "FileDiskManager",
    "HeapFile",
    "InMemoryDiskManager",
    "RecordId",
    "RowSerializer",
    "SlottedPage",
]
