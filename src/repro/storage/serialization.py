"""Row serialization: encode/decode Python tuples against a column layout.

Rows are stored in pages as opaque byte strings.  :class:`RowSerializer`
translates between a tuple of Python values and that byte string given the
column types declared in the table schema.

Encoding layout::

    +-------------+---------------------------------------------+
    | null bitmap |  column values, in schema order             |
    +-------------+---------------------------------------------+

* The null bitmap has one bit per column (rounded up to whole bytes).
* ``INTEGER`` columns are signed 64-bit little-endian.
* ``FLOAT`` columns are IEEE-754 doubles.
* ``TEXT`` columns are a uint16 length followed by UTF-8 bytes.
* ``NULL`` values occupy no payload bytes; only their bitmap bit is set.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.errors import SerializationError

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_LEN = struct.Struct("<H")

INTEGER = "INTEGER"
FLOAT = "FLOAT"
TEXT = "TEXT"

SUPPORTED_TYPES = (INTEGER, FLOAT, TEXT)


class RowSerializer:
    """Serialize and deserialize rows for a fixed sequence of column types."""

    def __init__(self, column_types: Sequence[str]) -> None:
        for column_type in column_types:
            if column_type not in SUPPORTED_TYPES:
                raise SerializationError(f"unsupported column type {column_type!r}")
        self.column_types: Tuple[str, ...] = tuple(column_types)
        self._bitmap_bytes = (len(self.column_types) + 7) // 8

    # -- encoding ---------------------------------------------------------------

    def encode(self, row: Sequence[object]) -> bytes:
        """Encode ``row`` (one value per column, ``None`` for NULL)."""
        if len(row) != len(self.column_types):
            raise SerializationError(
                f"row has {len(row)} values but the schema has "
                f"{len(self.column_types)} columns"
            )
        bitmap = bytearray(self._bitmap_bytes)
        payload = bytearray()
        for index, (value, column_type) in enumerate(zip(row, self.column_types)):
            if value is None:
                bitmap[index // 8] |= 1 << (index % 8)
                continue
            payload.extend(self._encode_value(value, column_type, index))
        return bytes(bitmap) + bytes(payload)

    def _encode_value(self, value: object, column_type: str, index: int) -> bytes:
        try:
            if column_type == INTEGER:
                return _INT.pack(int(value))
            if column_type == FLOAT:
                return _FLOAT.pack(float(value))
            text = str(value).encode("utf-8")
            if len(text) > 0xFFFF:
                raise SerializationError(
                    f"TEXT value in column {index} exceeds 65535 bytes"
                )
            return _LEN.pack(len(text)) + text
        except (struct.error, ValueError, TypeError) as exc:
            raise SerializationError(
                f"cannot encode {value!r} as {column_type} (column {index})"
            ) from exc

    # -- decoding ---------------------------------------------------------------

    def decode(self, data: bytes) -> Tuple[object, ...]:
        """Decode a byte string produced by :meth:`encode`."""
        if len(data) < self._bitmap_bytes:
            raise SerializationError("record shorter than its null bitmap")
        bitmap = data[: self._bitmap_bytes]
        offset = self._bitmap_bytes
        values: List[Optional[object]] = []
        for index, column_type in enumerate(self.column_types):
            is_null = bitmap[index // 8] & (1 << (index % 8))
            if is_null:
                values.append(None)
                continue
            value, offset = self._decode_value(data, offset, column_type, index)
            values.append(value)
        return tuple(values)

    def _decode_value(self, data: bytes, offset: int, column_type: str,
                      index: int) -> Tuple[object, int]:
        try:
            if column_type == INTEGER:
                return _INT.unpack_from(data, offset)[0], offset + _INT.size
            if column_type == FLOAT:
                return _FLOAT.unpack_from(data, offset)[0], offset + _FLOAT.size
            (length,) = _LEN.unpack_from(data, offset)
            start = offset + _LEN.size
            end = start + length
            if end > len(data):
                raise SerializationError("TEXT value runs past the record end")
            return data[start:end].decode("utf-8"), end
        except struct.error as exc:
            raise SerializationError(
                f"record truncated while decoding column {index} ({column_type})"
            ) from exc
