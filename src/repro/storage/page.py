"""Slotted-page layout for variable-length records.

Layout of a page (``page_size`` bytes)::

    +--------------------------+----------------------+ .... +-------------+
    | header (8 bytes)         | slot directory ->    | free | <- records  |
    +--------------------------+----------------------+ .... +-------------+

* Header: ``num_slots`` (uint16), ``free_end`` (uint16, offset one past the
  start of the record area), 4 reserved bytes.
* Slot directory: 4 bytes per slot — record ``offset`` (uint16) and
  ``length`` (uint16).  A slot with ``length == 0`` is a tombstone left by a
  deleted record; tombstones are reused by later inserts.
* Records grow from the end of the page toward the slot directory.

The page knows nothing about row schemas — it stores opaque byte strings.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import PageError, PageFullError

_HEADER = struct.Struct("<HHI")
_SLOT = struct.Struct("<HH")
HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


@dataclass(frozen=True, order=True)
class RecordId:
    """Physical address of a record: page id + slot number."""

    page_id: int
    slot: int


class SlottedPage:
    """A slotted page over a mutable byte buffer."""

    def __init__(self, page_id: int, data: Optional[bytearray] = None,
                 page_size: int = 4096) -> None:
        self.page_id = page_id
        if data is None:
            data = bytearray(page_size)
            _HEADER.pack_into(data, 0, 0, page_size, 0)
        if len(data) < HEADER_SIZE:
            raise PageError("page buffer smaller than the header")
        self.data = data
        self.page_size = len(data)
        num_slots, free_end, _ = _HEADER.unpack_from(data, 0)
        if free_end == 0:
            # Freshly zeroed buffer from the disk manager: initialize header.
            num_slots, free_end = 0, self.page_size
            self._write_header(num_slots, free_end)
        self._num_slots = num_slots
        self._free_end = free_end

    # -- header helpers ------------------------------------------------------

    def _write_header(self, num_slots: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, num_slots, free_end, 0)

    def _slot_offset(self, slot: int) -> int:
        return HEADER_SIZE + slot * SLOT_SIZE

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        if slot < 0 or slot >= self._num_slots:
            raise PageError(f"slot {slot} out of range on page {self.page_id}")
        return _SLOT.unpack_from(self.data, self._slot_offset(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_offset(slot), offset, length)

    # -- capacity ------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        """Number of slots in the directory (including tombstones)."""
        return self._num_slots

    @property
    def num_records(self) -> int:
        """Number of live records."""
        return sum(1 for slot in range(self._num_slots) if self._read_slot(slot)[1] > 0)

    def free_space(self) -> int:
        """Bytes available for a new record, assuming a new slot is needed."""
        directory_end = HEADER_SIZE + self._num_slots * SLOT_SIZE
        return max(0, self._free_end - directory_end)

    def can_insert(self, record_length: int) -> bool:
        """Whether a record of ``record_length`` bytes fits in this page."""
        if record_length <= 0:
            return False
        needs_new_slot = self._find_tombstone() is None
        needed = record_length + (SLOT_SIZE if needs_new_slot else 0)
        return self.free_space() >= needed

    def _find_tombstone(self) -> Optional[int]:
        for slot in range(self._num_slots):
            _, length = self._read_slot(slot)
            if length == 0:
                return slot
        return None

    # -- record operations ----------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert ``record`` and return its slot number.

        Raises:
            PageFullError: when the record does not fit.
            PageError: for empty records or records larger than a page.
        """
        length = len(record)
        if length == 0:
            raise PageError("cannot store an empty record")
        if length > self.page_size - HEADER_SIZE - SLOT_SIZE:
            raise PageError(f"record of {length} bytes can never fit in a page")
        if not self.can_insert(length):
            raise PageFullError(
                f"page {self.page_id} cannot fit a record of {length} bytes"
            )
        slot = self._find_tombstone()
        new_slot_needed = slot is None
        offset = self._free_end - length
        self.data[offset:offset + length] = record
        if new_slot_needed:
            slot = self._num_slots
            self._num_slots += 1
        self._free_end = offset
        self._write_slot(slot, offset, length)
        self._write_header(self._num_slots, self._free_end)
        return slot

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``.

        Raises:
            PageError: for tombstoned or out-of-range slots.
        """
        offset, length = self._read_slot(slot)
        if length == 0:
            raise PageError(f"slot {slot} on page {self.page_id} is empty")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone ``slot``; its space is reclaimed by :meth:`compact`."""
        offset, length = self._read_slot(slot)
        if length == 0:
            raise PageError(f"slot {slot} on page {self.page_id} already deleted")
        self._write_slot(slot, 0, 0)

    def update(self, slot: int, record: bytes) -> bool:
        """Overwrite the record in ``slot``.

        Returns ``True`` on success.  Returns ``False`` when the new record
        is larger than the old one and does not fit even after compaction; in
        that case the page is left unchanged and the caller should relocate
        the record.
        """
        offset, length = self._read_slot(slot)
        if length == 0:
            raise PageError(f"slot {slot} on page {self.page_id} is empty")
        new_length = len(record)
        if new_length == 0:
            raise PageError("cannot store an empty record")
        if new_length <= length:
            self.data[offset:offset + new_length] = record
            self._write_slot(slot, offset, new_length)
            return True
        # Try to place the longer record in free space, keeping the same slot.
        if self.free_space() >= new_length:
            new_offset = self._free_end - new_length
            self.data[new_offset:new_offset + new_length] = record
            self._free_end = new_offset
            self._write_slot(slot, new_offset, new_length)
            self._write_header(self._num_slots, self._free_end)
            return True
        self.compact()
        if self.free_space() + length >= new_length:
            # After compaction, temporarily drop the old copy then re-place.
            self._write_slot(slot, 0, 0)
            self.compact()
            new_offset = self._free_end - new_length
            self.data[new_offset:new_offset + new_length] = record
            self._free_end = new_offset
            self._write_slot(slot, new_offset, new_length)
            self._write_header(self._num_slots, self._free_end)
            return True
        return False

    def compact(self) -> None:
        """Slide live records to the end of the page, squeezing out holes."""
        live: List[Tuple[int, bytes]] = []
        for slot in range(self._num_slots):
            offset, length = self._read_slot(slot)
            if length > 0:
                live.append((slot, bytes(self.data[offset:offset + length])))
        free_end = self.page_size
        for slot, record in live:
            free_end -= len(record)
            self.data[free_end:free_end + len(record)] = record
            self._write_slot(slot, free_end, len(record))
        self._free_end = free_end
        self._write_header(self._num_slots, self._free_end)

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate over live ``(slot, record)`` pairs in slot order."""
        for slot in range(self._num_slots):
            offset, length = self._read_slot(slot)
            if length > 0:
                yield slot, bytes(self.data[offset:offset + length])

    def to_bytes(self) -> bytes:
        """Return the raw page image (exactly ``page_size`` bytes)."""
        return bytes(self.data)
