"""Disk managers: page allocation and raw page I/O.

Two implementations share the :class:`DiskManager` interface:

* :class:`FileDiskManager` stores pages in a single file on disk, one page
  per ``PAGE_SIZE``-byte slot.  It is the realistic backend used by the
  benchmarks, where buffer-pool misses translate into real file I/O.
* :class:`InMemoryDiskManager` keeps pages in a dictionary.  It is used by
  unit tests and by callers that only care about the *counted* I/O rather
  than its wall-clock cost.

Both count ``reads`` and ``writes`` so experiments can report logical I/O
independently of timing noise.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.errors import DiskError

PAGE_SIZE = 4096
"""Default page size in bytes (a common RDBMS default)."""


class DiskManager(ABC):
    """Interface for page-granularity storage."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        if page_size < 64:
            raise ValueError("page_size must be at least 64 bytes")
        self.page_size = page_size
        self.reads = 0
        self.writes = 0
        self._next_page_id = 0

    def allocate_page(self) -> int:
        """Allocate a new page and return its page id."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self._initialize_page(page_id)
        return page_id

    @property
    def num_pages(self) -> int:
        """Number of pages allocated so far."""
        return self._next_page_id

    def reset_counters(self) -> None:
        """Reset the read/write counters (used between experiment phases)."""
        self.reads = 0
        self.writes = 0

    @abstractmethod
    def _initialize_page(self, page_id: int) -> None:
        """Make the page readable (zero-filled) after allocation."""

    @abstractmethod
    def read_page(self, page_id: int) -> bytearray:
        """Return the current contents of ``page_id`` as a mutable buffer."""

    @abstractmethod
    def write_page(self, page_id: int, data: bytes) -> None:
        """Persist ``data`` (exactly ``page_size`` bytes) to ``page_id``."""

    @abstractmethod
    def close(self) -> None:
        """Release any underlying resources."""

    def _check_page_id(self, page_id: int) -> None:
        if page_id < 0 or page_id >= self._next_page_id:
            raise DiskError(f"page {page_id} was never allocated")

    def _check_data(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise DiskError(
                f"page write must be exactly {self.page_size} bytes, got {len(data)}"
            )


class InMemoryDiskManager(DiskManager):
    """Disk manager backed by a dictionary of byte buffers."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: Dict[int, bytearray] = {}

    def _initialize_page(self, page_id: int) -> None:
        self._pages[page_id] = bytearray(self.page_size)

    def read_page(self, page_id: int) -> bytearray:
        self._check_page_id(page_id)
        self.reads += 1
        return bytearray(self._pages[page_id])

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._check_data(data)
        self.writes += 1
        self._pages[page_id] = bytearray(data)

    def close(self) -> None:
        self._pages.clear()


class FileDiskManager(DiskManager):
    """Disk manager backed by a single file, one page per fixed-size slot."""

    def __init__(self, path: str, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, "w+b")

    def _initialize_page(self, page_id: int) -> None:
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)

    def read_page(self, page_id: int) -> bytearray:
        self._check_page_id(page_id)
        self.reads += 1
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise DiskError(f"short read for page {page_id}")
        return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._check_data(data)
        self.writes += 1
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def remove_file(self) -> None:
        """Close and delete the backing file (used by temporary databases)."""
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)


def open_disk(path: Optional[str] = None, page_size: int = PAGE_SIZE) -> DiskManager:
    """Open a disk manager: file-backed when ``path`` is given, else in-memory."""
    if path is None:
        return InMemoryDiskManager(page_size)
    return FileDiskManager(path, page_size)
