"""Heap file: an unordered collection of records spread over slotted pages.

A heap file owns a list of page ids.  Inserts go to the last page with room
(falling back to a fresh page), deletes tombstone the slot, and scans walk
the pages in allocation order through the buffer pool — so every access is
counted against the pool and the disk manager, which is what the paper's
I/O-centric experiments measure.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import PageFullError
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import RecordId


class HeapFile:
    """A bag of byte-string records stored in slotted pages."""

    def __init__(self, pool: BufferPool, name: str = "heap") -> None:
        self.pool = pool
        self.name = name
        self.page_ids: List[int] = []
        self._record_count = 0

    # -- mutation -----------------------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Insert ``record`` and return its :class:`RecordId`."""
        if self.page_ids:
            last_page_id = self.page_ids[-1]
            page = self.pool.fetch_page(last_page_id)
            try:
                slot = page.insert(record)
            except PageFullError:
                self.pool.unpin(last_page_id, dirty=False)
            else:
                self.pool.unpin(last_page_id, dirty=True)
                self._record_count += 1
                return RecordId(last_page_id, slot)
        page = self.pool.new_page()
        self.page_ids.append(page.page_id)
        try:
            slot = page.insert(record)
        finally:
            self.pool.unpin(page.page_id, dirty=True)
        self._record_count += 1
        return RecordId(page.page_id, slot)

    def read(self, rid: RecordId) -> bytes:
        """Return the record stored at ``rid``."""
        page = self.pool.fetch_page(rid.page_id)
        try:
            return page.read(rid.slot)
        finally:
            self.pool.unpin(rid.page_id, dirty=False)

    def delete(self, rid: RecordId) -> None:
        """Delete the record at ``rid``."""
        page = self.pool.fetch_page(rid.page_id)
        try:
            page.delete(rid.slot)
        finally:
            self.pool.unpin(rid.page_id, dirty=True)
        self._record_count -= 1

    def update(self, rid: RecordId, record: bytes) -> RecordId:
        """Update the record at ``rid``, relocating it when it no longer fits.

        Returns the (possibly new) :class:`RecordId`.
        """
        page = self.pool.fetch_page(rid.page_id)
        try:
            updated_in_place = page.update(rid.slot, record)
        finally:
            self.pool.unpin(rid.page_id, dirty=True)
        if updated_in_place:
            return rid
        self.delete(rid)
        return self.insert(record)

    # -- access ---------------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RecordId, bytes]]:
        """Iterate over all live records as ``(rid, record_bytes)`` pairs."""
        for page_id in self.page_ids:
            page = self.pool.fetch_page(page_id)
            try:
                rows = list(page.records())
            finally:
                self.pool.unpin(page_id, dirty=False)
            for slot, record in rows:
                yield RecordId(page_id, slot), record

    def __len__(self) -> int:
        return self._record_count

    @property
    def num_pages(self) -> int:
        """Number of pages owned by this heap file."""
        return len(self.page_ids)

    def truncate(self) -> None:
        """Delete every record (pages are kept and reused)."""
        for page_id in self.page_ids:
            page = self.pool.fetch_page(page_id)
            try:
                for slot, _record in list(page.records()):
                    page.delete(slot)
                page.compact()
            finally:
                self.pool.unpin(page_id, dirty=True)
        self._record_count = 0
