"""Seeded Zipf-skewed traffic generation.

Real query traffic is nothing like uniform sampling: a few (source,
target) pairs dominate (navigation between hub locations, repeated API
calls), some graphs are far more popular than others, and the read mix
spans full shortest-path queries, bounded-hop lookups, and cheap
reachability probes.  :class:`TrafficGenerator` models exactly that —
and nothing else: every draw comes from one ``random.Random(seed)``, so
the same config always produces the same query stream, byte for byte.
That determinism is what lets the load-test harness double as a
regression gate (a failing run is reproducible by seed alone).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidQueryError
from repro.service.planner import (
    KIND_BOUNDED_HOP,
    KIND_PATH,
    KIND_REACHABILITY,
    QUERY_KINDS,
)

DEFAULT_KIND_MIX: Mapping[str, float] = {
    KIND_PATH: 0.70,
    KIND_REACHABILITY: 0.20,
    KIND_BOUNDED_HOP: 0.10,
}
"""Default read mix: mostly full paths, some reachability probes, a few
bounded-hop lookups — the shape of a navigation-style service."""


@dataclass(frozen=True)
class TrafficQuery:
    """One generated query.

    Attributes:
        graph: target graph name.
        source / target: endpoint node ids.
        kind: one of :data:`~repro.service.planner.QUERY_KINDS`.
        max_hops: hop budget, set iff ``kind == "bounded_hop"``.
        hot: whether the pair came from the graph's hot-pair pool
            (Zipf head) rather than the uniform cold tail.
    """

    graph: str
    source: int
    target: int
    kind: str = KIND_PATH
    max_hops: Optional[int] = None
    hot: bool = True


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one traffic profile.

    Attributes:
        seed: the PRNG seed; the *only* source of randomness.
        zipf_s: Zipf exponent for the hot-pair rank distribution —
            pair at rank ``r`` is drawn with weight ``1 / (r + 1)**s``.
            Higher = more skew; ``1.0`` is classic Zipf.
        hot_pairs: size of the per-graph hot-pair pool (the Zipf head).
        cold_fraction: probability that a query bypasses the hot pool
            and draws a uniform random pair instead (the long tail).
        kind_mix: query kind → relative weight; normalized internally.
        graph_weights: graph name → relative popularity; ``None`` means
            uniform across the generator's graphs.
        max_hops_range: inclusive ``(low, high)`` hop budgets for
            ``bounded_hop`` queries.
    """

    seed: int = 0
    zipf_s: float = 1.1
    hot_pairs: int = 16
    cold_fraction: float = 0.1
    kind_mix: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_MIX))
    graph_weights: Optional[Mapping[str, float]] = None
    max_hops_range: Tuple[int, int] = (2, 6)

    def __post_init__(self) -> None:
        if self.zipf_s <= 0:
            raise InvalidQueryError(
                f"zipf_s must be positive; got {self.zipf_s}")
        if self.hot_pairs < 1:
            raise InvalidQueryError(
                f"hot_pairs must be at least 1; got {self.hot_pairs}")
        if not 0.0 <= self.cold_fraction <= 1.0:
            raise InvalidQueryError(
                f"cold_fraction must be in [0, 1]; got {self.cold_fraction}")
        if not self.kind_mix:
            raise InvalidQueryError("kind_mix must not be empty")
        for kind, weight in self.kind_mix.items():
            if kind not in QUERY_KINDS:
                raise InvalidQueryError(
                    f"unknown query kind {kind!r} in kind_mix; expected "
                    f"one of {QUERY_KINDS}")
            if weight < 0:
                raise InvalidQueryError(
                    f"kind_mix weight for {kind!r} must be >= 0; "
                    f"got {weight}")
        if sum(self.kind_mix.values()) <= 0:
            raise InvalidQueryError("kind_mix weights must sum to > 0")
        low, high = self.max_hops_range
        if low < 1 or high < low:
            raise InvalidQueryError(
                f"max_hops_range must satisfy 1 <= low <= high; "
                f"got {self.max_hops_range}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form, embedded in traffic-report artifacts so a
        run's exact profile travels with its numbers."""
        return {
            "seed": self.seed,
            "zipf_s": self.zipf_s,
            "hot_pairs": self.hot_pairs,
            "cold_fraction": self.cold_fraction,
            "kind_mix": dict(self.kind_mix),
            "graph_weights": (None if self.graph_weights is None
                              else dict(self.graph_weights)),
            "max_hops_range": list(self.max_hops_range),
        }


class TrafficGenerator:
    """A deterministic stream of :class:`TrafficQuery` objects.

    Args:
        config: the traffic profile.
        nodes_of: graph name → that graph's node ids (any sequence; it is
            sorted internally so dict/set iteration order cannot leak
            nondeterminism into the stream).

    The hot-pair pool of each graph is drawn once at construction; rank
    ``r`` in the pool is then sampled with Zipf weight
    ``1 / (r + 1)**zipf_s``, so pool order *is* popularity order.
    """

    def __init__(self, config: TrafficConfig,
                 nodes_of: Mapping[str, Sequence[int]]) -> None:
        if not nodes_of:
            raise InvalidQueryError(
                "TrafficGenerator needs at least one graph")
        self.config = config
        self._rng = random.Random(config.seed)
        self._graphs: List[str] = sorted(nodes_of)
        self._nodes: Dict[str, List[int]] = {}
        for name in self._graphs:
            nodes = sorted(nodes_of[name])
            if len(nodes) < 2:
                raise InvalidQueryError(
                    f"graph {name!r} needs at least 2 nodes to draw "
                    f"query pairs")
            self._nodes[name] = nodes
        if config.graph_weights is not None:
            missing = set(self._graphs) - set(config.graph_weights)
            if missing:
                raise InvalidQueryError(
                    f"graph_weights is missing {sorted(missing)}")
            self._graph_weights = [float(config.graph_weights[name])
                                   for name in self._graphs]
        else:
            self._graph_weights = [1.0] * len(self._graphs)
        self._kinds = sorted(config.kind_mix)
        self._kind_weights = [float(config.kind_mix[kind])
                              for kind in self._kinds]
        # Hot pools are drawn AFTER the weights are fixed so two configs
        # differing only in weights still share the same pools.
        self._hot: Dict[str, List[Tuple[int, int]]] = {
            name: self._draw_hot_pool(name) for name in self._graphs}
        self._zipf_weights = [1.0 / float(rank + 1) ** config.zipf_s
                              for rank in range(config.hot_pairs)]

    def _draw_hot_pool(self, graph: str) -> List[Tuple[int, int]]:
        nodes = self._nodes[graph]
        pool: List[Tuple[int, int]] = []
        seen = set()
        attempts = 0
        limit = 50 * self.config.hot_pairs
        while len(pool) < self.config.hot_pairs and attempts < limit:
            attempts += 1
            pair = self._draw_pair(nodes)
            if pair not in seen:
                seen.add(pair)
                pool.append(pair)
        return pool

    def _draw_pair(self, nodes: List[int]) -> Tuple[int, int]:
        source = self._rng.choice(nodes)
        target = self._rng.choice(nodes)
        while target == source:
            target = self._rng.choice(nodes)
        return source, target

    def hot_pool(self, graph: str) -> Tuple[Tuple[int, int], ...]:
        """The graph's hot pairs in popularity (rank) order."""
        return tuple(self._hot[graph])

    def next_query(self) -> TrafficQuery:
        """Draw the next query of the stream."""
        config = self.config
        graph = self._rng.choices(self._graphs,
                                  weights=self._graph_weights)[0]
        hot = self._rng.random() >= config.cold_fraction
        if hot:
            pool = self._hot[graph]
            rank = self._rng.choices(range(len(pool)),
                                     weights=self._zipf_weights[:len(pool)])[0]
            source, target = pool[rank]
        else:
            source, target = self._draw_pair(self._nodes[graph])
        kind = self._rng.choices(self._kinds,
                                 weights=self._kind_weights)[0]
        max_hops = None
        if kind == KIND_BOUNDED_HOP:
            low, high = config.max_hops_range
            max_hops = self._rng.randint(low, high)
        return TrafficQuery(graph=graph, source=source, target=target,
                            kind=kind, max_hops=max_hops, hot=hot)

    def queries(self, count: int) -> Iterator[TrafficQuery]:
        """Yield the next ``count`` queries of the stream."""
        if count < 0:
            raise InvalidQueryError(f"count must be >= 0; got {count}")
        for _ in range(count):
            yield self.next_query()


__all__ = [
    "DEFAULT_KIND_MIX",
    "TrafficConfig",
    "TrafficGenerator",
    "TrafficQuery",
]
