"""Production-style traffic workloads for FEM query services.

Where :mod:`repro.workloads` reproduces the *paper's* evaluation (uniform
random pairs, averages per method), this package models what a deployed
path service actually sees: Zipf-skewed traffic with hot pairs, a mix of
query kinds (``path`` / ``bounded_hop`` / ``reachability``), and several
graphs of different popularity — then measures the service like an SRE
would (latency percentiles, throughput, error rate) instead of like a
benchmark table.

Three pieces:

* :class:`TrafficGenerator` — a seeded, fully deterministic query stream
  (``seed in → identical queries out``, no wall clock anywhere);
* :func:`run_traffic` — drives any ``shortest_path``-shaped target
  (:class:`~repro.service.session.PathService` or
  :class:`~repro.shard.router.ShardRouter`), differentially verifies
  every answer against the in-memory reference, and produces a
  :class:`TrafficReport` of percentiles plus cache/failover snapshots;
* :class:`SLO` — declared latency/correctness objectives checked against
  a report, yielding an explicit violation list for CI gates.
"""

from repro.workload.generator import (
    DEFAULT_KIND_MIX,
    TrafficConfig,
    TrafficGenerator,
    TrafficQuery,
)
from repro.workload.harness import TrafficReport, run_traffic
from repro.workload.slo import SLO

__all__ = [
    "DEFAULT_KIND_MIX",
    "SLO",
    "TrafficConfig",
    "TrafficGenerator",
    "TrafficQuery",
    "TrafficReport",
    "run_traffic",
]
