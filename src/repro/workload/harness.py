"""The traffic harness: drive a service, verify every answer, report SLOs.

:func:`run_traffic` plays a :class:`~repro.workload.generator.TrafficGenerator`
stream against anything with the ``shortest_path(source, target, graph=,
kind=, max_hops=)`` surface — a local
:class:`~repro.service.session.PathService` or a (possibly networked)
:class:`~repro.shard.router.ShardRouter` — and measures it the way a
production load test would:

* per-query wall latency, aggregated into p50/p95/p99 (nearest-rank,
  deterministic) overall and per query kind;
* **differential verification of every single answer** against the
  in-memory reference (binary-heap Dijkstra for ``path``, BFS hop layers
  for ``bounded_hop``/``reachability``) — a wrong distance, wrong hop
  count, or wrong reachability verdict is a ``wrong_answer``, full stop;
* cache and failover snapshots from whatever the target exposes
  (``cache_info`` / ``shared_cache_info`` / ``shard_health``), so a
  report of a failover run carries its own story.

Transport errors (a dead shard with no replica left) are *counted*, not
raised — the harness keeps streaming, which is what lets the
fault-injection tests kill a server mid-run and assert on the aftermath.
Deadline expiries and load sheds are split out into their own report
counters (they are *policy* outcomes, not failures of the same kind as a
dead transport), and **chaos mode** — a per-query ``chaos`` hook plus an
armed :class:`~repro.faults.FaultPlan` whose firing record lands in
``report.faults`` — turns the same loop into the chaos harness behind
``bench_chaos_slo``.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    PathNotFoundError,
    ReproError,
    ServerOverloadedError,
)
from repro.graph.model import Graph
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.obs import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry, timer
from repro.obs.schema import (
    METRIC_TRAFFIC_ERRORS,
    METRIC_TRAFFIC_LATENCY_MS,
    METRIC_TRAFFIC_NOT_FOUND,
    METRIC_TRAFFIC_QUERIES,
    METRIC_TRAFFIC_WRONG,
)
from repro.service.planner import KIND_PATH
from repro.workload.generator import TrafficGenerator, TrafficQuery

MAX_WRONG_SAMPLES = 10
"""At most this many wrong answers are described verbatim in the report
(the count is always exact; the samples keep artifacts bounded)."""


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list.

    Deterministic and interpolation-free, so two runs with identical
    latency lists report identical percentiles.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100]; got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def _summarize(latencies_ms: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies_ms)
    if not ordered:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0}
    return {
        "count": len(ordered),
        "p50": round(percentile(ordered, 50.0), 3),
        "p95": round(percentile(ordered, 95.0), 3),
        "p99": round(percentile(ordered, 99.0), 3),
        "mean": round(sum(ordered) / len(ordered), 3),
        "max": round(ordered[-1], 3),
    }


def _summarize_registry(registry: MetricsRegistry,
                        labels: Optional[Dict[str, str]] = None
                        ) -> Dict[str, float]:
    """The report's latency summary, read from the registry's traffic
    histogram (merged across kinds when ``labels`` is ``None``).

    Same keys as :func:`_summarize`; percentiles are the histogram's
    bucket-interpolated estimates (max-clamped, deterministic) instead of
    nearest-rank over a raw list — the histogram IS the record now.
    """
    summary = registry.summary(METRIC_TRAFFIC_LATENCY_MS, labels)
    return {
        "count": int(summary["count"]),
        "p50": round(summary["p50"], 3),
        "p95": round(summary["p95"], 3),
        "p99": round(summary["p99"], 3),
        "mean": round(summary["mean"], 3),
        "max": round(summary["max"], 3),
    }


@dataclass
class TrafficReport:
    """Everything one traffic run produced, JSON-ready.

    Attributes:
        total: queries issued.
        per_kind: kind → query count.
        hot_queries: queries drawn from the Zipf head.
        not_found: correctly-unreachable answers (a normal outcome).
        wrong_answers: answers that contradicted the reference oracle.
        wrong_samples: up to :data:`MAX_WRONG_SAMPLES` wrong-answer
            descriptions (query coordinates, expected vs. got).
        errors: queries that raised (transport failures included).
        error_samples: up to :data:`MAX_WRONG_SAMPLES` error messages.
        deadline_exceeded: errored queries whose error was a deadline
            expiry (a policy outcome; included in ``errors``).
        shed: errored queries the server refused under overload with a
            typed retryable shed (included in ``errors``).
        elapsed_s: wall-clock seconds of the whole stream.
        qps: ``total / elapsed_s``.
        latency_ms: overall latency summary (count/p50/p95/p99/mean/max).
        per_kind_latency_ms: the same summary per query kind.
        cache: cache-counter snapshot from the target, when it has one.
        failover: shard-health snapshot from the target, when it has one.
        faults: the armed fault plan's firing record (ops intercepted,
            faults fired), when the run passed one.
        config: the generator config this stream was drawn from.
        slo: filled by :meth:`SLO.apply` — declared objectives,
            violations, and the overall verdict.
    """

    total: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)
    hot_queries: int = 0
    not_found: int = 0
    wrong_answers: int = 0
    wrong_samples: List[Dict[str, object]] = field(default_factory=list)
    errors: int = 0
    error_samples: List[str] = field(default_factory=list)
    deadline_exceeded: int = 0
    shed: int = 0
    elapsed_s: float = 0.0
    qps: float = 0.0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    per_kind_latency_ms: Dict[str, Dict[str, float]] = field(
        default_factory=dict)
    cache: Optional[Dict[str, object]] = None
    failover: Optional[Dict[str, object]] = None
    faults: Optional[Dict[str, object]] = None
    config: Optional[Dict[str, object]] = None
    slo: Optional[Dict[str, object]] = None

    @property
    def error_rate(self) -> float:
        """Errored fraction of the stream (0.0 on an empty stream)."""
        return self.errors / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["error_rate"] = round(self.error_rate, 6)
        return data

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document (the CI artifact format)."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


class _ReferenceOracle:
    """Pure in-memory answers to check the service against.

    ``path`` answers come from the binary-heap Dijkstra reference;
    hop-kind answers from a memoized BFS layering per (graph, source) —
    hop distance is exactly what
    :func:`~repro.core.multi.hop_limited_search` reports as ``distance``.
    """

    def __init__(self, graphs: Mapping[str, Graph]) -> None:
        self._graphs = dict(graphs)
        self._hops: Dict[Tuple[str, int], Dict[int, int]] = {}

    def hop_distances(self, graph: str, source: int) -> Dict[int, int]:
        key = (graph, source)
        cached = self._hops.get(key)
        if cached is not None:
            return cached
        model = self._graphs[graph]
        hops = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, _cost in model.out_edges(node):
                if neighbor not in hops:
                    hops[neighbor] = hops[node] + 1
                    queue.append(neighbor)
        self._hops[key] = hops
        return hops

    def expected(self, query: TrafficQuery) -> Optional[float]:
        """The expected ``distance`` (weighted for ``path``, hop count
        otherwise), or ``None`` when the pair should be unreachable
        under the query's kind and hop budget."""
        if query.kind == KIND_PATH:
            try:
                return dijkstra_shortest_path(
                    self._graphs[query.graph], query.source,
                    query.target).distance
            except PathNotFoundError:
                return None
        hops = self.hop_distances(query.graph, query.source).get(
            query.target)
        if hops is None:
            return None
        if query.max_hops is not None and hops > query.max_hops:
            return None
        return float(hops)


def _snapshot(value: object) -> Optional[Dict[str, object]]:
    if value is None:
        return None
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, dict):
        return dict(value)
    return None


def _cache_snapshot(target: object) -> Optional[Dict[str, object]]:
    snapshot: Dict[str, object] = {}
    info = getattr(target, "cache_info", None)
    if callable(info):
        local = _snapshot(info())
        if local is not None:
            snapshot["local"] = local
    shared = getattr(target, "shared_cache_info", None)
    if callable(shared):
        cross = _snapshot(shared())
        if cross is not None:
            snapshot["shared"] = cross
    return snapshot or None


def _failover_snapshot(target: object) -> Optional[Dict[str, object]]:
    health = getattr(target, "shard_health", None)
    if callable(health):
        return dict(health())
    return None


def run_traffic(target: object, generator: TrafficGenerator, count: int, *,
                reference: Optional[Mapping[str, Graph]] = None,
                interrupt_at: Optional[int] = None,
                interrupt: Optional[Callable[[], object]] = None,
                chaos: Optional[Callable[[int], object]] = None,
                fault_plan: Optional[object] = None,
                registry: Optional[MetricsRegistry] = None
                ) -> TrafficReport:
    """Stream ``count`` generated queries against ``target``.

    Args:
        target: anything exposing ``shortest_path(source, target, graph=,
            kind=, max_hops=)`` — a :class:`PathService`, a
            :class:`ShardRouter`, or a compatible test double.
        generator: the seeded query stream.
        count: how many queries to issue.
        reference: graph name → in-memory :class:`Graph` for differential
            verification.  When given, **every** answer is checked; a
            mismatch increments ``wrong_answers`` (it never raises — the
            report is the verdict).  When omitted, answers are taken on
            faith and only errors/latency are measured.
        interrupt_at: 0-based query index before which ``interrupt`` is
            invoked once — the fault-injection hook ("kill the server
            after 40 queries").
        interrupt: the callable to invoke at ``interrupt_at``.
        chaos: chaos-mode hook, invoked with the 0-based query index
            before *every* query (after any one-shot ``interrupt``) —
            the place to kill/restart servers, rearm fault plans, or
            flip load on a schedule.  Exceptions it raises propagate:
            the chaos script is part of the experiment, not the system
            under test.
        fault_plan: an armed :class:`~repro.faults.FaultPlan` (already
            installed on the seams under test); its firing record is
            snapshotted into ``report.faults`` at end of run.
        registry: the :class:`~repro.obs.MetricsRegistry` the run
            publishes into (latency histograms per kind, query/outcome
            counters).  Defaults to a fresh registry, so the report's
            summaries describe exactly this run; pass a shared one to
            accumulate across runs (the summaries then cover the
            registry's whole lifetime).

    Returns:
        The filled :class:`TrafficReport` (``slo`` left ``None``; apply
        an :class:`~repro.workload.slo.SLO` to fill it).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0; got {count}")
    if (interrupt_at is None) != (interrupt is None):
        raise ValueError("interrupt_at and interrupt go together")
    oracle = None if reference is None else _ReferenceOracle(reference)
    registry = registry if registry is not None else MetricsRegistry()
    report = TrafficReport(config=generator.config.as_dict())
    started = timer()
    for index, query in enumerate(generator.queries(count)):
        if interrupt is not None and index == interrupt_at:
            interrupt()
        if chaos is not None:
            chaos(index)
        report.total += 1
        report.per_kind[query.kind] = report.per_kind.get(query.kind, 0) + 1
        registry.counter(METRIC_TRAFFIC_QUERIES, {"kind": query.kind}).inc()
        if query.hot:
            report.hot_queries += 1
        call = timer()
        result = None
        failed = False
        try:
            result = target.shortest_path(  # type: ignore[attr-defined]
                query.source, query.target, graph=query.graph,
                kind=query.kind, max_hops=query.max_hops)
        except PathNotFoundError:
            report.not_found += 1
            registry.counter(METRIC_TRAFFIC_NOT_FOUND).inc()
        except ReproError as exc:
            failed = True
            report.errors += 1
            if isinstance(exc, DeadlineExceededError):
                report.deadline_exceeded += 1
            elif isinstance(exc, ServerOverloadedError):
                report.shed += 1
            registry.counter(METRIC_TRAFFIC_ERRORS).inc()
            if len(report.error_samples) < MAX_WRONG_SAMPLES:
                report.error_samples.append(
                    f"{type(exc).__name__}: {exc}")
        registry.histogram(
            METRIC_TRAFFIC_LATENCY_MS, {"kind": query.kind},
            buckets=DEFAULT_LATENCY_BUCKETS_MS).observe(call.seconds * 1000.0)
        if oracle is None or failed:
            continue
        expected = oracle.expected(query)
        got = None if result is None else result.distance
        if expected == got:
            continue
        report.wrong_answers += 1
        registry.counter(METRIC_TRAFFIC_WRONG).inc()
        if len(report.wrong_samples) < MAX_WRONG_SAMPLES:
            report.wrong_samples.append({
                "graph": query.graph, "source": query.source,
                "target": query.target, "kind": query.kind,
                "max_hops": query.max_hops,
                "expected": expected, "got": got,
            })
    report.elapsed_s = round(started.seconds, 4)
    report.qps = round(report.total / report.elapsed_s, 2) \
        if report.elapsed_s else 0.0
    report.latency_ms = _summarize_registry(registry)
    report.per_kind_latency_ms = {
        str(labels["kind"]): _summarize_registry(registry, labels)
        for labels in sorted(
            registry.histogram_labels(METRIC_TRAFFIC_LATENCY_MS),
            key=lambda labels: str(labels.get("kind", "")))}
    report.cache = _cache_snapshot(target)
    report.failover = _failover_snapshot(target)
    plan_summary = getattr(fault_plan, "as_dict", None)
    if callable(plan_summary):
        report.faults = plan_summary()
    return report


__all__ = [
    "MAX_WRONG_SAMPLES",
    "TrafficReport",
    "percentile",
    "run_traffic",
]
