"""Declared service-level objectives and their verdicts.

An :class:`SLO` is the contract a traffic run is graded against: latency
percentiles, error rate, correctness (wrong answers are never budgeted
by default), and optionally a throughput floor.  :meth:`SLO.apply`
stamps the verdict into a :class:`~repro.workload.harness.TrafficReport`
so the CI artifact carries objectives, violations, and the pass/fail
bit together — a regression reads straight out of the JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workload.harness import TrafficReport


@dataclass(frozen=True)
class SLO:
    """Objectives for one traffic run.

    ``None`` disables a latency/throughput objective; correctness and
    error-rate objectives always apply (default: zero wrong answers,
    zero errors).

    Attributes:
        p50_ms / p95_ms / p99_ms: latency ceilings in milliseconds.
        max_error_rate: highest tolerated errored fraction of the stream
            (transport failures during fault injection, for example).
        max_wrong_answers: highest tolerated count of answers
            contradicting the differential reference.  Leave at 0 —
            wrong answers are correctness bugs, not capacity problems.
        min_qps: throughput floor (queries per second), rarely useful on
            shared CI runners; prefer latency objectives.
    """

    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    max_error_rate: float = 0.0
    max_wrong_answers: int = 0
    min_qps: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_error_rate": self.max_error_rate,
            "max_wrong_answers": self.max_wrong_answers,
            "min_qps": self.min_qps,
        }

    def check(self, report: TrafficReport) -> List[str]:
        """Every violated objective, as human-readable strings (empty =
        the run met the SLO)."""
        violations: List[str] = []
        for name, ceiling in (("p50", self.p50_ms), ("p95", self.p95_ms),
                              ("p99", self.p99_ms)):
            if ceiling is None:
                continue
            observed = float(report.latency_ms.get(name, 0.0))
            if observed > ceiling:
                violations.append(
                    f"latency {name} {observed:.3f}ms exceeds the "
                    f"{ceiling:.3f}ms objective")
        if report.wrong_answers > self.max_wrong_answers:
            violations.append(
                f"{report.wrong_answers} wrong answers exceed the budget "
                f"of {self.max_wrong_answers}")
        if report.error_rate > self.max_error_rate:
            violations.append(
                f"error rate {report.error_rate:.4f} exceeds the "
                f"{self.max_error_rate:.4f} objective "
                f"({report.errors}/{report.total} queries)")
        if self.min_qps is not None and report.qps < self.min_qps:
            violations.append(
                f"throughput {report.qps:.2f} qps is below the "
                f"{self.min_qps:.2f} qps floor")
        return violations

    def apply(self, report: TrafficReport) -> bool:
        """Check ``report`` and stamp the verdict into ``report.slo``;
        returns whether every objective was met."""
        violations = self.check(report)
        report.slo = {
            "declared": self.as_dict(),
            "violations": violations,
            "met": not violations,
        }
        return not violations


__all__ = ["SLO"]
