"""Shared-frontier FEM variants beyond single-pair shortest path.

The paper's F/E/M operators compose into more than the Listing 2-4
drivers (its Section 6 generality point).  This module adds the three
workload kinds the service layer plans and serves:

* :func:`dijkstra_one_to_many` — one DJ frontier expansion answering a
  whole set of same-source targets.  Dijkstra's finalization sequence is
  target-independent, so the shared run finalizes nodes in exactly the
  order a per-pair DJ would; every answered pair is **bit-identical**
  (distance *and* path) to running DJ on that pair alone.
* :func:`hop_limited_search` — fewest-hops paths within a hop budget
  (``kind="bounded_hop"``): layered set-at-a-time BFS over the same
  TVisited relation, one :meth:`~repro.core.store.base.GraphStore.expand_hops`
  statement per layer, edge weights ignored, distance = hop count.
* the same driver unbounded is the reachability fast path
  (``kind="reachability"``): no weighted-distance bookkeeping — no
  ``TOP 1`` priority probe, no min-cost statements — just whole-layer
  frontier sweeps until the target appears or the frontier dries up.

The hop driver is insert-only: a node enters ``TVisited`` at its minimal
hop count with a predecessor chosen as the smallest frontier node id, and
is never updated afterwards.  That keeps predecessor chains stable across
layers (no stale-link recovery hazard) and makes the recovered witness
path deterministic across backends and SQL styles.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional

from repro.core.deadline import check_deadline
from repro.core.directions import FORWARD_DIRECTION, INFINITY
from repro.core.path import PathResult
from repro.core.recovery import recover_forward_path
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import (
    PHASE_PATH_EXPANSION,
    PHASE_PATH_RECOVERY,
    PHASE_STATISTICS,
    QueryStats,
)
from repro.core.store.base import GraphStore
from repro.errors import PathNotFoundError
from repro.obs import now as _now
from repro.obs import span as _span

METHOD_HOPS = "HOPS"
METHOD_REACH = "REACH"


class OneToManyResult:
    """Results of one shared-frontier DJ run over a target set.

    Attributes:
        source: the shared source node.
        results: target -> :class:`PathResult` (``None`` for targets the
            expansion exhausted without finalizing — unreachable pairs).
        stats: the run-level :class:`QueryStats` — one frontier
            expansion's statements answered every target.
    """

    def __init__(self, source: int,
                 results: Dict[int, Optional[PathResult]],
                 stats: QueryStats) -> None:
        self.source = source
        self.results = results
        self.stats = stats

    def __getitem__(self, target: int) -> Optional[PathResult]:
        return self.results[target]

    def __len__(self) -> int:
        return len(self.results)


def _per_target_stats(run_stats: QueryStats, distance: Optional[float],
                      path_edges: int) -> QueryStats:
    """A per-target view of the shared run's counters: the statements and
    expansions were paid once for the whole group, so every member reports
    them; only the outcome fields differ."""
    stats = copy.copy(run_stats)
    stats.time_by_phase = dict(run_stats.time_by_phase)
    stats.time_by_operator = dict(run_stats.time_by_operator)
    stats.found = distance is not None
    stats.distance = distance
    stats.path_edges = path_edges
    return stats


def dijkstra_one_to_many(store: GraphStore, source: int,
                         targets: Iterable[int],
                         sql_style: str = NSQL,
                         max_iterations: Optional[int] = None,
                         deadline: Optional[float] = None
                         ) -> OneToManyResult:
    """Answer every ``source -> target`` pair with ONE DJ frontier.

    The loop is Listing 2/3's DJ verbatim, except termination: instead of
    stopping at the first finalized target it keeps expanding until every
    requested target is finalized (or the frontier is exhausted).  With
    non-negative edge weights a finalized node's distance and predecessor
    never change afterwards, so each pair's answer is bit-identical to a
    per-pair DJ run — including tie-breaking, because the finalization
    sequence is the same.

    Args:
        store: a loaded :class:`~repro.core.store.base.GraphStore`.
        source: the shared source node id.
        targets: the target node ids (duplicates collapse).
        sql_style: ``"nsql"`` or ``"tsql"``.
        max_iterations: optional safety cap on expansions; targets not
            finalized when the cap hits are reported unreachable.
        deadline: optional absolute monotonic deadline checked between
            expansions.

    Returns:
        An :class:`OneToManyResult`; unreachable targets map to ``None``.
    """
    wanted: List[int] = []
    seen = set()
    for target in targets:
        if target not in seen:
            seen.add(target)
            wanted.append(target)
    stats = QueryStats(method="DJ", sql_style=validate_sql_style(sql_style))
    store.begin_query(stats, stats.sql_style)
    start_time = _now()
    forward = FORWARD_DIRECTION

    with stats.phase(PHASE_PATH_EXPANSION):
        store.reset_visited()
        store.insert_visited([{"nid": source, "d2s": 0.0, "p2s": source,
                               "f": 0}])

    remaining = {target for target in wanted if target != source}
    while remaining:
        if max_iterations is not None and stats.expansions >= max_iterations:
            break
        check_deadline(deadline, f"DJ iteration {stats.expansions + 1}")
        with _span("fem.iteration", index=stats.expansions + 1,
                   frontier=1) as iteration:
            statements_before = stats.statements
            with stats.phase(PHASE_STATISTICS):
                mid = store.top1_min_unfinalized(forward)
            if mid is None:
                iteration.tag(statements=stats.statements - statements_before)
                break
            with stats.phase(PHASE_PATH_EXPANSION):
                store.expand(forward, mid=mid)
                stats.record_expansion(forward=True)
                store.finalize_node(mid, forward)
            iteration.tag(statements=stats.statements - statements_before)
        remaining.discard(mid)

    stats.visited_nodes = store.visited_count()
    results: Dict[int, Optional[PathResult]] = {}
    for target in wanted:
        if target == source:
            results[target] = PathResult(
                source, target, 0.0, [source],
                _per_target_stats(stats, 0.0, 0))
            continue
        if target in remaining:
            results[target] = None
            continue
        with stats.phase(PHASE_STATISTICS):
            distance = store.get_distance(target, forward)
        with stats.phase(PHASE_PATH_RECOVERY):
            path = recover_forward_path(store, source, target)
        results[target] = PathResult(
            source, target, float(distance), path,
            _per_target_stats(stats, float(distance), len(path) - 1))
    stats.found = any(result is not None for result in results.values())
    stats.total_time = _now() - start_time
    # Outcome fields on the run stats describe the group as a whole; the
    # per-target copies above carry the pair-specific values.
    for result in results.values():
        if result is not None and result.stats is not None:
            result.stats.total_time = stats.total_time
    return OneToManyResult(source, results, stats)


def hop_limited_search(store: GraphStore, source: int, target: int,
                       sql_style: str = NSQL,
                       max_hops: Optional[int] = None,
                       max_iterations: Optional[int] = None,
                       method: Optional[str] = None,
                       deadline: Optional[float] = None) -> PathResult:
    """Layered BFS: fewest-hops path (``HOPS``) or reachability (``REACH``).

    Rounds of whole-layer F/E/M: select every candidate as the frontier,
    run one insert-only :meth:`expand_hops` statement, finalize the layer.
    The reported ``distance`` is the hop count of the recovered witness
    path (edge weights are never read).  With ``max_hops=None`` the search
    is the reachability fast path — it runs until the target appears or
    the graph's reachable set is exhausted, with none of the weighted
    drivers' priority/min-cost statements.

    Args:
        store: a loaded :class:`~repro.core.store.base.GraphStore`.
        source: source node id.
        target: target node id.
        sql_style: ``"nsql"`` or ``"tsql"`` (the hop statement is shared,
            but the style is recorded on the statistics).
        max_hops: inclusive bound on path length in hops; ``None`` means
            unbounded (reachability).
        max_iterations: optional safety cap on expansion rounds, applied
            on top of ``max_hops``.
        method: statistics label; defaults to ``"HOPS"`` when bounded and
            ``"REACH"`` when not.
        deadline: optional absolute monotonic deadline checked between
            layer rounds.

    Raises:
        PathNotFoundError: the target is unreachable (or not reachable
            within ``max_hops`` hops).
    """
    if max_hops is not None and max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    if method is None:
        method = METHOD_REACH if max_hops is None else METHOD_HOPS
    stats = QueryStats(method=method,
                       sql_style=validate_sql_style(sql_style))
    store.begin_query(stats, stats.sql_style)
    start_time = _now()
    forward = FORWARD_DIRECTION

    with stats.phase(PHASE_PATH_EXPANSION):
        store.reset_visited()
        store.insert_visited([{"nid": source, "d2s": 0.0, "p2s": source,
                               "f": 0}])

    if source == target:
        stats.found = True
        stats.distance = 0.0
        stats.visited_nodes = store.visited_count()
        stats.total_time = _now() - start_time
        return PathResult(source, target, 0.0, [source], stats)

    distance: Optional[float] = None
    rounds = 0
    while True:
        if max_hops is not None and rounds >= max_hops:
            break
        if max_iterations is not None and rounds >= max_iterations:
            break
        check_deadline(deadline, f"{method} layer {rounds + 1}")
        with _span("fem.iteration", index=rounds + 1) as iteration:
            statements_before = stats.statements
            with stats.phase(PHASE_PATH_EXPANSION):
                selected = store.select_frontier_set(forward, INFINITY)
                if selected == 0:
                    iteration.tag(
                        frontier=0,
                        statements=stats.statements - statements_before)
                    break
                store.expand_hops(forward)
                stats.record_expansion(forward=True)
                store.finalize_frontier(forward)
            rounds += 1
            with stats.phase(PHASE_STATISTICS):
                distance = store.get_distance(target, forward)
            iteration.tag(frontier=selected,
                          statements=stats.statements - statements_before)
        if distance is not None:
            break

    stats.visited_nodes = store.visited_count()
    if distance is None:
        stats.total_time = _now() - start_time
        if max_hops is not None:
            raise PathNotFoundError(
                f"no path from {source} to {target} within {max_hops} hops"
            )
        raise PathNotFoundError(f"no path from {source} to {target}")

    with stats.phase(PHASE_PATH_RECOVERY):
        path = recover_forward_path(store, source, target)
    stats.found = True
    stats.distance = float(distance)
    stats.path_edges = len(path) - 1
    stats.total_time = _now() - start_time
    return PathResult(source, target, float(distance), path, stats)


def reachability_search(store: GraphStore, source: int, target: int,
                        sql_style: str = NSQL,
                        max_iterations: Optional[int] = None,
                        deadline: Optional[float] = None) -> PathResult:
    """The reachability-only fast path: :func:`hop_limited_search` with no
    hop budget.  Returns a witness path whose ``distance`` is its hop
    count; raises :class:`PathNotFoundError` when the target is simply not
    reachable."""
    return hop_limited_search(store, source, target, sql_style=sql_style,
                              max_hops=None, max_iterations=max_iterations,
                              method=METHOD_REACH, deadline=deadline)


__all__ = [
    "METHOD_HOPS",
    "METHOD_REACH",
    "OneToManyResult",
    "dijkstra_one_to_many",
    "hop_limited_search",
    "reachability_search",
]
