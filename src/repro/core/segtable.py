"""SegTable construction (Section 4.2 of the paper).

The SegTable preserves every *local shortest segment*: for each ordered node
pair ``(u, v)`` with shortest distance ``δ(u, v) <= lthd`` it stores
``(u, v, pre(v), δ(u, v))``, and for every original edge whose endpoints are
farther apart than ``lthd`` it keeps the edge itself.  ``TOutSegs`` holds
segments in the outgoing direction and ``TInSegs`` (built over the reversed
edge set) serves the backward expansion.

Construction is itself an instance of the FEM framework: the working table
is seeded with the original edges, every iteration selects the unexpanded
segments of cost at most ``k * w_min`` (plus the minimal ones), extends them
by one original edge as long as the result stays within ``lthd``, and merges
the extensions back.  Iterations stop once the cheapest unexpanded segment
exceeds the threshold — at most ``lthd / w_min`` rounds (Section 4.2).
"""

from __future__ import annotations

from repro.obs import now as _now
from dataclasses import dataclass
from typing import Optional

from repro.core.directions import BACKWARD_DIRECTION, FORWARD_DIRECTION
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import QueryStats, SegTableBuildStats
from repro.core.store.base import GraphStore, IndexMode
from repro.errors import InvalidQueryError


@dataclass(frozen=True)
class SegTableConfig:
    """Configuration of a SegTable build.

    Attributes:
        lthd: the index threshold (maximal segment length to precompute).
        sql_style: ``"nsql"`` (window function + merge) or ``"tsql"``.
        index_mode: physical index strategy for the final segment tables.
        build_backward: whether to also build ``TInSegs`` (needed by the
            bi-directional BSEG search; can be disabled for forward-only
            experiments to halve the construction cost).
    """

    lthd: float
    sql_style: str = NSQL
    index_mode: str = IndexMode.CLUSTERED
    build_backward: bool = True

    def __post_init__(self) -> None:
        if self.lthd <= 0:
            raise InvalidQueryError("the SegTable threshold lthd must be positive")
        validate_sql_style(self.sql_style)
        IndexMode.validate(self.index_mode)


def build_segtable(store: GraphStore, lthd: float,
                   sql_style: str = NSQL,
                   index_mode: str = IndexMode.CLUSTERED,
                   build_backward: bool = True,
                   config: Optional[SegTableConfig] = None) -> SegTableBuildStats:
    """Construct the SegTable for the graph loaded in ``store``.

    Either pass the individual parameters or a prebuilt
    :class:`SegTableConfig` (which wins when both are given).

    Returns:
        A :class:`~repro.core.stats.SegTableBuildStats` with the number of
        iterations, statements, stored segments and the wall-clock time —
        the quantities reported in Figure 9.
    """
    if config is None:
        config = SegTableConfig(lthd=lthd, sql_style=sql_style,
                                index_mode=index_mode, build_backward=build_backward)
    build_stats = SegTableBuildStats(lthd=config.lthd, sql_style=config.sql_style)
    query_stats = QueryStats(method="SegTableBuild", sql_style=config.sql_style)
    store.begin_query(query_stats, config.sql_style)
    start_time = _now()

    directions = [FORWARD_DIRECTION]
    if config.build_backward:
        directions.append(BACKWARD_DIRECTION)

    for direction in directions:
        segments = _build_one_direction(store, direction, config, build_stats)
        if direction.is_forward:
            build_stats.out_segments = segments
        else:
            build_stats.in_segments = segments

    build_stats.statements = query_stats.statements
    build_stats.total_time = _now() - start_time
    return build_stats


def _build_one_direction(store: GraphStore, direction, config: SegTableConfig,
                         build_stats: SegTableBuildStats) -> int:
    """Run the FEM-style construction loop for one direction."""
    store.seg_init(direction)
    minimal_weight = store.seg_min_unexpanded(direction)
    if minimal_weight is None:
        # The graph has no edges; finish with an empty segment table.
        return store.seg_finish(direction, config.lthd, config.index_mode)
    expansion_number = 1
    while True:
        cheapest_unexpanded = store.seg_min_unexpanded(direction)
        if cheapest_unexpanded is None or cheapest_unexpanded > config.lthd:
            break
        threshold = min(expansion_number * minimal_weight, config.lthd)
        selected = store.seg_select_frontier(direction, threshold)
        if selected == 0:
            break
        store.seg_expand(direction, config.lthd)
        store.seg_finalize_frontier(direction)
        build_stats.iterations += 1
        expansion_number += 1
    return store.seg_finish(direction, config.lthd, config.index_mode)
