"""Search directions and the TVisited column mapping for each.

The bi-directional algorithms of Section 4.1 keep, per visited node, both a
forward state (``d2s``, ``p2s``, ``f``) and a backward state (``d2t``,
``p2t``, ``b``).  A :class:`Direction` bundles the column names and which
edge-table column is the join key, so the stores can implement one generic
expansion and instantiate it for either direction.
"""

from __future__ import annotations

from dataclasses import dataclass

FORWARD = "forward"
BACKWARD = "backward"

INFINITY = float("inf")
"""Sentinel distance for "not reached from this direction yet"."""


@dataclass(frozen=True)
class Direction:
    """Column mapping of one search direction.

    Attributes:
        name: ``"forward"`` or ``"backward"``.
        dist_col: TVisited distance column (``d2s`` / ``d2t``).
        pred_col: TVisited link column (``p2s`` / ``p2t``).
        flag_col: TVisited finalization flag column (``f`` / ``b``).
        edge_key: TEdges column matched against the frontier node id
            (``fid`` when walking edges forwards, ``tid`` backwards).
        edge_other: TEdges column holding the newly reached node.
        seg_table: SegTable relation used by BSEG for this direction.
    """

    name: str
    dist_col: str
    pred_col: str
    flag_col: str
    edge_key: str
    edge_other: str
    seg_table: str

    @property
    def is_forward(self) -> bool:
        """Whether this is the source-side search."""
        return self.name == FORWARD


FORWARD_DIRECTION = Direction(
    name=FORWARD,
    dist_col="d2s",
    pred_col="p2s",
    flag_col="f",
    edge_key="fid",
    edge_other="tid",
    seg_table="TOutSegs",
)

BACKWARD_DIRECTION = Direction(
    name=BACKWARD,
    dist_col="d2t",
    pred_col="p2t",
    flag_col="b",
    edge_key="tid",
    edge_other="fid",
    seg_table="TInSegs",
)


def direction_for(name: str) -> Direction:
    """Return the :class:`Direction` called ``name``."""
    if name == FORWARD:
        return FORWARD_DIRECTION
    if name == BACKWARD:
        return BACKWARD_DIRECTION
    raise ValueError(f"unknown direction {name!r}")
