"""Monotonic deadline arithmetic shared by every tier.

A query's time budget is declared *relative* (``QuerySpec.timeout_s``,
wire-safe across machines whose clocks disagree); each tier that starts
work derives its own absolute deadline with :func:`deadline_from_timeout`
and checks it between units of work — FEM iterations, failover
candidates, retry attempts — with :func:`check_deadline`.  Checks sit
*between* iterations, never inside one, which is what bounds overrun to
at most one iteration past the budget.

``time.monotonic`` is the right clock here (and is explicitly permitted
by ``tools/check_timing.py``): deadlines compare instants on one
machine, they do not measure durations.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import DeadlineExceededError


def deadline_from_timeout(timeout_s: Optional[float]) -> Optional[float]:
    """The absolute monotonic deadline ``timeout_s`` seconds from now
    (``None`` budget → ``None`` deadline)."""
    if timeout_s is None:
        return None
    return time.monotonic() + timeout_s


def remaining_budget(deadline: Optional[float]) -> Optional[float]:
    """Seconds left until ``deadline`` (may be <= 0; ``None`` for no
    deadline).  This is what crosses the wire: the receiving tier
    re-derives its own absolute deadline from it."""
    if deadline is None:
        return None
    return deadline - time.monotonic()


def expired(deadline: Optional[float]) -> bool:
    """Whether ``deadline`` has passed (never true without one)."""
    return deadline is not None and time.monotonic() >= deadline


def check_deadline(deadline: Optional[float], context: str) -> None:
    """Raise :class:`DeadlineExceededError` when ``deadline`` has passed.

    ``context`` names the unit of work about to start (``"DJ iteration
    12"``, ``"failover to shard b"``) so the error says where the budget
    ran out, not just that it did.
    """
    if deadline is None:
        return
    now = time.monotonic()
    if now >= deadline:
        overshoot = now - deadline
        raise DeadlineExceededError(
            f"deadline exceeded before {context} "
            f"(budget overrun {overshoot * 1000.0:.1f}ms)"
        )


__all__ = [
    "check_deadline",
    "deadline_from_timeout",
    "expired",
    "remaining_budget",
]
