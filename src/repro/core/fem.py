"""The generic FEM framework (Section 3.1 of the paper).

The paper observes that many greedy graph-search algorithms share an
iterative structure over a *visited* relation ``A^k``:

1. the **F-operator** selects frontier rows ``F^k ⊆ A^k``;
2. the **E-operator** expands the frontier into new rows ``E^k`` (usually by
   joining with the edge relation);
3. the **M-operator** merges ``E^k`` back into the visited relation to form
   ``A^{k+1}``;

and the iterations stop when a task-specific termination test holds.

:class:`FEMSearch` captures that skeleton over a relational
:class:`~repro.rdb.table.Table`: the three operators are supplied as
callables composed from the engine's physical operators, so the same driver
runs Dijkstra-style searches, Prim's minimal spanning tree
(:mod:`repro.core.prim`), reachability (:mod:`repro.core.reachability`) and
graph pattern matching (:mod:`repro.core.pattern`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.deadline import check_deadline
from repro.errors import InvalidQueryError
from repro.obs import span as _span
from repro.rdb.merge import MergeResult
from repro.rdb.table import Table

Row = Dict[str, object]

SelectOperator = Callable[[Table, int], List[Row]]
ExpandOperator = Callable[[List[Row], int], List[Row]]
MergeOperator = Callable[[Table, List[Row], int], MergeResult]
TerminationTest = Callable[[Table, int], bool]


@dataclass
class FEMSpec:
    """Specification of one FEM-style search.

    Attributes:
        name: label used in statistics and error messages.
        initialize: returns the initial visited rows ``A^1``.
        select_frontier: the F-operator — picks frontier rows from the
            visited table (it may also update flags on the table).
        expand: the E-operator — produces expanded rows from the frontier.
        merge: the M-operator — merges expanded rows into the visited table
            and reports how many rows were affected.
        should_terminate: extra termination test evaluated after every
            iteration (besides "the merge affected no rows").
        max_iterations: hard safety cap.
        deadline: optional absolute monotonic deadline (see
            :mod:`repro.core.deadline`), checked *between* iterations so
            an expired budget overruns by at most one iteration.
    """

    name: str
    initialize: Callable[[], Sequence[Row]]
    select_frontier: SelectOperator
    expand: ExpandOperator
    merge: MergeOperator
    should_terminate: Optional[TerminationTest] = None
    max_iterations: int = 1_000_000
    deadline: Optional[float] = None


@dataclass
class FEMRunStats:
    """Counters collected by :class:`FEMSearch.run`.

    ``frontier_sizes`` stays empty unless the search was constructed with
    ``track_frontier_sizes=True`` — on a long search the per-iteration
    list grows without bound, so callers that want the full frontier
    history opt in.
    """

    iterations: int = 0
    frontier_rows: int = 0
    expanded_rows: int = 0
    merged_rows: int = 0
    frontier_sizes: List[int] = field(default_factory=list)


class FEMSearch:
    """Driver that repeatedly applies F, E and M until termination.

    Args:
        visited: the table holding ``A^k``.
        spec: the three operators plus termination rules.
        track_frontier_sizes: record every iteration's frontier size in
            :attr:`FEMRunStats.frontier_sizes` (off by default — the list
            grows one entry per iteration, unbounded on long searches).
    """

    def __init__(self, visited: Table, spec: FEMSpec,
                 track_frontier_sizes: bool = False) -> None:
        self.visited = visited
        self.spec = spec
        self.track_frontier_sizes = track_frontier_sizes
        self.stats = FEMRunStats()

    def run(self) -> FEMRunStats:
        """Execute the search and return its run statistics."""
        self.visited.truncate()
        initial_rows = list(self.spec.initialize())
        if not initial_rows:
            raise InvalidQueryError(
                f"FEM search {self.spec.name!r} produced no initial visited rows"
            )
        self.visited.insert_many(initial_rows)
        for iteration in range(1, self.spec.max_iterations + 1):
            check_deadline(self.spec.deadline,
                           f"{self.spec.name} iteration {iteration}")
            with _span("fem.iteration", index=iteration,
                       operator=self.spec.name) as it_span:
                frontier = list(
                    self.spec.select_frontier(self.visited, iteration))
                if self.track_frontier_sizes:
                    self.stats.frontier_sizes.append(len(frontier))
                it_span.tag(frontier=len(frontier))
                if not frontier:
                    break
                self.stats.frontier_rows += len(frontier)
                expanded = list(self.spec.expand(frontier, iteration))
                self.stats.expanded_rows += len(expanded)
                merge_result = self.spec.merge(self.visited, expanded,
                                               iteration)
                self.stats.merged_rows += merge_result.affected
                self.stats.iterations = iteration
                it_span.tag(expanded=len(expanded),
                            merged=merge_result.affected)
                if (self.spec.should_terminate is not None
                        and self.spec.should_terminate(self.visited,
                                                       iteration)):
                    break
        return self.stats

    def visited_rows(self) -> List[Row]:
        """Materialize the visited relation after :meth:`run`."""
        return list(self.visited.scan())


def iterate_rows(rows: Iterable[Row], copy: bool = False) -> List[Row]:
    """Materialize an iterable of rows (small helper used by FEM specs).

    By default the rows are materialized **without** copying — one dict
    per row per call was pure overhead on the expansion hot path.  Pass
    ``copy=True`` when the caller mutates the returned rows and the
    source rows must stay pristine (e.g. rows scanned straight out of a
    live table).
    """
    if copy:
        return [dict(row) for row in rows]
    return list(rows)
