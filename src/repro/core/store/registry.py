"""Backend registry: pluggable graph-store factories by name.

The registry replaces the historical hard-coded ``BACKENDS`` tuple.  Each
store module registers a factory for itself when it is imported (the entry
points live at the bottom of :mod:`repro.core.store.minidb` and
:mod:`repro.core.store.sqlite`), and external code can plug in additional
engines without touching the service layer::

    from repro.service import register_backend

    register_backend("postgres", PostgresGraphStore.create)
    service.add_graph("social", graph, backend="postgres")

A factory is any callable returning a fresh, unloaded
:class:`~repro.core.store.base.GraphStore`.  Factories receive the
store-lifecycle keyword arguments the service layer forwards —
``path`` (backing file, ``None`` for in-memory) and ``buffer_capacity``
(page budget; engines without a buffer pool may ignore it) — and must
accept both even if unused.

Concurrency contract: the :class:`~repro.service.pool.StorePool` grows a
per-graph pool of stores for parallel batches, but only when the backend
class sets :attr:`~repro.core.store.base.GraphStore.supports_concurrent_readers`
to ``True``.  Pool replicas are created either through the store's
:meth:`~repro.core.store.base.GraphStore.clone` fast path (e.g. a second
SQLite connection over the same ``db_path``) or, when cloning is
unsupported, by calling this registry's factory again and reloading the
hosted graph into the fresh store.  Backends that are not safe to read from
multiple threads simply keep the default ``False`` and their queries stay
serialized.  See ``docs/backends.md`` for a worked third-party example.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import DuplicateBackendError, UnknownBackendError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.store.base import GraphStore

BackendFactory = Callable[..., "GraphStore"]

_REGISTRY: Dict[str, BackendFactory] = {}


def is_dsn(path: Optional[str]) -> bool:
    """Whether a store ``path`` is a connection string rather than a file.

    Client-server backends are addressed by DSN (``postgresql://...``,
    ``fallback://host:port/``); everything that consumes a store path and
    would otherwise treat it as a filesystem location — the catalog's
    path normalization, the warm-attach existence check, the shard
    router's relocation logic — branches on this.
    """
    return bool(path) and "://" in path  # type: ignore[operator]


def register_backend(name: str, factory: BackendFactory,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Args:
        name: backend identifier (matched case-insensitively, stored
            lower-cased).
        factory: callable ``(path=None, buffer_capacity=...) -> GraphStore``.
        replace: allow overwriting an existing registration.

    Raises:
        DuplicateBackendError: when ``name`` is taken and not ``replace``.
    """
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise DuplicateBackendError(
            f"backend {name!r} is already registered; "
            f"pass replace=True to overwrite it"
        )
    _REGISTRY[key] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend registration.

    Raises:
        UnknownBackendError: when ``name`` is not registered.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise UnknownBackendError(_unknown_message(name))
    del _REGISTRY[key]


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted (the dynamic ``BACKENDS``)."""
    return tuple(sorted(_REGISTRY))


def backend_factory(name: str) -> BackendFactory:
    """Look up the factory registered under ``name``.

    Raises:
        UnknownBackendError: when ``name`` is not registered.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise UnknownBackendError(_unknown_message(name)) from None


def create_store(name: str, path: Optional[str] = None,
                 buffer_capacity: int = 256) -> "GraphStore":
    """Instantiate a fresh store for backend ``name``.

    Args:
        name: a registered backend name.
        path: backing file for the database; ``None`` keeps it in memory.
        buffer_capacity: buffer-pool page budget (ignored by engines that
            manage their own caching, e.g. SQLite).
    """
    factory = backend_factory(name)
    return factory(path=path, buffer_capacity=buffer_capacity)


def _unknown_message(name: str) -> str:
    known = available_backends()
    return f"unknown backend {name!r}; expected one of {known or '(none registered)'}"
