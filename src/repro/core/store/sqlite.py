"""Graph store over SQLite — the paper's "second database platform".

The paper validates its approach on PostgreSQL in addition to the commercial
DBMS-x.  Here SQLite plays that role: every statement is literal SQL text,
the window function is available (SQLite >= 3.25), and — like PostgreSQL 9.0
in the paper — there is no MERGE statement, so the M-operator uses the
closest native equivalent (``INSERT ... ON CONFLICT DO UPDATE``) in NSQL
mode and a separate UPDATE + INSERT pair in TSQL mode.

The SQL strings below mirror Listings 2–4 of the paper.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.directions import Direction, INFINITY
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import OPERATOR_E, OPERATOR_F, OPERATOR_M
from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.registry import register_backend
from repro.errors import (
    InvalidQueryError,
    PersistenceUnsupportedError,
    StoreCloneUnsupportedError,
)
from repro.graph.fingerprint import fingerprint_content
from repro.graph.model import Graph

# SQLite cannot index an expression with parameters, and +inf round-trips
# fine as a REAL, so infinity is stored directly.
_INF = INFINITY

# A memoized statement shape: one SQL text, or the TSQL triple
# (create-candidates, update, insert).
_SQLText = TypeVar("_SQLText", str, Tuple[str, str, str])


class SQLiteGraphStore(GraphStore):
    """Graph store backed by a SQLite database (in-memory by default).

    Per-query state (``TVisited`` and the TSQL scratch tables) lives in the
    connection-private ``temp`` schema, so any number of connections over the
    same database file can answer queries concurrently: the shared file is
    only ever *read* during a query, and each connection scribbles in its own
    temp space.  That is what makes :meth:`clone` (and therefore pooled
    parallel execution) safe for ``db_path``-backed stores.
    """

    backend_name = "sqlite"
    supports_concurrent_readers = True

    def __init__(self, path: str = ":memory:") -> None:
        super().__init__()
        self.path = path
        # check_same_thread=False: the store pool hands a connection to one
        # worker thread at a time; serialized handoff is safe, sqlite's
        # same-thread assertion is stricter than we need.
        # cached_statements: the FEM hot loop re-executes a handful of
        # statement shapes thousands of times; a roomy prepared-statement
        # cache keeps sqlite from ever re-compiling them.
        self.connection = sqlite3.connect(path, check_same_thread=False,
                                          cached_statements=256)
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA temp_store = MEMORY")
        self.index_mode = IndexMode.CLUSTERED
        # SQL-text memo for the per-query hot loop: the F/E/M statement
        # texts depend only on (direction, frontier mode, relation,
        # pruning, sql style), so each shape is composed once per
        # connection and reused across every FEM iteration — sqlite's
        # prepared-statement cache then hits on the identical text instead
        # of parsing a freshly formatted string each iteration.
        self._sql_cache: Dict[Tuple[Hashable, ...], "_SQLText"] = {}
        # Every connection gets its private TVisited up front, so reader
        # clones can answer queries without a load_graph() call.
        self._create_visited_table()

    def _cached_sql(self, key: Tuple[Hashable, ...],
                    build: Callable[[], "_SQLText"]) -> "_SQLText":
        """Memoize one statement shape's SQL text (or tuple of texts)."""
        cached = self._sql_cache.get(key)
        if cached is None:
            cached = build()
            self._sql_cache[key] = cached
        return cached

    def supports_clone(self) -> bool:
        """File-backed stores clone cheaply; in-memory ones cannot."""
        return self.path != ":memory:"

    def quiesce(self) -> None:
        """End the implicit transaction left open by per-query temp-table
        DML, releasing this connection's shared lock on the shared file so
        an idle pool member never blocks a writer (SegTable build)."""
        self.connection.commit()

    def clone(self) -> "SQLiteGraphStore":
        """Open a fresh reader connection over the same database file.

        The clone sees ``TNodes`` / ``TEdges`` / the SegTable relations that
        are already in the file and gets its own private ``TVisited``; no
        bulk load happens.  In-memory stores have nothing shareable to point
        a second connection at, so they refuse and the pool rehydrates.
        """
        if self.path == ":memory:":
            raise StoreCloneUnsupportedError(
                "an in-memory SQLite store cannot share its database with a "
                "second connection; the pool will rehydrate a replica"
            )
        replica = SQLiteGraphStore(path=self.path)
        replica.index_mode = self.index_mode
        replica.has_segtable = self.has_segtable
        replica.segtable_lthd = self.segtable_lthd
        return replica

    # -------------------------------------------------- persistence (catalog)

    def supports_persistence(self) -> bool:
        """A file-backed store's tables survive in the file; an in-memory
        store's do not."""
        return self.path != ":memory:"

    def _table_exists(self, name: str) -> bool:
        row = self.connection.execute(
            "SELECT count(*) FROM sqlite_master WHERE type='table' AND name=?",
            (name,),
        ).fetchone()
        return bool(row[0])

    def has_persistent_tables(self) -> bool:
        """Whether ``TNodes`` and ``TEdges`` exist in the database file."""
        return self._table_exists("TNodes") and self._table_exists("TEdges")

    def has_persistent_segtable(self) -> bool:
        """Whether ``TOutSegs`` and ``TInSegs`` exist in the database file."""
        return self._table_exists("TOutSegs") and self._table_exists("TInSegs")

    def adopt_segtable(self, lthd: float) -> None:
        """Point this store at the segment tables already in the file."""
        if not self.has_persistent_segtable():
            raise PersistenceUnsupportedError(
                f"{self.path!r} holds no TOutSegs/TInSegs tables to adopt; "
                f"build the SegTable before cataloging it"
            )
        self.has_segtable = True
        self.segtable_lthd = lthd

    def export_graph(self) -> Graph:
        """Read ``TNodes`` / ``TEdges`` back into a directed graph."""
        self._require_persistent_tables()
        graph = Graph(directed=True)
        for (nid,) in self.connection.execute("SELECT nid FROM TNodes"):
            graph.add_node(int(nid))
        for fid, tid, cost in self.connection.execute(
                "SELECT fid, tid, cost FROM TEdges"):
            graph.add_edge(int(fid), int(tid), float(cost))
        return graph

    def content_fingerprint(self) -> str:
        """Digest of the stored node set and edge multiset."""
        self._require_persistent_tables()
        nodes = [int(row[0]) for row in
                 self.connection.execute("SELECT nid FROM TNodes")]
        edges = self.connection.execute(
            "SELECT fid, tid, cost FROM TEdges").fetchall()
        return fingerprint_content(nodes, edges)

    def supports_relocation(self) -> bool:
        """A file-backed database can be snapshotted to a new file."""
        return self.path != ":memory:"

    def export_database(self, dest_path: str) -> None:
        """Snapshot the whole database file to ``dest_path`` with SQLite's
        online backup API — consistent even while other connections hold
        the source file open, and it carries every relation (graph tables,
        indexes, SegTable) so the copy warm-attaches without any rebuild."""
        if not self.supports_relocation():
            raise PersistenceUnsupportedError(
                "an in-memory SQLite store has no database file to "
                "relocate; only db_path-backed stores can export_database"
            )
        self._require_persistent_tables()
        # Flush this connection's implicit transaction first: backup()
        # copies committed state.
        self.connection.commit()
        dest = sqlite3.connect(dest_path)
        try:
            self.connection.backup(dest)
            dest.commit()
        finally:
            dest.close()

    def _require_persistent_tables(self) -> None:
        if not self.has_persistent_tables():
            raise PersistenceUnsupportedError(
                f"{self.path!r} holds no TNodes/TEdges tables; it is not a "
                f"loaded graph database"
            )

    # ------------------------------------------------------------------ helpers

    def _execute(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        self.stats.record_statement()
        return self.connection.execute(sql, tuple(parameters))

    def _execute_unlogged(self, sql: str,
                          parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        return self.connection.execute(sql, tuple(parameters))

    def _changes(self) -> int:
        return self.connection.execute("SELECT changes()").fetchone()[0]

    # ------------------------------------------------------------- graph loading

    def load_graph(self, graph: Graph, index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create and populate ``TNodes`` and ``TEdges``."""
        self.index_mode = IndexMode.validate(index_mode)
        cursor = self.connection
        cursor.execute("DROP TABLE IF EXISTS TNodes")
        cursor.execute("DROP TABLE IF EXISTS TEdges")
        cursor.execute("CREATE TABLE TNodes (nid INTEGER PRIMARY KEY)")
        cursor.execute(
            "CREATE TABLE TEdges (fid INTEGER, tid INTEGER, cost REAL)"
        )
        cursor.executemany(
            "INSERT INTO TNodes (nid) VALUES (?)",
            [(nid,) for nid in sorted(graph.nodes())],
        )
        cursor.executemany(
            "INSERT INTO TEdges (fid, tid, cost) VALUES (?, ?, ?)",
            [(edge.fid, edge.tid, edge.cost) for edge in graph.edges()],
        )
        if self.index_mode != IndexMode.NONE:
            cursor.execute("CREATE INDEX ix_tedges_fid ON TEdges (fid)")
            cursor.execute("CREATE INDEX ix_tedges_tid ON TEdges (tid)")
        self._create_visited_table()
        self.connection.commit()

    def _create_visited_table(self) -> None:
        # TVisited is connection-private (temp schema): concurrent reader
        # clones over one database file must not clobber each other's
        # per-query search state, and temp tables shadow any same-named
        # table in the shared file.
        self.connection.execute(
            """
            CREATE TEMP TABLE IF NOT EXISTS TVisited (
                nid INTEGER PRIMARY KEY,
                d2s REAL, p2s INTEGER, f INTEGER,
                d2t REAL, p2t INTEGER, b INTEGER
            )
            """
        )

    def load_segtable(self, out_segments: Sequence[Dict[str, object]],
                      in_segments: Sequence[Dict[str, object]],
                      lthd: float,
                      index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create ``TOutSegs`` / ``TInSegs`` from precomputed segment rows."""
        index_mode = IndexMode.validate(index_mode)
        for name, rows in (("TOutSegs", out_segments), ("TInSegs", in_segments)):
            self.connection.execute(f"DROP TABLE IF EXISTS {name}")
            self.connection.execute(
                f"CREATE TABLE {name} (fid INTEGER, tid INTEGER, pid INTEGER, cost REAL)"
            )
            self.connection.executemany(
                f"INSERT INTO {name} (fid, tid, pid, cost) VALUES (?, ?, ?, ?)",
                [(row["fid"], row["tid"], row["pid"], row["cost"]) for row in rows],
            )
            if index_mode != IndexMode.NONE:
                self.connection.execute(
                    f"CREATE INDEX ix_{name.lower()}_fid ON {name} (fid)"
                )
        self.connection.commit()
        self.has_segtable = True
        self.segtable_lthd = lthd

    def segment_counts(self) -> Dict[str, int]:
        """Segment counts of the loaded SegTable."""
        counts = {"out": 0, "in": 0}
        for key, name in (("out", "TOutSegs"), ("in", "TInSegs")):
            row = self.connection.execute(
                "SELECT count(*) FROM sqlite_master WHERE type='table' AND name=?",
                (name,),
            ).fetchone()
            if row[0]:
                counts[key] = self.connection.execute(
                    f"SELECT count(*) FROM {name}"
                ).fetchone()[0]
        return counts

    def close(self) -> None:
        """Close the SQLite connection."""
        self.connection.close()

    # ---------------------------------------------------------------- TVisited setup

    def reset_visited(self) -> None:
        """Empty ``TVisited`` for a fresh query."""
        self._create_visited_table()
        self._execute_unlogged("DELETE FROM TVisited")

    def insert_visited(self, rows: Sequence[Dict[str, object]]) -> None:
        """Insert the initial visited rows (Listing 2(1))."""
        self.stats.record_statement()
        self.connection.executemany(
            "INSERT INTO TVisited (nid, d2s, p2s, f, d2t, p2t, b) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    row["nid"],
                    row.get("d2s", _INF),
                    row.get("p2s"),
                    row.get("f", 0),
                    row.get("d2t", _INF),
                    row.get("p2t"),
                    row.get("b", 0),
                )
                for row in rows
            ],
        )

    # ------------------------------------------------------------ statistics statements

    def top1_min_unfinalized(self, direction: Direction) -> Optional[int]:
        """Listing 2(2)."""
        sql = self._cached_sql(("top1", direction.is_forward), lambda: (
            f"SELECT nid FROM TVisited WHERE {direction.flag_col} = 0 AND "
            f"{direction.dist_col} < ? ORDER BY {direction.dist_col} LIMIT 1"
        ))
        row = self._execute(sql, (_INF,)).fetchone()
        return None if row is None else int(row[0])

    def min_unfinalized_distance(self, direction: Direction) -> Optional[float]:
        """Listing 4(4)."""
        sql = self._cached_sql(("min_unfin", direction.is_forward), lambda: (
            f"SELECT min({direction.dist_col}) FROM TVisited "
            f"WHERE {direction.flag_col} = 0"
        ))
        row = self._execute(sql).fetchone()
        value = row[0]
        if value is None or value >= _INF:
            return None
        return float(value)

    def count_unfinalized(self, direction: Direction) -> int:
        """Candidate frontier size."""
        sql = self._cached_sql(("count_unfin", direction.is_forward), lambda: (
            f"SELECT count(*) FROM TVisited WHERE {direction.flag_col} = 0 "
            f"AND {direction.dist_col} < ?"
        ))
        row = self._execute(sql, (_INF,)).fetchone()
        return int(row[0])

    def min_total_cost(self) -> float:
        """Listing 4(5)."""
        row = self._execute("SELECT min(d2s + d2t) FROM TVisited").fetchone()
        value = row[0]
        return INFINITY if value is None else float(value)

    def meeting_node(self, min_cost: float) -> Optional[int]:
        """Listing 4(6)."""
        row = self._execute(
            "SELECT nid FROM TVisited WHERE abs(d2s + d2t - ?) < 1e-9 LIMIT 1",
            (min_cost,),
        ).fetchone()
        return None if row is None else int(row[0])

    def is_finalized(self, nid: int, direction: Direction) -> bool:
        """Listing 3(1)."""
        sql = self._cached_sql(("is_final", direction.is_forward), lambda: (
            f"SELECT 1 FROM TVisited WHERE nid = ? AND "
            f"{direction.flag_col} = 1"
        ))
        row = self._execute(sql, (nid,)).fetchone()
        return row is not None

    def visited_count(self) -> int:
        """Number of visited nodes."""
        return int(
            self._execute_unlogged("SELECT count(*) FROM TVisited").fetchone()[0]
        )

    def visited_rows(self) -> List[Dict[str, object]]:
        """Materialize ``TVisited``."""
        columns = ["nid", "d2s", "p2s", "f", "d2t", "p2t", "b"]
        rows = self._execute_unlogged(
            "SELECT nid, d2s, p2s, f, d2t, p2t, b FROM TVisited"
        ).fetchall()
        return [dict(zip(columns, row)) for row in rows]

    # ---------------------------------------------------------------- F-operator statements

    def finalize_node(self, nid: int, direction: Direction) -> None:
        """Listing 3(2)."""
        sql = self._cached_sql(("final_node", direction.is_forward), lambda: (
            f"UPDATE TVisited SET {direction.flag_col} = 1 WHERE nid = ?"
        ))
        with self.stats.operator(OPERATOR_F):
            self._execute(sql, (nid,))

    def select_frontier_set(self, direction: Direction, max_distance: float) -> int:
        """Listing 4(1)."""
        def build() -> str:
            dist, flag = direction.dist_col, direction.flag_col
            return f"""
                UPDATE TVisited SET {flag} = 2
                WHERE {flag} = 0 AND {dist} < ?
                  AND ({dist} <= ? OR {dist} = (
                        SELECT min({dist}) FROM TVisited WHERE {flag} = 0))
            """
        sql = self._cached_sql(("sel_frontier", direction.is_forward), build)
        with self.stats.operator(OPERATOR_F):
            self._execute(sql, (_INF, max_distance))
            return self._changes()

    def finalize_frontier(self, direction: Direction) -> int:
        """Listing 4(3)."""
        sql = self._cached_sql(("final_frontier", direction.is_forward),
                               lambda: (f"UPDATE TVisited SET "
                                        f"{direction.flag_col} = 1 WHERE "
                                        f"{direction.flag_col} = 2"))
        with self.stats.operator(OPERATOR_F):
            self._execute(sql)
            return self._changes()

    # ------------------------------------------------------------------- E + M operators

    def expand(self, direction: Direction, mid: Optional[int] = None,
               use_segtable: bool = False,
               prune_lb: Optional[float] = None,
               prune_min_cost: Optional[float] = None) -> int:
        """The combined E- and M-operator (Listing 2(3)+(4) / Listing 4(2)).

        The statement text depends only on the expansion *shape* —
        direction, node- vs. set-frontier, relation, pruning, SQL style —
        so it is composed once per shape and cached; every FEM iteration
        after the first re-executes the identical text with fresh
        parameters (and sqlite reuses the prepared statement).
        """
        if use_segtable and not self.has_segtable:
            raise InvalidQueryError("SegTable expansion requested but no SegTable loaded")
        node_mode = mid is not None
        pruned = prune_lb is not None and prune_min_cost is not None
        parameters: List[object] = []
        if node_mode:
            parameters.append(mid)
        parameters.append(_INF)
        if pruned:
            parameters.extend([prune_lb, prune_min_cost])
        style = validate_sql_style(self.sql_style)
        shape = (direction.is_forward, node_mode, use_segtable, pruned)
        if style == NSQL:
            affected = self._expand_nsql(direction, shape, parameters)
        else:
            affected = self._expand_tsql(direction, shape, parameters)
        self.stats.affected_rows += affected
        return affected

    def _candidate_sql_text(self, direction: Direction, node_mode: bool,
                            use_segtable: bool, pruned: bool) -> str:
        """Compose the inner SELECT producing (nid, cost, pred) candidates.

        Parameter slots, in order: ``[mid?] [inf] [prune_lb prune_min]?``.
        """
        dist, flag = direction.dist_col, direction.flag_col
        if use_segtable:
            relation, key_col, other_col = direction.seg_table, "fid", "tid"
            pred_expr = "e.pid"
        else:
            relation = "TEdges"
            key_col, other_col = direction.edge_key, direction.edge_other
            pred_expr = "q.nid"
        frontier_clause = "q.nid = ?" if node_mode else f"q.{flag} = 2"
        prune_clause = (f"AND q.{dist} + e.cost + ? <= ?" if pruned else "")
        return f"""
            SELECT e.{other_col} AS nid, q.{dist} + e.cost AS cost, {pred_expr} AS pred
            FROM TVisited q JOIN {relation} e ON q.nid = e.{key_col}
            WHERE {frontier_clause} AND q.{dist} < ? {prune_clause}
        """

    def _expand_nsql(self, direction: Direction,
                     shape: Tuple[Hashable, ...],
                     parameters: List[object]) -> int:
        """Window-function dedup + UPSERT (the MERGE equivalent)."""
        def build() -> str:
            candidate_sql = self._candidate_sql_text(direction, *shape[1:])
            dist, pred, flag = (direction.dist_col, direction.pred_col,
                                direction.flag_col)
            other_dist = "d2t" if direction.is_forward else "d2s"
            other_pred = "p2t" if direction.is_forward else "p2s"
            other_flag = "b" if direction.is_forward else "f"
            return f"""
                INSERT INTO TVisited (nid, {dist}, {pred}, {flag},
                                      {other_dist}, {other_pred}, {other_flag})
                SELECT nid, cost, pred, 0, ?, NULL, 0 FROM (
                    SELECT nid, cost, pred,
                           row_number() OVER (PARTITION BY nid ORDER BY cost) AS rownum
                    FROM ({candidate_sql})
                ) WHERE rownum = 1
                ON CONFLICT(nid) DO UPDATE SET
                    {dist} = excluded.{dist},
                    {pred} = excluded.{pred},
                    {flag} = 0
                WHERE TVisited.{dist} > excluded.{dist}
            """

        sql = self._cached_sql(("expand", NSQL) + shape, build)
        # The window-function join (E) and the upsert (M) run as one combined
        # statement; its time is attributed to the E-operator, which dominates.
        with self.stats.operator(OPERATOR_E):
            self._execute(sql, [_INF] + parameters)
            return self._changes()

    def _expand_tsql(self, direction: Direction,
                     shape: Tuple[Hashable, ...],
                     parameters: List[object]) -> int:
        """GROUP BY + join dedup, then UPDATE followed by INSERT ... NOT EXISTS."""
        def build() -> Tuple[str, str, str]:
            candidate_sql = self._candidate_sql_text(direction, *shape[1:])
            dist, pred, flag = (direction.dist_col, direction.pred_col,
                                direction.flag_col)
            other_dist = "d2t" if direction.is_forward else "d2s"
            other_pred = "p2t" if direction.is_forward else "p2s"
            other_flag = "b" if direction.is_forward else "f"
            create = f"""
                CREATE TEMP TABLE tmp_expanded AS
                SELECT cand.nid AS nid, cand.cost AS cost, min(cand.pred) AS pred
                FROM ({candidate_sql}) cand
                JOIN (
                    SELECT nid, min(cost) AS mincost
                    FROM ({candidate_sql})
                    GROUP BY nid
                ) agg ON cand.nid = agg.nid AND cand.cost = agg.mincost
                GROUP BY cand.nid, cand.cost
            """
            update = f"""
                UPDATE TVisited SET
                    {dist} = (SELECT cost FROM tmp_expanded t WHERE t.nid = TVisited.nid),
                    {pred} = (SELECT pred FROM tmp_expanded t WHERE t.nid = TVisited.nid),
                    {flag} = 0
                WHERE EXISTS (SELECT 1 FROM tmp_expanded t
                              WHERE t.nid = TVisited.nid AND t.cost < TVisited.{dist})
            """
            insert = f"""
                INSERT INTO TVisited (nid, {dist}, {pred}, {flag},
                                      {other_dist}, {other_pred}, {other_flag})
                SELECT nid, cost, pred, 0, ?, NULL, 0 FROM tmp_expanded t
                WHERE NOT EXISTS (SELECT 1 FROM TVisited v WHERE v.nid = t.nid)
            """
            return create, update, insert

        create, update, insert = self._cached_sql(("expand", "tsql") + shape,
                                                  build)
        with self.stats.operator(OPERATOR_E):
            self._execute_unlogged("DROP TABLE IF EXISTS tmp_expanded")
            self._execute(create, parameters + parameters)
        with self.stats.operator(OPERATOR_M):
            self._execute(update)
            updated = self._changes()
            self._execute(insert, (_INF,))
            inserted = self._changes()
            self._execute_unlogged("DROP TABLE IF EXISTS tmp_expanded")
        return updated + inserted

    def expand_hops(self, direction: Direction) -> int:
        """Hop-counting E/M: insert-only frontier expansion (weights ignored).

        One statement in either SQL style — ``GROUP BY`` dedup is plain
        SQL-92, so NSQL and TSQL share the text.  Ties on the predecessor
        break to ``min(frontier nid)``, keeping the witness path
        deterministic across backends.
        """
        def build() -> str:
            dist, pred, flag = (direction.dist_col, direction.pred_col,
                                direction.flag_col)
            other_dist = "d2t" if direction.is_forward else "d2s"
            other_pred = "p2t" if direction.is_forward else "p2s"
            other_flag = "b" if direction.is_forward else "f"
            key_col, other_col = direction.edge_key, direction.edge_other
            return f"""
                INSERT INTO TVisited (nid, {dist}, {pred}, {flag},
                                      {other_dist}, {other_pred}, {other_flag})
                SELECT e.{other_col}, min(q.{dist}) + 1, min(q.nid), 0,
                       ?, NULL, 0
                FROM TVisited q JOIN TEdges e ON q.nid = e.{key_col}
                WHERE q.{flag} = 2
                  AND NOT EXISTS (SELECT 1 FROM TVisited v
                                  WHERE v.nid = e.{other_col})
                GROUP BY e.{other_col}
            """

        sql = self._cached_sql(("expand_hops", direction.is_forward), build)
        with self.stats.operator(OPERATOR_E):
            self._execute(sql, (_INF,))
            affected = self._changes()
        self.stats.affected_rows += affected
        return affected

    # ----------------------------------------------------------------------- path recovery

    def get_link(self, nid: int, direction: Direction) -> Optional[int]:
        """Listing 3(3)."""
        sql = self._cached_sql(("get_link", direction.is_forward), lambda: (
            f"SELECT {direction.pred_col} FROM TVisited WHERE nid = ?"
        ))
        row = self._execute(sql, (nid,)).fetchone()
        if row is None or row[0] is None:
            return None
        return int(row[0])

    def get_distance(self, nid: int, direction: Direction) -> Optional[float]:
        """Distance of ``nid`` in ``direction`` or ``None``."""
        sql = self._cached_sql(("get_dist", direction.is_forward), lambda: (
            f"SELECT {direction.dist_col} FROM TVisited WHERE nid = ?"
        ))
        row = self._execute(sql, (nid,)).fetchone()
        if row is None or row[0] is None or row[0] >= _INF:
            return None
        return float(row[0])

    # -------------------------------------------------------------- SegTable construction

    def _work_table_name(self, direction: Direction) -> str:
        return "TOutSegsWork" if direction.is_forward else "TInSegsWork"

    def seg_init(self, direction: Direction) -> int:
        """Seed the working table with deduplicated (possibly reversed) edges."""
        name = self._work_table_name(direction)
        fid_col, tid_col = (
            ("fid", "tid") if direction.is_forward else ("tid", "fid")
        )
        self._execute_unlogged(f"DROP TABLE IF EXISTS {name}")
        self._execute(
            f"""
            CREATE TABLE {name} AS
            SELECT {fid_col} AS fid, {tid_col} AS tid, {fid_col} AS pid,
                   min(cost) AS cost, 0 AS f
            FROM TEdges
            WHERE {fid_col} != {tid_col}
            GROUP BY {fid_col}, {tid_col}
            """
        )
        self._execute_unlogged(
            f"CREATE UNIQUE INDEX ix_{name.lower()}_pair ON {name} (fid, tid)"
        )
        return int(
            self._execute_unlogged(f"SELECT count(*) FROM {name}").fetchone()[0]
        )

    def seg_min_unexpanded(self, direction: Direction) -> Optional[float]:
        """Minimal cost among unexpanded working segments."""
        name = self._work_table_name(direction)
        row = self._execute(f"SELECT min(cost) FROM {name} WHERE f = 0").fetchone()
        return None if row[0] is None else float(row[0])

    def seg_select_frontier(self, direction: Direction, max_cost: float) -> int:
        """Mark unexpanded working segments up to ``max_cost`` as frontier."""
        name = self._work_table_name(direction)
        self._execute(
            f"""
            UPDATE {name} SET f = 2
            WHERE f = 0 AND (cost <= ? OR cost = (SELECT min(cost) FROM {name} WHERE f = 0))
            """,
            (max_cost,),
        )
        return self._changes()

    def seg_expand(self, direction: Direction, lthd: float) -> int:
        """One construction expansion over the frontier segments."""
        name = self._work_table_name(direction)
        key_col, other_col = direction.edge_key, direction.edge_other
        candidate_sql = f"""
            SELECT s.fid AS fid, e.{other_col} AS tid, s.tid AS pid,
                   s.cost + e.cost AS cost
            FROM {name} s JOIN TEdges e ON s.tid = e.{key_col}
            WHERE s.f = 2 AND s.cost + e.cost <= ? AND e.{other_col} != s.fid
        """
        if validate_sql_style(self.sql_style) == NSQL:
            self._execute(
                f"""
                INSERT INTO {name} (fid, tid, pid, cost, f)
                SELECT fid, tid, pid, cost, 0 FROM (
                    SELECT fid, tid, pid, cost,
                           row_number() OVER (PARTITION BY fid, tid ORDER BY cost) AS rownum
                    FROM ({candidate_sql})
                ) WHERE rownum = 1
                ON CONFLICT(fid, tid) DO UPDATE SET
                    cost = excluded.cost, pid = excluded.pid, f = 0
                WHERE {name}.cost > excluded.cost
                """,
                (lthd,),
            )
            return self._changes()
        self._execute_unlogged("DROP TABLE IF EXISTS tmp_segcand")
        self._execute(
            f"""
            CREATE TEMP TABLE tmp_segcand AS
            SELECT cand.fid, cand.tid, min(cand.pid) AS pid, cand.cost
            FROM ({candidate_sql}) cand
            JOIN (SELECT fid, tid, min(cost) AS mincost FROM ({candidate_sql})
                  GROUP BY fid, tid) agg
              ON cand.fid = agg.fid AND cand.tid = agg.tid AND cand.cost = agg.mincost
            GROUP BY cand.fid, cand.tid, cand.cost
            """,
            (lthd, lthd),
        )
        self._execute(
            f"""
            UPDATE {name} SET
                cost = (SELECT cost FROM tmp_segcand t
                        WHERE t.fid = {name}.fid AND t.tid = {name}.tid),
                pid = (SELECT pid FROM tmp_segcand t
                       WHERE t.fid = {name}.fid AND t.tid = {name}.tid),
                f = 0
            WHERE EXISTS (SELECT 1 FROM tmp_segcand t
                          WHERE t.fid = {name}.fid AND t.tid = {name}.tid
                            AND t.cost < {name}.cost)
            """
        )
        updated = self._changes()
        self._execute(
            f"""
            INSERT INTO {name} (fid, tid, pid, cost, f)
            SELECT fid, tid, pid, cost, 0 FROM tmp_segcand t
            WHERE NOT EXISTS (SELECT 1 FROM {name} w
                              WHERE w.fid = t.fid AND w.tid = t.tid)
            """
        )
        inserted = self._changes()
        self._execute_unlogged("DROP TABLE IF EXISTS tmp_segcand")
        return updated + inserted

    def seg_finalize_frontier(self, direction: Direction) -> int:
        """Mark the last construction frontier as expanded."""
        name = self._work_table_name(direction)
        self._execute(f"UPDATE {name} SET f = 1 WHERE f = 2")
        return self._changes()

    def seg_finish(self, direction: Direction, lthd: float,
                   index_mode: str = IndexMode.CLUSTERED) -> int:
        """Materialize ``TOutSegs`` / ``TInSegs`` from the working table."""
        index_mode = IndexMode.validate(index_mode)
        work = self._work_table_name(direction)
        name = direction.seg_table
        self._execute_unlogged(f"DROP TABLE IF EXISTS {name}")
        self._execute(
            f"CREATE TABLE {name} AS SELECT fid, tid, pid, cost FROM {work}"
        )
        if index_mode != IndexMode.NONE:
            self._execute_unlogged(
                f"CREATE INDEX ix_{name.lower()}_fid ON {name} (fid)"
            )
        self._execute_unlogged(f"DROP TABLE IF EXISTS {work}")
        # Publish the finished SegTable: pooled reader clones are separate
        # connections and only see committed data.
        self.connection.commit()
        self.has_segtable = True
        self.segtable_lthd = lthd
        return int(
            self._execute_unlogged(f"SELECT count(*) FROM {name}").fetchone()[0]
        )

    def seg_rows(self, direction: Direction) -> List[Dict[str, object]]:
        """Return the stored segments for ``direction``."""
        exists = self.connection.execute(
            "SELECT count(*) FROM sqlite_master WHERE type='table' AND name=?",
            (direction.seg_table,),
        ).fetchone()[0]
        if not exists:
            return []
        rows = self._execute_unlogged(
            f"SELECT fid, tid, pid, cost FROM {direction.seg_table}"
        ).fetchall()
        return [dict(zip(["fid", "tid", "pid", "cost"], row)) for row in rows]


def _create_sqlite_store(path: Optional[str] = None,
                         buffer_capacity: int = 256) -> SQLiteGraphStore:
    """Backend-registry factory; SQLite manages its own page cache, so the
    ``buffer_capacity`` lifecycle argument is accepted but unused."""
    del buffer_capacity
    return SQLiteGraphStore(path=path or ":memory:")


# replace=True keeps re-imports (importlib.reload, notebook autoreload)
# from tripping the duplicate-name guard.
register_backend(SQLiteGraphStore.backend_name, _create_sqlite_store,
                 replace=True)
