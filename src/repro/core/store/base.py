"""Abstract interface every graph store implements.

Each method corresponds to one SQL statement of the paper's Listings 2–4 (or
to a DDL/bulk-load step performed once per graph).  Implementations must
charge issued statements, per-operator timing and affected-row counts to the
:class:`~repro.core.stats.QueryStats` object supplied via
:meth:`GraphStore.begin_query`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro.core.directions import Direction
from repro.core.stats import QueryStats, SegTableBuildStats
from repro.errors import PersistenceUnsupportedError, StoreCloneUnsupportedError
from repro.graph.model import Graph


class IndexMode:
    """Index strategies of Figure 8(c)."""

    CLUSTERED = "clustered"
    NONCLUSTERED = "nonclustered"
    NONE = "none"

    ALL = (CLUSTERED, NONCLUSTERED, NONE)

    @classmethod
    def validate(cls, mode: str) -> str:
        """Return ``mode`` lower-cased, raising ``ValueError`` when unknown."""
        normalized = mode.lower()
        if normalized not in cls.ALL:
            raise ValueError(f"unknown index mode {mode!r}; expected one of {cls.ALL}")
        return normalized


class GraphStore(ABC):
    """The relational backend the FEM algorithms issue statements against.

    Concrete stores set :attr:`backend_name` and register a factory in
    :mod:`repro.core.store.registry`; the service layer instantiates them
    exclusively through that registry.
    """

    backend_name: str = ""
    """Registry name of this store class (empty for unregistered stores)."""

    supports_concurrent_readers: bool = False
    """Whether independent reader handles of this backend (the primary store
    plus its :meth:`clone` / rehydrated replicas) may answer queries from
    different threads at the same time.

    The :class:`~repro.service.pool.StorePool` enforces this flag: a backend
    that leaves it ``False`` never gets more than one pooled connection, so
    its queries serialize even when the caller asks for a wider pool.  A
    backend may set it ``True`` when each pooled member owns (or safely
    shares read-only) its underlying data — e.g. one SQLite connection per
    member over the same database file.
    """

    def __init__(self) -> None:
        self.stats: QueryStats = QueryStats()
        self.sql_style: str = "nsql"
        self.has_segtable: bool = False
        self.segtable_lthd: Optional[float] = None

    def quiesce(self) -> None:
        """Release cross-query resources so the store can sit idle.

        The store pool calls this at every checkin.  Engines that
        accumulate state between statements override it — SQLite ends the
        implicit transaction its temp-table writes opened, dropping the
        shared lock the connection would otherwise keep on the database
        file (which would block a SegTable build's commit forever).  The
        default is a no-op.
        """

    def max_connections(self) -> Optional[int]:
        """Backend-imposed bound on simultaneously open reader handles of
        *this instance* (the primary plus every pooled clone/replica), or
        ``None`` when the backend imposes none.

        Embedded engines return ``None`` — a second SQLite connection is a
        file handle, effectively free — but a client-server store's
        :meth:`clone` opens a genuine server connection, and servers cap
        those (PostgreSQL's ``max_connections``, a pool's
        ``pool_size``/``max_overflow`` knobs).  The
        :class:`~repro.service.pool.StorePool` clamps its capacity to this
        bound so a wide parallel batch can never exhaust the server.
        """
        return None

    def supports_clone(self) -> bool:
        """Whether :meth:`clone` has a fast path for *this instance* (e.g.
        a ``db_path``-backed SQLite store, but not an in-memory one).  The
        service skips work that only rehydration-based pool growth needs —
        like capturing SegTable rows — when this returns ``True``."""
        return False

    def clone(self) -> "GraphStore":
        """Return a fresh reader handle over this store's already-loaded data.

        This is the cheap pool-growth path: a ``db_path``-backed SQLite store
        clones by opening another connection to the same file, skipping the
        bulk load entirely.  Stores without such a fast path raise
        :class:`~repro.errors.StoreCloneUnsupportedError`, and the pool falls
        back to rehydrating a replica (fresh store + ``load_graph`` +
        ``load_segtable``) instead.

        Clones are *readers*: the pool never calls :meth:`load_graph` or the
        SegTable-construction statements on them, only the per-query
        statements (Listings 2-4).
        """
        raise StoreCloneUnsupportedError(
            f"{type(self).__name__} has no cheap clone path; "
            f"the pool will rehydrate a replica from the hosted graph"
        )

    # -- persistence capability (session catalog) ---------------------------------

    def supports_persistence(self) -> bool:
        """Whether *this instance*'s graph data survives process restart in
        a reattachable form (e.g. a ``db_path``-backed SQLite store, whose
        tables live in the file; not an in-memory store, and not an engine
        whose schema catalog is process-local).

        Only persistent stores participate in the session catalog: the
        catalog records their ``db_path`` so a later
        ``PathService.open(catalog_path=...)`` reattaches without a bulk
        ``load_graph``.  The default is ``False``; every other method in
        this section may then raise :class:`PersistenceUnsupportedError`.
        """
        return False

    def has_persistent_tables(self) -> bool:
        """Whether ``TNodes`` / ``TEdges`` already exist in the backing
        database (a warm reattach opens the file and finds them; a fresh
        store over a new file does not have them yet)."""
        return False

    def has_persistent_segtable(self) -> bool:
        """Whether ``TOutSegs`` / ``TInSegs`` already exist in the backing
        database, i.e. a previously built SegTable survived in the file."""
        return False

    def adopt_segtable(self, lthd: float) -> None:
        """Mark the segment tables already present in the backing database
        as this store's live SegTable (sets :attr:`has_segtable` /
        :attr:`segtable_lthd` without running the offline construction).
        ``lthd`` comes from the catalog entry — the threshold is *not*
        recoverable from the tables themselves."""
        raise self._persistence_unsupported("adopt_segtable")

    def export_graph(self) -> Graph:
        """Read ``TNodes`` / ``TEdges`` back into an in-memory
        :class:`~repro.graph.model.Graph` (always directed — an undirected
        input was stored as two directed edges and round-trips as such).

        This is the warm-attach read path: a ``SELECT`` scan, not the
        write-side ``load_graph`` (no table creation, no bulk insert, no
        index build).
        """
        raise self._persistence_unsupported("export_graph")

    def content_fingerprint(self) -> str:
        """Digest of the stored graph content, comparable with
        :func:`repro.graph.fingerprint.fingerprint_graph` of the graph that
        was loaded.  The catalog uses it to detect a database file that
        changed underneath its manifest entry."""
        raise self._persistence_unsupported("content_fingerprint")

    def persistent_segtable_lthd(self) -> Optional[float]:
        """The ``lthd`` the persisted SegTable was built with, when the
        backend records it durably next to the tables (the DB-API store
        keeps a small metadata relation for exactly this), else ``None``.
        A catalog warm start prefers the manifest's value; this exists so
        a server-side database can be adopted even *without* a catalog
        entry (``PathService.open(backend=..., dsn=...)``)."""
        return None

    def supports_relocation(self) -> bool:
        """Whether *this instance*'s backing database can be copied to a
        new location wholesale via :meth:`export_database` — graph tables,
        indexes, and any materialized SegTable included.

        This is the capability the shard router's rebalance rides on: a
        relocatable store lets ``ShardRouter.move`` ship a graph (and its
        already-built SegTable) to another shard's catalog directory
        without re-running the offline construction.  The default is
        ``False``.
        """
        return False

    def export_database(self, dest_path: str) -> None:
        """Copy the backing database to ``dest_path`` as a consistent
        snapshot (for SQLite, via the online backup API, so concurrent
        readers of the source file are safe).  The copy is byte-equivalent
        in content: opening it yields the same tables, the same
        fingerprint, and the same SegTable relations, ready for
        :meth:`adopt_segtable`.

        Raises:
            PersistenceUnsupportedError: when the store is not relocatable
                (in-memory, or a backend without durable files).
        """
        raise self._persistence_unsupported("export_database")

    def _persistence_unsupported(self, operation: str) -> PersistenceUnsupportedError:
        return PersistenceUnsupportedError(
            f"{type(self).__name__} does not persist graph data "
            f"({operation} is unavailable); only db_path-backed stores of a "
            f"persistence-capable backend can join the session catalog"
        )

    # -- graph and index lifecycle ------------------------------------------------

    @abstractmethod
    def load_graph(self, graph: Graph, index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create ``TNodes`` / ``TEdges`` and bulk-load ``graph`` into them."""

    @abstractmethod
    def load_segtable(self, out_segments: Sequence[Dict[str, object]],
                      in_segments: Sequence[Dict[str, object]],
                      lthd: float,
                      index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create and populate ``TOutSegs`` / ``TInSegs`` from segment rows."""

    @abstractmethod
    def segment_counts(self) -> Dict[str, int]:
        """Return ``{"out": ..., "in": ...}`` segment counts (index size)."""

    @abstractmethod
    def close(self) -> None:
        """Release the underlying database resources."""

    def destroy(self) -> None:
        """Drop this store's durable data (where any exists) and close it.

        Calibration probes and test fixtures call this instead of
        :meth:`close` so a shared *server* database is left clean — the
        DB-API store drops its (prefix-namespaced) graph tables.  For
        embedded stores the default — plain :meth:`close` — already
        discards everything that should be discarded; a ``db_path``-backed
        SQLite file is deliberately NOT deleted.
        """
        self.close()

    def calibration_path(self) -> Optional[str]:
        """The ``path`` argument a *calibration probe* store of this
        backend should be created with, or ``None`` for a fresh in-memory
        store (the default, right for embedded engines).

        Client-server backends have no "in-memory" mode: their probes must
        run against the same server — the measured constants are the
        server's — but in a private table namespace, so each call returns
        a DSN with a fresh probe prefix that can never clobber hosted
        graph tables (see :mod:`repro.service.calibrate`).
        """
        return None

    # -- per-query setup --------------------------------------------------------------

    def begin_query(self, stats: QueryStats, sql_style: str = "nsql") -> None:
        """Attach the statistics sink and SQL style for the next query."""
        self.stats = stats
        self.sql_style = sql_style

    @abstractmethod
    def reset_visited(self) -> None:
        """Create (or truncate) the ``TVisited`` table."""

    @abstractmethod
    def insert_visited(self, rows: Sequence[Dict[str, object]]) -> None:
        """Insert initial rows into ``TVisited`` (Listing 2(1))."""

    # -- statistics-collection statements (SC phase) -------------------------------------

    @abstractmethod
    def top1_min_unfinalized(self, direction: Direction) -> Optional[int]:
        """``SELECT TOP 1 nid`` with the minimal distance among non-finalized
        nodes (Listing 2(2)); ``None`` when no candidate remains."""

    @abstractmethod
    def min_unfinalized_distance(self, direction: Direction) -> Optional[float]:
        """``SELECT min(dist) FROM TVisited WHERE flag = 0`` (Listing 4(4))."""

    @abstractmethod
    def count_unfinalized(self, direction: Direction) -> int:
        """Number of candidate frontier nodes (flag = 0) for ``direction``."""

    @abstractmethod
    def min_total_cost(self) -> float:
        """``SELECT min(d2s + d2t) FROM TVisited`` (Listing 4(5)); +inf when
        the searches have not met."""

    @abstractmethod
    def meeting_node(self, min_cost: float) -> Optional[int]:
        """``SELECT nid FROM TVisited WHERE d2s + d2t = minCost`` (Listing 4(6))."""

    @abstractmethod
    def is_finalized(self, nid: int, direction: Direction) -> bool:
        """Termination detection (Listing 3(1))."""

    @abstractmethod
    def visited_count(self) -> int:
        """Number of rows in ``TVisited`` (the "Vst" column of Table 3)."""

    @abstractmethod
    def visited_rows(self) -> List[Dict[str, object]]:
        """Materialize ``TVisited`` (used by tests and debugging)."""

    # -- F-operator statements ---------------------------------------------------------------

    @abstractmethod
    def finalize_node(self, nid: int, direction: Direction) -> None:
        """``UPDATE TVisited SET flag = 1 WHERE nid = mid`` (Listing 3(2))."""

    @abstractmethod
    def select_frontier_set(self, direction: Direction,
                            max_distance: float) -> int:
        """Mark frontier candidates with flag = 2 (Listing 4(1)).

        A node is selected when its flag is 0 and its distance is at most
        ``max_distance`` **or** equal to the minimal distance among flag-0
        nodes.  Returns the number of selected nodes.
        """

    @abstractmethod
    def finalize_frontier(self, direction: Direction) -> int:
        """``UPDATE TVisited SET flag = 1 WHERE flag = 2`` (Listing 4(3))."""

    # -- E + M operators -------------------------------------------------------------------------

    @abstractmethod
    def expand(self, direction: Direction, mid: Optional[int] = None,
               use_segtable: bool = False,
               prune_lb: Optional[float] = None,
               prune_min_cost: Optional[float] = None) -> int:
        """Run the combined E- and M-operator for one expansion.

        Args:
            direction: search direction.
            mid: when given, expand only the node ``mid`` (node-at-a-time,
                Listing 2(3)); otherwise expand every node with flag = 2
                (set-at-a-time, Listing 4(2)).
            use_segtable: expand over ``TOutSegs`` / ``TInSegs`` instead of
                ``TEdges``.
            prune_lb: the opposite direction's latest finalized distance
                (``l_b`` in Theorem 1); ``None`` disables pruning.
            prune_min_cost: the best path length discovered so far
                (``minCost``); ``None`` disables pruning.

        Returns:
            The number of affected TVisited rows (the SQLCA count).
        """

    def expand_hops(self, direction: Direction) -> int:
        """Run one *hop-counting* E/M expansion of the flag-2 frontier.

        The unweighted sibling of the set-at-a-time :meth:`expand`: every
        frontier node's out-neighbors (in-neighbors backward) become
        candidates at distance ``frontier + 1`` — edge weights ignored —
        and, unlike the weighted merge, the insert never updates an
        existing ``TVisited`` row.  Because the hop drivers always select
        the *entire* unfinalized set as the frontier, every visited node
        already carries its minimal hop count, so insert-only is exact and
        keeps predecessor links stable (ties break to the smallest
        frontier ``nid``, which makes the recovered witness path
        deterministic across backends).

        Returns:
            The number of newly inserted TVisited rows.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement hop-counting "
            f"expansion; bounded-hop and reachability queries need it"
        )

    # -- path recovery (FPR phase) ------------------------------------------------------------------

    @abstractmethod
    def get_link(self, nid: int, direction: Direction) -> Optional[int]:
        """``SELECT p2s/p2t FROM TVisited WHERE nid = ?`` (Listing 3(3))."""

    @abstractmethod
    def get_distance(self, nid: int, direction: Direction) -> Optional[float]:
        """Distance of ``nid`` from the direction's origin, if visited."""

    # -- SegTable construction statements (Section 4.2) -------------------------------------------------

    @abstractmethod
    def seg_init(self, direction: Direction) -> int:
        """Initialize the working segment table from ``TEdges`` (deduplicated
        parallel edges); returns the number of seed segments."""

    @abstractmethod
    def seg_min_unexpanded(self, direction: Direction) -> Optional[float]:
        """Minimal cost among unexpanded working segments."""

    @abstractmethod
    def seg_select_frontier(self, direction: Direction, max_cost: float) -> int:
        """Mark unexpanded working segments with cost <= ``max_cost`` (or the
        minimal cost) as the construction frontier; returns how many."""

    @abstractmethod
    def seg_expand(self, direction: Direction, lthd: float) -> int:
        """One construction expansion: join frontier segments with ``TEdges``,
        keep results within ``lthd``, and merge them into the working table.
        Returns the number of affected working rows."""

    @abstractmethod
    def seg_finalize_frontier(self, direction: Direction) -> int:
        """Mark the last construction frontier as expanded."""

    @abstractmethod
    def seg_finish(self, direction: Direction, lthd: float,
                   index_mode: str = IndexMode.CLUSTERED) -> int:
        """Materialize the final SegTable relation for ``direction`` from the
        working table; returns the number of stored segments."""

    @abstractmethod
    def seg_rows(self, direction: Direction) -> List[Dict[str, object]]:
        """Return the stored segments for ``direction`` (tests / persistence)."""
