"""Graph store over the built-in mini relational engine.

This store plays the role of the paper's DBMS-x: tables live in the
page-based storage engine behind a buffer pool, the E-operator join probes
the (optionally clustered) index on ``TEdges(fid)`` / ``TOutSegs(fid)``, the
window function removes duplicate expansions, and the M-operator runs as a
MERGE (or as UPDATE + INSERT in the traditional-SQL mode).

Every public method corresponds to one SQL statement in the paper's
Listings 2–4 and charges itself to the current
:class:`~repro.core.stats.QueryStats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.directions import BACKWARD_DIRECTION, Direction, FORWARD_DIRECTION, INFINITY
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import OPERATOR_E, OPERATOR_F, OPERATOR_M
from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.registry import register_backend
from repro.errors import InvalidQueryError
from repro.graph.model import Graph
from repro.rdb.engine import Database
from repro.rdb.merge import merge_into, merge_with_update_insert
from repro.rdb.schema import Column
from repro.rdb.table import Table
from repro.rdb.types import FLOAT, INTEGER
from repro.rdb.window import window_row_number

# Encoding of the composite (fid, tid) key used by the construction working
# tables; node ids must stay below this base, which is ample for the graph
# sizes a pure-Python reproduction runs.
_PAIR_BASE = 1 << 32


def _pair_key(fid: int, tid: int) -> int:
    return fid * _PAIR_BASE + tid


class MiniDBGraphStore(GraphStore):
    """Graph store backed by :class:`repro.rdb.engine.Database`.

    There is no cheap :meth:`~repro.core.store.base.GraphStore.clone` path —
    the engine is a single in-process :class:`Database` — so the store pool
    grows by rehydrating full replicas (fresh store + ``load_graph``).  Each
    replica owns its pages, buffer pool, and indexes outright, which is what
    makes concurrent readers safe to declare.
    """

    backend_name = "minidb"
    supports_concurrent_readers = True

    def __init__(self, database: Optional[Database] = None,
                 buffer_capacity: int = 256,
                 path: Optional[str] = None) -> None:
        super().__init__()
        self.database = database or Database(path=path, buffer_capacity=buffer_capacity)
        self._owns_database = database is None
        self.index_mode = IndexMode.CLUSTERED
        self._graph_loaded = False

    # ------------------------------------------------------------------ helpers

    def _count_statement(self) -> None:
        self.stats.record_statement()

    def _table(self, name: str) -> Table:
        return self.database.table(name)

    @property
    def visited(self) -> Table:
        """The ``TVisited`` table."""
        return self._table("TVisited")

    @property
    def edges(self) -> Table:
        """The ``TEdges`` table."""
        return self._table("TEdges")

    # ------------------------------------------------------------- graph loading

    def load_graph(self, graph: Graph, index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create and populate ``TNodes`` and ``TEdges``."""
        self.index_mode = IndexMode.validate(index_mode)
        nodes = self.database.create_table("TNodes", [Column("nid", INTEGER)])
        edges = self.database.create_table(
            "TEdges",
            [Column("fid", INTEGER), Column("tid", INTEGER), Column("cost", FLOAT)],
        )
        nodes.insert_many({"nid": nid} for nid in sorted(graph.nodes()))
        edge_rows = [
            {"fid": edge.fid, "tid": edge.tid, "cost": edge.cost}
            for edge in graph.edges()
        ]
        if self.index_mode == IndexMode.CLUSTERED:
            edges.bulk_load(edge_rows, order_by="fid")
            edges.create_index("fid", clustered=True)
            edges.create_index("tid")
        elif self.index_mode == IndexMode.NONCLUSTERED:
            edges.bulk_load(edge_rows)
            edges.create_index("fid")
            edges.create_index("tid")
        else:
            edges.bulk_load(edge_rows)
        self._create_visited_table()
        self._graph_loaded = True

    def _create_visited_table(self) -> None:
        if self.database.has_table("TVisited"):
            return
        visited = self.database.create_table(
            "TVisited",
            [
                Column("nid", INTEGER),
                Column("d2s", FLOAT),
                Column("p2s", INTEGER),
                Column("f", INTEGER),
                Column("d2t", FLOAT),
                Column("p2t", INTEGER),
                Column("b", INTEGER),
            ],
        )
        if self.index_mode != IndexMode.NONE:
            visited.create_index("nid", unique=True)

    def load_segtable(self, out_segments: Sequence[Dict[str, object]],
                      in_segments: Sequence[Dict[str, object]],
                      lthd: float,
                      index_mode: str = IndexMode.CLUSTERED) -> None:
        """Create ``TOutSegs`` / ``TInSegs`` from precomputed segment rows."""
        index_mode = IndexMode.validate(index_mode)
        for name, rows in (("TOutSegs", out_segments), ("TInSegs", in_segments)):
            if self.database.has_table(name):
                self.database.drop_table(name)
            table = self.database.create_table(
                name,
                [
                    Column("fid", INTEGER),
                    Column("tid", INTEGER),
                    Column("pid", INTEGER),
                    Column("cost", FLOAT),
                ],
            )
            if index_mode == IndexMode.CLUSTERED:
                table.bulk_load(rows, order_by="fid")
                table.create_index("fid", clustered=True)
            elif index_mode == IndexMode.NONCLUSTERED:
                table.bulk_load(rows)
                table.create_index("fid")
            else:
                table.bulk_load(rows)
        self.has_segtable = True
        self.segtable_lthd = lthd

    def segment_counts(self) -> Dict[str, int]:
        """Segment counts of the loaded SegTable."""
        counts = {"out": 0, "in": 0}
        if self.database.has_table("TOutSegs"):
            counts["out"] = self._table("TOutSegs").row_count
        if self.database.has_table("TInSegs"):
            counts["in"] = self._table("TInSegs").row_count
        return counts

    def close(self) -> None:
        """Close the underlying database if this store created it."""
        if self._owns_database:
            self.database.close()

    # ---------------------------------------------------------------- TVisited setup

    def reset_visited(self) -> None:
        """Truncate ``TVisited`` so a new query starts from scratch."""
        self._create_visited_table()
        self.visited.truncate()

    def insert_visited(self, rows: Sequence[Dict[str, object]]) -> None:
        """Insert the initial visited rows (Listing 2(1))."""
        self._count_statement()
        for row in rows:
            complete = {
                "nid": row["nid"],
                "d2s": row.get("d2s", INFINITY),
                "p2s": row.get("p2s"),
                "f": row.get("f", 0),
                "d2t": row.get("d2t", INFINITY),
                "p2t": row.get("p2t"),
                "b": row.get("b", 0),
            }
            self.visited.insert(complete)

    # ------------------------------------------------------------ statistics statements

    def top1_min_unfinalized(self, direction: Direction) -> Optional[int]:
        """Listing 2(2): the candidate node with the minimal distance."""
        self._count_statement()
        best_nid: Optional[int] = None
        best_dist = INFINITY
        for row in self.visited.scan():
            if row[direction.flag_col] != 0:
                continue
            distance = row[direction.dist_col]
            if distance < best_dist:
                best_dist = distance
                best_nid = int(row["nid"])
        if best_dist == INFINITY:
            return None
        return best_nid

    def min_unfinalized_distance(self, direction: Direction) -> Optional[float]:
        """Listing 4(4): minimal distance among candidate frontier nodes."""
        self._count_statement()
        best = INFINITY
        for row in self.visited.scan():
            if row[direction.flag_col] == 0 and row[direction.dist_col] < best:
                best = row[direction.dist_col]
        return None if best == INFINITY else best

    def count_unfinalized(self, direction: Direction) -> int:
        """Number of candidate frontier nodes for ``direction``."""
        self._count_statement()
        return sum(
            1 for row in self.visited.scan()
            if row[direction.flag_col] == 0 and row[direction.dist_col] < INFINITY
        )

    def min_total_cost(self) -> float:
        """Listing 4(5): minimal ``d2s + d2t`` over all visited nodes."""
        self._count_statement()
        best = INFINITY
        for row in self.visited.scan():
            total = row["d2s"] + row["d2t"]
            if total < best:
                best = total
        return best

    def meeting_node(self, min_cost: float) -> Optional[int]:
        """Listing 4(6): a node whose ``d2s + d2t`` equals ``min_cost``."""
        self._count_statement()
        for row in self.visited.scan():
            if abs(row["d2s"] + row["d2t"] - min_cost) < 1e-9:
                return int(row["nid"])
        return None

    def is_finalized(self, nid: int, direction: Direction) -> bool:
        """Listing 3(1): whether ``nid`` has been finalized in ``direction``."""
        self._count_statement()
        for row in self.visited.lookup("nid", nid):
            return row[direction.flag_col] == 1
        return False

    def visited_count(self) -> int:
        """Number of visited nodes (Table 3's "Vst")."""
        return self.visited.row_count

    def visited_rows(self) -> List[Dict[str, object]]:
        """Materialize ``TVisited``."""
        return list(self.visited.scan())

    # ---------------------------------------------------------------- F-operator statements

    def finalize_node(self, nid: int, direction: Direction) -> None:
        """Listing 3(2): set the finalization flag of ``nid``."""
        self._count_statement()
        with self.stats.operator(OPERATOR_F):
            self.visited.update_where(
                lambda row: row["nid"] == nid,
                lambda row: {direction.flag_col: 1},
            )

    def select_frontier_set(self, direction: Direction, max_distance: float) -> int:
        """Listing 4(1): mark frontier candidates with flag = 2."""
        self._count_statement()
        with self.stats.operator(OPERATOR_F):
            flag, dist = direction.flag_col, direction.dist_col
            minimal = INFINITY
            for row in self.visited.scan():
                if row[flag] == 0 and row[dist] < minimal:
                    minimal = row[dist]
            if minimal == INFINITY:
                return 0
            threshold = max(max_distance, minimal)
            return self.visited.update_where(
                lambda row: row[flag] == 0 and row[dist] <= threshold,
                lambda row: {flag: 2},
            )

    def finalize_frontier(self, direction: Direction) -> int:
        """Listing 4(3): mark the selected frontier as expanded."""
        self._count_statement()
        with self.stats.operator(OPERATOR_F):
            flag = direction.flag_col
            return self.visited.update_where(
                lambda row: row[flag] == 2,
                lambda row: {flag: 1},
            )

    # ------------------------------------------------------------------- E + M operators

    def expand(self, direction: Direction, mid: Optional[int] = None,
               use_segtable: bool = False,
               prune_lb: Optional[float] = None,
               prune_min_cost: Optional[float] = None) -> int:
        """The combined E- and M-operator (Listing 2(3)+(4) / Listing 4(2))."""
        if use_segtable and not self.has_segtable:
            raise InvalidQueryError("SegTable expansion requested but no SegTable loaded")
        self._count_statement()
        with self.stats.operator(OPERATOR_E):
            candidates = self._expand_candidates(
                direction, mid, use_segtable, prune_lb, prune_min_cost
            )
            deduplicated = self._deduplicate(candidates)
        with self.stats.operator(OPERATOR_M):
            affected = self._merge(direction, deduplicated)
        self.stats.affected_rows += affected
        return affected

    def _expand_candidates(self, direction: Direction, mid: Optional[int],
                           use_segtable: bool, prune_lb: Optional[float],
                           prune_min_cost: Optional[float]) -> List[Dict[str, object]]:
        """E-operator: join the frontier with the edge/segment relation."""
        dist_col, flag_col = direction.dist_col, direction.flag_col
        if mid is not None:
            frontier = [row for row in self.visited.lookup("nid", mid)]
        else:
            frontier = [row for row in self.visited.scan() if row[flag_col] == 2]
        if use_segtable:
            relation = self._table(direction.seg_table)
            key_column, other_column = "fid", "tid"
        else:
            relation = self.edges
            key_column, other_column = direction.edge_key, direction.edge_other
        pruning = prune_lb is not None and prune_min_cost is not None
        candidates: List[Dict[str, object]] = []
        for frontier_row in frontier:
            base_distance = frontier_row[dist_col]
            if base_distance >= INFINITY:
                continue
            for edge_row in relation.lookup(key_column, frontier_row["nid"]):
                candidate_cost = base_distance + edge_row["cost"]
                if pruning and candidate_cost + prune_lb > prune_min_cost:
                    continue
                if use_segtable:
                    predecessor = edge_row["pid"]
                else:
                    predecessor = frontier_row["nid"]
                candidates.append(
                    {
                        "nid": edge_row[other_column],
                        "cost": candidate_cost,
                        "pred": predecessor,
                    }
                )
        return candidates

    def _deduplicate(self, candidates: List[Dict[str, object]]) -> List[Dict[str, object]]:
        """Keep the cheapest occurrence per expanded node.

        NSQL uses the window function; TSQL uses a GROUP BY aggregate plus a
        second pass over the candidates to recover the predecessor.
        """
        if not candidates:
            return []
        if validate_sql_style(self.sql_style) == NSQL:
            ranked = window_row_number(
                candidates,
                partition_by=["nid"],
                order_by=[(lambda row: row["cost"], True)],
            )
            return [row for row in ranked if row["rownum"] == 1]
        # Traditional SQL: aggregate, then join back to locate the predecessor
        # (the extra join counts as an extra statement, mirroring Figure 6(d)).
        self._count_statement()
        minima: Dict[object, float] = {}
        for row in candidates:
            nid = row["nid"]
            if nid not in minima or row["cost"] < minima[nid]:
                minima[nid] = row["cost"]
        results: List[Dict[str, object]] = []
        seen: set = set()
        for row in candidates:
            nid = row["nid"]
            if nid in seen:
                continue
            if row["cost"] == minima[nid]:
                results.append(row)
                seen.add(nid)
        return results

    def _merge(self, direction: Direction, rows: List[Dict[str, object]]) -> int:
        """M-operator: merge deduplicated candidates into ``TVisited``."""
        if not rows:
            return 0
        dist_col, pred_col, flag_col = (
            direction.dist_col, direction.pred_col, direction.flag_col,
        )

        def matched_condition(target: Dict[str, object], source: Dict[str, object]) -> bool:
            return target[dist_col] > source["cost"]

        def matched_update(target: Dict[str, object],
                           source: Dict[str, object]) -> Dict[str, object]:
            return {dist_col: source["cost"], pred_col: source["pred"], flag_col: 0}

        def not_matched_insert(source: Dict[str, object]) -> Dict[str, object]:
            row = {
                "nid": source["nid"],
                "d2s": INFINITY,
                "p2s": None,
                "f": 0,
                "d2t": INFINITY,
                "p2t": None,
                "b": 0,
            }
            row[dist_col] = source["cost"]
            row[pred_col] = source["pred"]
            row[flag_col] = 0
            return row

        if validate_sql_style(self.sql_style) == NSQL:
            merge_function = merge_into
        else:
            # UPDATE followed by INSERT ... NOT EXISTS: one extra statement.
            merge_function = merge_with_update_insert
            self._count_statement()
        result = merge_function(
            self.visited, rows, key_column="nid", source_key="nid",
            matched_condition=matched_condition,
            matched_update=matched_update,
            not_matched_insert=not_matched_insert,
        )
        return result.affected

    def expand_hops(self, direction: Direction) -> int:
        """Hop-counting E/M: insert-only frontier expansion (weights ignored).

        Candidates are the frontier's neighbors at ``frontier + 1`` hops;
        ties break to the smallest frontier ``nid`` so the witness path is
        deterministic across backends.  Nodes already in ``TVisited`` are
        skipped entirely — the hop drivers select whole layers, so every
        visited node already holds its minimal hop count.
        """
        self._count_statement()
        dist_col, pred_col, flag_col = (
            direction.dist_col, direction.pred_col, direction.flag_col,
        )
        with self.stats.operator(OPERATOR_E):
            frontier = [row for row in self.visited.scan()
                        if row[flag_col] == 2]
            best: Dict[int, Dict[str, object]] = {}
            for frontier_row in frontier:
                base_distance = frontier_row[dist_col]
                if base_distance >= INFINITY:
                    continue
                origin = int(frontier_row["nid"])
                for edge_row in self.edges.lookup(direction.edge_key,
                                                  origin):
                    nid = int(edge_row[direction.edge_other])
                    candidate = {"nid": nid, "cost": base_distance + 1.0,
                                 "pred": origin}
                    held = best.get(nid)
                    if (held is None or candidate["cost"] < held["cost"]
                            or (candidate["cost"] == held["cost"]
                                and origin < held["pred"])):
                        best[nid] = candidate
        inserted = 0
        with self.stats.operator(OPERATOR_M):
            for nid in sorted(best):
                if any(True for _ in self.visited.lookup("nid", nid)):
                    continue
                source = best[nid]
                row = {
                    "nid": nid,
                    "d2s": INFINITY,
                    "p2s": None,
                    "f": 0,
                    "d2t": INFINITY,
                    "p2t": None,
                    "b": 0,
                }
                row[dist_col] = source["cost"]
                row[pred_col] = source["pred"]
                row[flag_col] = 0
                self.visited.insert(row)
                inserted += 1
        self.stats.affected_rows += inserted
        return inserted

    # ----------------------------------------------------------------------- path recovery

    def get_link(self, nid: int, direction: Direction) -> Optional[int]:
        """Listing 3(3): the p2s / p2t link of ``nid``."""
        self._count_statement()
        for row in self.visited.lookup("nid", nid):
            value = row[direction.pred_col]
            return None if value is None else int(value)
        return None

    def get_distance(self, nid: int, direction: Direction) -> Optional[float]:
        """Distance of ``nid`` in ``direction``, or ``None`` when not visited."""
        self._count_statement()
        for row in self.visited.lookup("nid", nid):
            distance = row[direction.dist_col]
            return None if distance >= INFINITY else float(distance)
        return None

    # -------------------------------------------------------------- SegTable construction

    def _work_table_name(self, direction: Direction) -> str:
        return "TOutSegsWork" if direction.is_forward else "TInSegsWork"

    def seg_init(self, direction: Direction) -> int:
        """Seed the working table with the (deduplicated) edges of ``TEdges``.

        For the backward direction the edges are reversed so the working
        table is keyed by the segment end node.
        """
        self._count_statement()
        name = self._work_table_name(direction)
        if self.database.has_table(name):
            self.database.drop_table(name)
        work = self.database.create_table(
            name,
            [
                Column("pairkey", INTEGER),
                Column("fid", INTEGER),
                Column("tid", INTEGER),
                Column("pid", INTEGER),
                Column("cost", FLOAT),
                Column("f", INTEGER),
            ],
        )
        work.create_index("pairkey", unique=True)
        work.create_index("fid")
        cheapest: Dict[tuple, Dict[str, object]] = {}
        for edge in self.edges.scan():
            if direction.is_forward:
                fid, tid = int(edge["fid"]), int(edge["tid"])
            else:
                fid, tid = int(edge["tid"]), int(edge["fid"])
            if fid == tid:
                continue
            key = (fid, tid)
            if key not in cheapest or edge["cost"] < cheapest[key]["cost"]:
                cheapest[key] = {
                    "pairkey": _pair_key(fid, tid),
                    "fid": fid,
                    "tid": tid,
                    "pid": fid,
                    "cost": edge["cost"],
                    "f": 0,
                }
        work.insert_many(cheapest.values())
        return len(cheapest)

    def seg_min_unexpanded(self, direction: Direction) -> Optional[float]:
        """Minimal cost among unexpanded working segments."""
        self._count_statement()
        work = self._table(self._work_table_name(direction))
        best = INFINITY
        for row in work.scan():
            if row["f"] == 0 and row["cost"] < best:
                best = row["cost"]
        return None if best == INFINITY else best

    def seg_select_frontier(self, direction: Direction, max_cost: float) -> int:
        """Mark unexpanded segments with cost <= ``max_cost`` (or minimal)."""
        self._count_statement()
        work = self._table(self._work_table_name(direction))
        minimal = INFINITY
        for row in work.scan():
            if row["f"] == 0 and row["cost"] < minimal:
                minimal = row["cost"]
        if minimal == INFINITY:
            return 0
        threshold = max(max_cost, minimal)
        return work.update_where(
            lambda row: row["f"] == 0 and row["cost"] <= threshold,
            lambda row: {"f": 2},
        )

    def seg_expand(self, direction: Direction, lthd: float) -> int:
        """One construction expansion over the frontier segments."""
        self._count_statement()
        work = self._table(self._work_table_name(direction))
        frontier = [row for row in work.scan() if row["f"] == 2]
        candidates: List[Dict[str, object]] = []
        for segment in frontier:
            # Extend the segment by one original edge leaving its end node.
            end_node = int(segment["tid"])
            for edge_row in self.edges.lookup(direction.edge_key, end_node):
                new_tid = int(edge_row[direction.edge_other])
                if new_tid == segment["fid"]:
                    continue
                new_cost = segment["cost"] + edge_row["cost"]
                if new_cost > lthd:
                    continue
                candidates.append(
                    {
                        "fid": int(segment["fid"]),
                        "tid": new_tid,
                        "pid": end_node,
                        "cost": new_cost,
                    }
                )
        if not candidates:
            return 0
        if validate_sql_style(self.sql_style) == NSQL:
            ranked = window_row_number(
                [dict(row, pairkey=_pair_key(row["fid"], row["tid"])) for row in candidates],
                partition_by=["pairkey"],
                order_by=[(lambda row: row["cost"], True)],
            )
            deduplicated = [row for row in ranked if row["rownum"] == 1]
        else:
            minima: Dict[int, Dict[str, object]] = {}
            for row in candidates:
                key = _pair_key(row["fid"], row["tid"])
                if key not in minima or row["cost"] < minima[key]["cost"]:
                    minima[key] = dict(row, pairkey=key)
            deduplicated = list(minima.values())

        def matched_condition(target: Dict[str, object], source: Dict[str, object]) -> bool:
            return target["cost"] > source["cost"]

        def matched_update(target: Dict[str, object],
                           source: Dict[str, object]) -> Dict[str, object]:
            return {"cost": source["cost"], "pid": source["pid"], "f": 0}

        def not_matched_insert(source: Dict[str, object]) -> Dict[str, object]:
            return {
                "pairkey": source["pairkey"],
                "fid": source["fid"],
                "tid": source["tid"],
                "pid": source["pid"],
                "cost": source["cost"],
                "f": 0,
            }

        merge_function = (
            merge_into if validate_sql_style(self.sql_style) == NSQL
            else merge_with_update_insert
        )
        result = merge_function(
            work, deduplicated, key_column="pairkey", source_key="pairkey",
            matched_condition=matched_condition,
            matched_update=matched_update,
            not_matched_insert=not_matched_insert,
        )
        return result.affected

    def seg_finalize_frontier(self, direction: Direction) -> int:
        """Mark the last construction frontier as expanded."""
        self._count_statement()
        work = self._table(self._work_table_name(direction))
        return work.update_where(
            lambda row: row["f"] == 2,
            lambda row: {"f": 1},
        )

    def seg_finish(self, direction: Direction, lthd: float,
                   index_mode: str = IndexMode.CLUSTERED) -> int:
        """Materialize ``TOutSegs`` / ``TInSegs`` from the working table."""
        self._count_statement()
        index_mode = IndexMode.validate(index_mode)
        work = self._table(self._work_table_name(direction))
        name = direction.seg_table
        if self.database.has_table(name):
            self.database.drop_table(name)
        table = self.database.create_table(
            name,
            [
                Column("fid", INTEGER),
                Column("tid", INTEGER),
                Column("pid", INTEGER),
                Column("cost", FLOAT),
            ],
        )
        rows = [
            {"fid": row["fid"], "tid": row["tid"], "pid": row["pid"], "cost": row["cost"]}
            for row in work.scan()
        ]
        if index_mode == IndexMode.CLUSTERED:
            table.bulk_load(rows, order_by="fid")
            table.create_index("fid", clustered=True)
        elif index_mode == IndexMode.NONCLUSTERED:
            table.bulk_load(rows)
            table.create_index("fid")
        else:
            table.bulk_load(rows)
        self.database.drop_table(self._work_table_name(direction))
        self.has_segtable = True
        self.segtable_lthd = lthd
        return table.row_count

    def seg_rows(self, direction: Direction) -> List[Dict[str, object]]:
        """Return the stored segments for ``direction``."""
        if not self.database.has_table(direction.seg_table):
            return []
        return list(self._table(direction.seg_table).scan())


def _create_minidb_store(path: Optional[str] = None,
                         buffer_capacity: int = 256) -> MiniDBGraphStore:
    """Backend-registry factory (see :mod:`repro.core.store.registry`)."""
    return MiniDBGraphStore(buffer_capacity=buffer_capacity, path=path)


# replace=True keeps re-imports (importlib.reload, notebook autoreload)
# from tripping the duplicate-name guard.
register_backend(MiniDBGraphStore.backend_name, _create_minidb_store,
                 replace=True)

__all__ = ["MiniDBGraphStore", "FORWARD_DIRECTION", "BACKWARD_DIRECTION"]
