"""Graph stores: the "RDB side" of the FEM framework.

A store owns the relational tables (``TNodes``, ``TEdges``, ``TVisited``,
``TOutSegs``, ``TInSegs``) and exposes one method per SQL statement in the
paper's Listings 2–4.  The search algorithms in ``repro.core`` are thin
clients issuing those statements, exactly as the paper's Java client drives
the RDB through JDBC.

Two implementations are provided:

* :class:`~repro.core.store.minidb.MiniDBGraphStore` — backed by the
  built-in relational engine (``repro.rdb``), giving full control over the
  buffer pool and index clustering (the paper's DBMS-x role).
* :class:`~repro.core.store.sqlite.SQLiteGraphStore` — backed by SQLite with
  literal SQL text, playing the role of the paper's "second platform"
  (PostgreSQL), including its lack of a MERGE statement.

Stores register themselves in the backend registry
(:mod:`repro.core.store.registry`) when imported; importing this package is
what populates the default ``minidb`` and ``sqlite`` entries — and, via
:mod:`repro.store`, the client-server ``dbapi`` / ``postgres`` ones.
Additional engines plug in via :func:`register_backend` without any
service-layer changes.
"""

from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.registry import (
    available_backends,
    backend_factory,
    create_store,
    is_dsn,
    register_backend,
    unregister_backend,
)
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore

# Registered last: the client-server family builds on the base interfaces
# above (the submodule import by full name is safe mid-package-init).
import repro.store  # noqa: E402,F401

__all__ = [
    "GraphStore",
    "IndexMode",
    "MiniDBGraphStore",
    "SQLiteGraphStore",
    "available_backends",
    "backend_factory",
    "create_store",
    "is_dsn",
    "register_backend",
    "unregister_backend",
]
