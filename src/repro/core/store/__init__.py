"""Graph stores: the "RDB side" of the FEM framework.

A store owns the relational tables (``TNodes``, ``TEdges``, ``TVisited``,
``TOutSegs``, ``TInSegs``) and exposes one method per SQL statement in the
paper's Listings 2–4.  The search algorithms in ``repro.core`` are thin
clients issuing those statements, exactly as the paper's Java client drives
the RDB through JDBC.

Two implementations are provided:

* :class:`~repro.core.store.minidb.MiniDBGraphStore` — backed by the
  built-in relational engine (``repro.rdb``), giving full control over the
  buffer pool and index clustering (the paper's DBMS-x role).
* :class:`~repro.core.store.sqlite.SQLiteGraphStore` — backed by SQLite with
  literal SQL text, playing the role of the paper's "second platform"
  (PostgreSQL), including its lack of a MERGE statement.
"""

from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore

__all__ = ["GraphStore", "IndexMode", "MiniDBGraphStore", "SQLiteGraphStore"]
