"""BBFS — bi-directional relational breadth-first search.

BBFS is the "extreme" set-at-a-time strategy discussed in Section 4.2: every
candidate node is expanded in every round, which minimizes the number of SQL
round trips but can blow up the search space (nodes are re-expanded whenever
their distance improves).  It shares the bi-directional driver with BDJ /
BSDJ / BSEG; only the frontier policy differs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bidirectional import FrontierPolicy, bidirectional_search
from repro.core.directions import INFINITY
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.store.base import GraphStore

BBFS_POLICY = FrontierPolicy(name="BBFS", set_mode=True, distance_factor=INFINITY)


def bidirectional_bfs(store: GraphStore, source: int, target: int,
                      sql_style: str = NSQL,
                      max_iterations: Optional[int] = None,
                      deadline: Optional[float] = None) -> PathResult:
    """BBFS: expand every candidate node in each round, in both directions."""
    return bidirectional_search(store, source, target, BBFS_POLICY,
                                sql_style=sql_style, max_iterations=max_iterations,
                                deadline=deadline)
