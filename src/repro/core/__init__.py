"""Core library: the relational FEM framework and shortest-path algorithms.

This package implements the paper's contribution:

* the **FEM framework** (Section 3): frontier selection (F), expansion (E)
  and merge (M) expressed as relational statements over a ``TVisited`` table;
* the relational shortest-path algorithms — **DJ** (Algorithm 1), **BDJ**,
  **BSDJ** (Section 4.1), **BBFS** and **BSEG** (Algorithm 2);
* the **SegTable** index and its FEM-based construction (Section 4.2);
* the top-level :func:`~repro.core.api.shortest_path` convenience API and
  the in-memory competitors wiring (MDJ / MBDJ).

Algorithms talk to a :class:`~repro.core.store.base.GraphStore`, which plays
the role of "the RDB reached over JDBC" in the paper: every method call
corresponds to one SQL statement of Listings 2–4.  Two stores are provided:
one over the built-in mini relational engine and one over SQLite.
"""

from repro.core.stats import QueryStats, SegTableBuildStats
from repro.core.sqlstyle import NSQL, TSQL
from repro.core.path import PathResult
from repro.core.api import (
    METHODS,
    RelationalPathFinder,
    shortest_path,
    shortest_path_in_memory,
)
from repro.core.segtable import SegTableConfig, build_segtable
from repro.core.fem import FEMSearch, FEMSpec

__all__ = [
    "FEMSearch",
    "FEMSpec",
    "METHODS",
    "NSQL",
    "PathResult",
    "QueryStats",
    "RelationalPathFinder",
    "SegTableBuildStats",
    "SegTableConfig",
    "TSQL",
    "build_segtable",
    "shortest_path",
    "shortest_path_in_memory",
]
