"""DJ — single-directional relational Dijkstra (Algorithm 1 of the paper).

The client loop issues, per iteration, the statements of Listings 2 and 3:
locate the to-be-finalized node ``mid`` (the auxiliary statement before the
F-operator), run the combined E/M expansion for ``mid``, finalize it, and
test whether the target has been finalized.  This is the node-at-a-time
baseline whose poor performance motivates the set-at-a-time optimizations.
"""

from __future__ import annotations

from typing import Optional

from repro.core.deadline import check_deadline
from repro.core.directions import FORWARD_DIRECTION
from repro.core.path import PathResult
from repro.core.recovery import recover_forward_path
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import (
    PHASE_PATH_EXPANSION,
    PHASE_PATH_RECOVERY,
    PHASE_STATISTICS,
    QueryStats,
)
from repro.core.store.base import GraphStore
from repro.errors import PathNotFoundError
from repro.obs import now as _now
from repro.obs import span as _span


def dijkstra_single_direction(store: GraphStore, source: int, target: int,
                              sql_style: str = NSQL,
                              max_iterations: Optional[int] = None,
                              deadline: Optional[float] = None) -> PathResult:
    """Find the shortest path from ``source`` to ``target`` with DJ.

    Args:
        store: a loaded :class:`~repro.core.store.base.GraphStore`.
        source: source node id.
        target: target node id.
        sql_style: ``"nsql"`` (window function + MERGE) or ``"tsql"``.
        max_iterations: optional safety cap on the number of expansions.
        deadline: optional absolute monotonic deadline, checked between
            iterations (:class:`~repro.errors.DeadlineExceededError` on
            expiry, overrunning by at most one iteration).

    Returns:
        A :class:`~repro.core.path.PathResult` with the path and statistics.

    Raises:
        PathNotFoundError: when the target is unreachable from the source.
    """
    stats = QueryStats(method="DJ", sql_style=validate_sql_style(sql_style))
    store.begin_query(stats, stats.sql_style)
    start_time = _now()
    forward = FORWARD_DIRECTION

    with stats.phase(PHASE_PATH_EXPANSION):
        store.reset_visited()
        store.insert_visited([{"nid": source, "d2s": 0.0, "p2s": source, "f": 0}])

    if source == target:
        stats.found = True
        stats.distance = 0.0
        stats.visited_nodes = store.visited_count()
        stats.total_time = _now() - start_time
        return PathResult(source, target, 0.0, [source], stats)

    target_finalized = False
    while True:
        if max_iterations is not None and stats.expansions >= max_iterations:
            break
        check_deadline(deadline, f"DJ iteration {stats.expansions + 1}")
        with _span("fem.iteration", index=stats.expansions + 1,
                   frontier=1) as iteration:
            statements_before = stats.statements
            # Auxiliary statement: locate the to-be-finalized node
            # (Listing 2(2)).
            with stats.phase(PHASE_STATISTICS):
                mid = store.top1_min_unfinalized(forward)
            if mid is None:
                iteration.tag(statements=stats.statements - statements_before)
                break
            # F + E + M operators for this node (Listing 2(3) and 2(4)).
            with stats.phase(PHASE_PATH_EXPANSION):
                store.expand(forward, mid=mid)
                stats.record_expansion(forward=True)
                store.finalize_node(mid, forward)
            # Termination detection (Listing 3(1)).
            with stats.phase(PHASE_STATISTICS):
                finished = store.is_finalized(target, forward)
            iteration.tag(statements=stats.statements - statements_before)
            if finished:
                target_finalized = True
                break

    if not target_finalized:
        stats.visited_nodes = store.visited_count()
        stats.total_time = _now() - start_time
        raise PathNotFoundError(f"no path from {source} to {target}")

    with stats.phase(PHASE_STATISTICS):
        distance = store.get_distance(target, forward)
    with stats.phase(PHASE_PATH_RECOVERY):
        path = recover_forward_path(store, source, target)

    stats.found = True
    stats.distance = distance
    stats.path_edges = len(path) - 1
    stats.visited_nodes = store.visited_count()
    stats.total_time = _now() - start_time
    return PathResult(source, target, float(distance), path, stats)
