"""Per-query and per-construction statistics.

The paper's evaluation reports, for every method: wall-clock time, the
number of expansions ("Exps" in Tables 2 and 3), the number of visited nodes
("Vst" in Table 3), time broken down by phase (path expansion, statistics
collection, full path recovery — Figure 6(b)), time broken down by operator
(F / E / M — Figure 6(c)), and index size / construction time for the
SegTable (Figure 9).  :class:`QueryStats` and :class:`SegTableBuildStats`
collect exactly those quantities.
"""

from __future__ import annotations

from repro.obs import now as _now
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

# Phase labels (Figure 6(b)).
PHASE_PATH_EXPANSION = "PE"
PHASE_STATISTICS = "SC"
PHASE_PATH_RECOVERY = "FPR"

# Operator labels (Figure 6(c)).
OPERATOR_F = "F"
OPERATOR_E = "E"
OPERATOR_M = "M"


@dataclass
class QueryStats:
    """Counters collected while answering one shortest-path query."""

    method: str = ""
    sql_style: str = "nsql"
    expansions: int = 0
    expansions_forward: int = 0
    expansions_backward: int = 0
    statements: int = 0
    affected_rows: int = 0
    visited_nodes: int = 0
    found: bool = False
    distance: Optional[float] = None
    path_edges: int = 0
    total_time: float = 0.0
    time_by_phase: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    time_by_operator: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    buffer_hits: int = 0
    buffer_misses: int = 0
    io_reads: int = 0
    io_writes: int = 0
    predicted_seconds: Optional[float] = None
    """The planner cost model's prediction for this query (set by the
    service on executed queries; ``None`` when the plan never consulted
    the model).  Comparing it with ``total_time`` is how the feedback
    loop — and the planner regret benchmark — measure mispricing."""

    def record_statement(self) -> None:
        """Count one SQL statement issued against the store."""
        self.statements += 1

    def record_expansion(self, forward: bool) -> None:
        """Count one expansion (one execution of the combined F/E/M step)."""
        self.expansions += 1
        if forward:
            self.expansions_forward += 1
        else:
            self.expansions_backward += 1

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute the wall-clock time of the block to phase ``label``."""
        start = _now()
        try:
            yield
        finally:
            self.time_by_phase[label] += _now() - start

    @contextmanager
    def operator(self, label: str) -> Iterator[None]:
        """Attribute the wall-clock time of the block to operator ``label``."""
        start = _now()
        try:
            yield
        finally:
            self.time_by_operator[label] += _now() - start

    def as_dict(self) -> Dict[str, object]:
        """Return a plain-dict summary (used by the benchmark reports)."""
        return {
            "method": self.method,
            "sql_style": self.sql_style,
            "expansions": self.expansions,
            "expansions_forward": self.expansions_forward,
            "expansions_backward": self.expansions_backward,
            "statements": self.statements,
            "affected_rows": self.affected_rows,
            "visited_nodes": self.visited_nodes,
            "found": self.found,
            "distance": self.distance,
            "path_edges": self.path_edges,
            "total_time": self.total_time,
            "time_by_phase": dict(self.time_by_phase),
            "time_by_operator": dict(self.time_by_operator),
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "io_reads": self.io_reads,
            "io_writes": self.io_writes,
            "predicted_seconds": self.predicted_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QueryStats":
        """Rebuild from :meth:`as_dict` output (the serve wire protocol
        ships query statistics across processes, so remote results report
        the same per-phase/per-operator breakdowns as local ones)."""
        stats = cls(
            method=str(data.get("method", "")),
            sql_style=str(data.get("sql_style", "nsql")),
            expansions=int(data.get("expansions", 0)),
            expansions_forward=int(data.get("expansions_forward", 0)),
            expansions_backward=int(data.get("expansions_backward", 0)),
            statements=int(data.get("statements", 0)),
            affected_rows=int(data.get("affected_rows", 0)),
            visited_nodes=int(data.get("visited_nodes", 0)),
            found=bool(data.get("found", False)),
            path_edges=int(data.get("path_edges", 0)),
            total_time=float(data.get("total_time", 0.0)),
            buffer_hits=int(data.get("buffer_hits", 0)),
            buffer_misses=int(data.get("buffer_misses", 0)),
            io_reads=int(data.get("io_reads", 0)),
            io_writes=int(data.get("io_writes", 0)),
        )
        distance = data.get("distance")
        stats.distance = None if distance is None else float(distance)
        predicted = data.get("predicted_seconds")
        stats.predicted_seconds = None if predicted is None else float(predicted)
        for label, seconds in dict(data.get("time_by_phase", {})).items():
            stats.time_by_phase[str(label)] = float(seconds)
        for label, seconds in dict(data.get("time_by_operator", {})).items():
            stats.time_by_operator[str(label)] = float(seconds)
        return stats


@dataclass
class BatchStats:
    """Aggregate counters for one :meth:`PathService.shortest_path_many` call.

    Attributes:
        total: number of queries in the batch.
        executed: queries actually run against a store or in memory —
            cache misses, uncacheable queries, and unreachable pairs
            (which still run a full search).
        cache_hits: queries answered from the shared result cache.
        cache_misses: queries that had to execute and were then cached.
        not_found: queries whose endpoints are not connected.
        negative_hits: unreachable verdicts answered from the negative
            result cache instead of re-running the full bidirectional
            fixpoint (each also counts toward ``not_found``).
        evictions: entries the shared result cache evicted during this
            batch, for any reason — LRU capacity, TTL expiry, or the
            memory-footprint bound.
        total_time: wall-clock seconds for the whole batch.
        per_graph: graph name -> number of queries routed to it.
        per_method: resolved method name -> number of queries.
        concurrency: worker threads the batch ran with (``1`` = serial).
        single_flight_hits: queries that piggybacked on an identical
            in-flight query instead of executing (parallel batches only),
            plus batch-local duplicates replayed from a leader's answer.
        queue_time: summed seconds queries spent waiting for a pooled
            store connection (can exceed ``total_time`` across workers).
        execute_time: summed seconds queries spent actually executing
            (can exceed ``total_time`` across workers).
        shared_frontier_groups: one-to-many Dijkstra runs the batch
            planner formed: same-source path queries answered by a single
            shared frontier expansion instead of per-pair searches.
        shared_frontier_queries: queries answered by those shared runs
            (each group answers at least two).
        deadline_exceeded: queries whose ``timeout_s`` budget ran out
            mid-batch; each is reported positionally in
            ``BatchResult.errors`` without failing its siblings.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    not_found: int = 0
    negative_hits: int = 0
    evictions: int = 0
    total_time: float = 0.0
    per_graph: Dict[str, int] = field(default_factory=dict)
    per_method: Dict[str, int] = field(default_factory=dict)
    concurrency: int = 1
    single_flight_hits: int = 0
    queue_time: float = 0.0
    execute_time: float = 0.0
    shared_frontier_groups: int = 0
    shared_frontier_queries: int = 0
    deadline_exceeded: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of the batch served from the result cache."""
        return self.cache_hits / self.total if self.total else 0.0

    def merge(self, other: "BatchStats") -> "BatchStats":
        """Fold ``other``'s counters into this object (and return it).

        Used by the shard router to roll per-shard batch statistics into
        one aggregate: counts and per-graph/per-method maps add up;
        ``queue_time`` / ``execute_time`` sum (they are already summed
        across workers, so across shards they stay "total seconds of
        work"); ``total_time`` also sums and therefore reads as *serial*
        seconds — the router reports the scatter-gather wall clock
        separately; ``concurrency`` takes the maximum, the widest pool any
        shard ran with.
        """
        self.total += other.total
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.not_found += other.not_found
        self.negative_hits += other.negative_hits
        self.evictions += other.evictions
        self.total_time += other.total_time
        self.single_flight_hits += other.single_flight_hits
        self.queue_time += other.queue_time
        self.execute_time += other.execute_time
        self.shared_frontier_groups += other.shared_frontier_groups
        self.shared_frontier_queries += other.shared_frontier_queries
        self.deadline_exceeded += other.deadline_exceeded
        self.concurrency = max(self.concurrency, other.concurrency)
        for graph, count in other.per_graph.items():
            self.per_graph[graph] = self.per_graph.get(graph, 0) + count
        for method, count in other.per_method.items():
            self.per_method[method] = self.per_method.get(method, 0) + count
        return self

    def as_dict(self) -> Dict[str, object]:
        """Return a plain-dict summary (used by workload reports).

        Durations use the canonical ``_s``-suffixed keys from
        :mod:`repro.obs.schema` (``total_time_s`` / ``queue_time_s`` /
        ``execute_time_s``); the historical un-suffixed keys are kept as
        deprecated aliases for one release (see
        :data:`repro.obs.schema.DEPRECATED_STATS_ALIASES`).
        """
        from repro.obs.schema import with_deprecated_aliases
        return with_deprecated_aliases({
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "not_found": self.not_found,
            "negative_hits": self.negative_hits,
            "evictions": self.evictions,
            "total_time_s": self.total_time,
            "hit_rate": self.hit_rate,
            "per_graph": dict(self.per_graph),
            "per_method": dict(self.per_method),
            "concurrency": self.concurrency,
            "single_flight_hits": self.single_flight_hits,
            "queue_time_s": self.queue_time,
            "execute_time_s": self.execute_time,
            "shared_frontier_groups": self.shared_frontier_groups,
            "shared_frontier_queries": self.shared_frontier_queries,
            "deadline_exceeded": self.deadline_exceeded,
        }, "batch")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BatchStats":
        """Rebuild from :meth:`as_dict` output (a remote shard reports its
        slice's batch counters over the wire; the router folds them into
        :class:`~repro.shard.stats.RouterStats` exactly like a local
        shard's)."""
        def duration(canonical: str, legacy: str) -> float:
            # Canonical ``_s`` key first; documents from older writers
            # only carry the legacy un-suffixed key.
            value = data.get(canonical, data.get(legacy, 0.0))
            return float(value)  # type: ignore[arg-type]

        return cls(
            total=int(data.get("total", 0)),
            executed=int(data.get("executed", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            not_found=int(data.get("not_found", 0)),
            negative_hits=int(data.get("negative_hits", 0)),
            evictions=int(data.get("evictions", 0)),
            total_time=duration("total_time_s", "total_time"),
            per_graph={str(graph): int(count) for graph, count
                       in dict(data.get("per_graph", {})).items()},
            per_method={str(method): int(count) for method, count
                        in dict(data.get("per_method", {})).items()},
            concurrency=int(data.get("concurrency", 1)),
            single_flight_hits=int(data.get("single_flight_hits", 0)),
            queue_time=duration("queue_time_s", "queue_time"),
            execute_time=duration("execute_time_s", "execute_time"),
            shared_frontier_groups=int(data.get("shared_frontier_groups", 0)),
            shared_frontier_queries=int(
                data.get("shared_frontier_queries", 0)),
            deadline_exceeded=int(data.get("deadline_exceeded", 0)),
        )


@dataclass
class SegTableBuildStats:
    """Counters collected while constructing the SegTable index."""

    lthd: float = 0.0
    iterations: int = 0
    statements: int = 0
    out_segments: int = 0
    in_segments: int = 0
    total_time: float = 0.0
    sql_style: str = "nsql"

    @property
    def encoding_number(self) -> int:
        """Total number of stored segments — the "encoding number" (index
        size) axis of Figures 9(a) and 9(b)."""
        return self.out_segments + self.in_segments

    def as_dict(self) -> Dict[str, object]:
        """Return a plain-dict summary."""
        return {
            "lthd": self.lthd,
            "iterations": self.iterations,
            "statements": self.statements,
            "out_segments": self.out_segments,
            "in_segments": self.in_segments,
            "encoding_number": self.encoding_number,
            "total_time": self.total_time,
            "sql_style": self.sql_style,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegTableBuildStats":
        """Rebuild from :meth:`as_dict` output (the session catalog persists
        build statistics so a warm-started session still reports the
        offline construction cost it is *saving*)."""
        return cls(
            lthd=float(data["lthd"]),
            iterations=int(data.get("iterations", 0)),
            statements=int(data.get("statements", 0)),
            out_segments=int(data.get("out_segments", 0)),
            in_segments=int(data.get("in_segments", 0)),
            total_time=float(data.get("total_time", 0.0)),
            sql_style=str(data.get("sql_style", "nsql")),
        )
