"""Reachability queries via the FEM framework.

Reachability ("is there any path from ``s`` to ``t``?") is the simplest
graph-search query the paper lists in Section 3.1.  Under FEM it is a BFS:
the frontier is every newly visited node, the expansion follows outgoing
edges, and the merge ignores nodes that were already visited.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.fem import FEMSearch, FEMSpec
from repro.graph.model import Graph
from repro.rdb.engine import Database
from repro.rdb.merge import MergeResult, merge_into
from repro.rdb.schema import Column
from repro.rdb.table import Table
from repro.rdb.types import INTEGER


def reachable_set_fem(graph: Graph, source: int,
                      database: Optional[Database] = None) -> Set[int]:
    """Return the set of nodes reachable from ``source`` using FEM over RDB."""
    database = database or Database(buffer_capacity=128)
    edges = database.create_table(
        "ReachEdges", [Column("fid", INTEGER), Column("tid", INTEGER)]
    )
    edges.bulk_load(
        [{"fid": edge.fid, "tid": edge.tid} for edge in graph.edges()],
        order_by="fid",
    )
    edges.create_index("fid", clustered=True)
    visited = database.create_table(
        "ReachVisited", [Column("nid", INTEGER), Column("f", INTEGER)]
    )
    visited.create_index("nid", unique=True)

    def initialize() -> List[Dict[str, object]]:
        return [{"nid": source, "f": 0}]

    def select_frontier(table: Table, _iteration: int) -> List[Dict[str, object]]:
        frontier = [row for row in table.scan() if row["f"] == 0]
        table.update_where(lambda row: row["f"] == 0, lambda row: {"f": 1})
        return frontier

    def expand(frontier: List[Dict[str, object]],
               _iteration: int) -> List[Dict[str, object]]:
        expanded: List[Dict[str, object]] = []
        for row in frontier:
            for edge_row in edges.lookup("fid", row["nid"]):
                expanded.append({"nid": edge_row["tid"], "f": 0})
        return expanded

    def merge(table: Table, expanded: List[Dict[str, object]],
              _iteration: int) -> MergeResult:
        unique = {row["nid"]: row for row in expanded}
        return merge_into(
            table, list(unique.values()), key_column="nid", source_key="nid",
            matched_update=None,
            not_matched_insert=lambda source: dict(source),
        )

    spec = FEMSpec(
        name="reachability",
        initialize=initialize,
        select_frontier=select_frontier,
        expand=expand,
        merge=merge,
        max_iterations=graph.num_nodes + 1,
    )
    search = FEMSearch(visited, spec)
    search.run()
    return {int(row["nid"]) for row in search.visited_rows()}


def is_reachable_fem(graph: Graph, source: int, target: int,
                     database: Optional[Database] = None) -> bool:
    """Whether ``target`` is reachable from ``source`` (FEM over RDB)."""
    return target in reachable_set_fem(graph, source, database=database)
