"""Shortest-path results and path validation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.stats import QueryStats
from repro.graph.model import Graph
from repro.obs import Trace


@dataclass
class PathResult:
    """A discovered shortest path plus its query statistics.

    Attributes:
        source: source node id.
        target: target node id.
        distance: length of the discovered path.
        path: node ids from source to target (inclusive); a single-element
            list when ``source == target``.
        stats: the :class:`~repro.core.stats.QueryStats` collected while
            answering the query (``None`` for in-memory baselines wrapped
            into this type).
        trace: the per-query :class:`~repro.obs.Trace` span tree, attached
            by whichever layer opened the trace root (service or shard
            router); ``None`` when tracing was off or the result is a
            pristine cached original.  Excluded from equality: two runs of
            the same query are the same answer.
    """

    source: int
    target: int
    distance: float
    path: List[int] = field(default_factory=list)
    stats: Optional[QueryStats] = None
    trace: Optional[Trace] = field(default=None, compare=False, repr=False)

    @property
    def num_edges(self) -> int:
        """Number of edges on the path."""
        return max(0, len(self.path) - 1)

    def validate_against(self, graph: Graph) -> None:
        """Assert the path is a real path in ``graph`` whose edge weights sum
        to ``distance`` (within floating-point tolerance).

        Raises:
            AssertionError: when an edge is missing or the length mismatches.
        """
        assert self.path, "path must not be empty"
        assert self.path[0] == self.source, "path must start at the source"
        assert self.path[-1] == self.target, "path must end at the target"
        total = 0.0
        for fid, tid in zip(self.path, self.path[1:]):
            cost = graph.edge_cost(fid, tid)
            assert cost is not None, f"edge ({fid}, {tid}) is not in the graph"
            total += cost
        assert abs(total - self.distance) < 1e-6, (
            f"path length {total} does not match reported distance {self.distance}"
        )
