"""Prim's minimal spanning tree via the FEM framework (Section 3.1).

The paper sketches how Prim's algorithm fits the FEM skeleton: each visited
node carries ``(nid, p2s, w, f)`` where ``w`` is the cheapest known edge
connecting it to the growing tree and ``f`` marks tree membership.  Every
iteration selects the cheapest non-tree visited node (F), expands its
incident edges (E), and merges improvements (M).  This module exists to
demonstrate the framework's generality beyond shortest paths; the MST result
is validated against a classic in-memory Prim in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.fem import FEMSearch, FEMSpec
from repro.errors import InvalidQueryError
from repro.graph.model import Graph
from repro.rdb.engine import Database
from repro.rdb.merge import MergeResult, merge_into
from repro.rdb.schema import Column
from repro.rdb.table import Table
from repro.rdb.types import FLOAT, INTEGER

_INF = float("inf")


@dataclass
class MSTResult:
    """Result of a relational Prim run.

    Attributes:
        edges: tree edges as ``(parent, child, weight)`` triples.
        total_weight: sum of the tree edge weights.
        iterations: FEM iterations used.
    """

    edges: List[Tuple[int, int, float]]
    total_weight: float
    iterations: int


def _load_edge_table(database: Database, graph: Graph) -> Table:
    edges = database.create_table(
        "MstEdges",
        [Column("fid", INTEGER), Column("tid", INTEGER), Column("cost", FLOAT)],
    )
    edges.bulk_load(
        [{"fid": e.fid, "tid": e.tid, "cost": e.cost} for e in graph.edges()],
        order_by="fid",
    )
    edges.create_index("fid", clustered=True)
    return edges


def prim_mst_fem(graph: Graph, root: Optional[int] = None,
                 database: Optional[Database] = None) -> MSTResult:
    """Build a minimal spanning tree of ``graph`` with the FEM framework.

    The graph is treated as undirected over its directed edges (the usual
    Prim setting); it must be connected from ``root``.

    Raises:
        InvalidQueryError: if the graph is empty or not connected from root.
    """
    if graph.num_nodes == 0:
        raise InvalidQueryError("cannot build an MST of an empty graph")
    database = database or Database(buffer_capacity=256)
    edges = _load_edge_table(database, graph)
    visited = database.create_table(
        "MstVisited",
        [
            Column("nid", INTEGER),
            Column("p2s", INTEGER),
            Column("w", FLOAT),
            Column("f", INTEGER),
        ],
    )
    visited.create_index("nid", unique=True)
    start = root if root is not None else min(graph.nodes())

    def initialize() -> List[Dict[str, object]]:
        return [{"nid": start, "p2s": start, "w": 0.0, "f": 0}]

    def select_frontier(table: Table, _iteration: int) -> List[Dict[str, object]]:
        best: Optional[Dict[str, object]] = None
        for row in table.scan():
            if row["f"] == 0 and (best is None or row["w"] < best["w"]):
                best = row
        if best is None:
            return []
        table.update_where(lambda row: row["nid"] == best["nid"],
                           lambda row: {"f": 1})
        return [best]

    def expand(frontier: List[Dict[str, object]],
               _iteration: int) -> List[Dict[str, object]]:
        candidates: List[Dict[str, object]] = []
        for node_row in frontier:
            nid = node_row["nid"]
            for edge_row in edges.lookup("fid", nid):
                candidates.append(
                    {"nid": edge_row["tid"], "p2s": nid, "w": edge_row["cost"], "f": 0}
                )
        return candidates

    def merge(table: Table, expanded: List[Dict[str, object]],
              _iteration: int) -> MergeResult:
        # Keep only the cheapest connecting edge per expanded node, then
        # merge: improve non-tree nodes, ignore nodes already in the tree.
        cheapest: Dict[object, Dict[str, object]] = {}
        for row in expanded:
            nid = row["nid"]
            if nid not in cheapest or row["w"] < cheapest[nid]["w"]:
                cheapest[nid] = row
        return merge_into(
            table, list(cheapest.values()), key_column="nid", source_key="nid",
            matched_condition=lambda target, source: (
                target["f"] == 0 and target["w"] > source["w"]
            ),
            matched_update=lambda target, source: {"p2s": source["p2s"], "w": source["w"]},
            not_matched_insert=lambda source: dict(source),
        )

    spec = FEMSpec(
        name="prim-mst",
        initialize=initialize,
        select_frontier=select_frontier,
        expand=expand,
        merge=merge,
        max_iterations=graph.num_nodes + 1,
    )
    search = FEMSearch(visited, spec)
    stats = search.run()

    tree_edges: List[Tuple[int, int, float]] = []
    covered = 0
    for row in search.visited_rows():
        if row["f"] != 1:
            continue
        covered += 1
        if row["nid"] != start:
            tree_edges.append((int(row["p2s"]), int(row["nid"]), float(row["w"])))
    if covered < graph.num_nodes:
        raise InvalidQueryError(
            f"graph is not connected from node {start}: the tree covers "
            f"{covered} of {graph.num_nodes} nodes"
        )
    return MSTResult(
        edges=tree_edges,
        total_weight=sum(weight for _f, _t, weight in tree_edges),
        iterations=stats.iterations,
    )
