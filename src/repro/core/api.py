"""Legacy top-level API — thin deprecation shims over :mod:`repro.service`.

The session-based :class:`~repro.service.PathService` replaced this module
as the public entry point::

    from repro.service import PathService

    with PathService() as service:
        service.add_graph("default", graph)
        service.build_segtable(lthd=5)
        result = service.shortest_path(s, t)          # method="auto"

:class:`RelationalPathFinder` and the one-shot :func:`shortest_path` keep
their historical behaviour (including the ``BSDJ`` default method) but
merely delegate to a private service session; each emits a
:class:`DeprecationWarning` once per process.

Method names follow the paper: ``DJ``, ``BDJ``, ``BSDJ``, ``BBFS``, ``BSEG``
for the relational algorithms and ``MDJ``, ``MBDJ`` for the in-memory
competitors.
"""

from __future__ import annotations

import warnings
from typing import Optional, Set

from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import SegTableBuildStats
from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.registry import available_backends, backend_factory
from repro.errors import NodeNotFoundError
from repro.graph.model import Graph
from repro.service.planner import MEMORY_METHODS, METHODS, RELATIONAL_METHODS
from repro.service.session import DEFAULT_GRAPH, PathService, run_in_memory

# Snapshot of the registry at import time, kept for source compatibility.
# New code should call repro.service.available_backends(), which reflects
# later registrations.
BACKENDS = available_backends()

_WARNED: Set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the deprecation warning for ``name`` exactly once per process."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class RelationalPathFinder:
    """Deprecated single-graph facade over :class:`PathService`.

    Args:
        graph: the graph to load.
        backend: any registered backend name (``"minidb"`` or ``"sqlite"``
            by default).
        buffer_capacity: buffer-pool size in pages (minidb backend only).
        index_mode: index strategy for the edge and visited tables
            (``"clustered"``, ``"nonclustered"`` or ``"none"``).
        db_path: optional file path backing the database (minidb: page file,
            sqlite: database file); in-memory by default.
    """

    def __init__(self, graph: Graph, backend: str = "minidb",
                 buffer_capacity: int = 256,
                 index_mode: str = IndexMode.CLUSTERED,
                 db_path: Optional[str] = None) -> None:
        _warn_deprecated("RelationalPathFinder", "repro.service.PathService")
        backend_factory(backend)  # fail fast on unknown backends
        self.graph = graph
        self.backend = backend
        self.index_mode = IndexMode.validate(index_mode)
        self._service = PathService(default_backend=backend, cache_size=0)
        self._service.add_graph(DEFAULT_GRAPH, graph, backend=backend,
                                buffer_capacity=buffer_capacity,
                                index_mode=self.index_mode, db_path=db_path)

    @property
    def store(self) -> GraphStore:
        """The graph store backing this finder."""
        return self._service.store(DEFAULT_GRAPH)

    @property
    def segtable_stats(self) -> Optional[SegTableBuildStats]:
        """Build statistics of the SegTable (``None`` until built)."""
        return self._service.segtable_stats(DEFAULT_GRAPH)

    @segtable_stats.setter
    def segtable_stats(self, value: Optional[SegTableBuildStats]) -> None:
        # Historically a plain instance attribute; keep it writable.
        host = self._service._host(DEFAULT_GRAPH)
        host.segtable_stats = value
        host._segtable_key = None

    # -- index management -----------------------------------------------------------

    def build_segtable(self, lthd: float, sql_style: str = NSQL,
                       index_mode: Optional[str] = None) -> SegTableBuildStats:
        """Construct the SegTable index with threshold ``lthd``.

        Historical semantics: every call rebuilds (``force=True``), unlike
        the memoizing :meth:`PathService.build_segtable`.
        """
        return self._service.build_segtable(DEFAULT_GRAPH, lthd=lthd,
                                            sql_style=sql_style,
                                            index_mode=index_mode,
                                            force=True)

    # -- queries ---------------------------------------------------------------------

    def shortest_path(self, source: int, target: int, method: str = "BSDJ",
                      sql_style: str = NSQL,
                      max_iterations: Optional[int] = None) -> PathResult:
        """Answer one shortest-path query.

        Raises:
            NodeNotFoundError: when an endpoint is not in the graph.
            InvalidQueryError: for unknown methods.
            PathNotFoundError: when the nodes are not connected.
        """
        return self._service.shortest_path(source, target,
                                           graph=DEFAULT_GRAPH,
                                           method=method,
                                           sql_style=sql_style,
                                           max_iterations=max_iterations,
                                           use_cache=False)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Release the underlying database."""
        self._service.close()

    def __enter__(self) -> "RelationalPathFinder":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def shortest_path(graph: Graph, source: int, target: int, method: str = "BSDJ",
                  backend: str = "minidb", sql_style: str = NSQL,
                  lthd: Optional[float] = None,
                  buffer_capacity: int = 256,
                  index_mode: str = IndexMode.CLUSTERED,
                  max_iterations: Optional[int] = None,
                  db_path: Optional[str] = None) -> PathResult:
    """Deprecated one-shot wrapper: load, (optionally) index, query, close.

    Prefer a :class:`~repro.service.PathService`, which keeps the graph
    loaded across queries and caches repeated results.
    """
    _warn_deprecated("shortest_path", "repro.service.PathService")
    method = method.upper()
    if method in MEMORY_METHODS:
        # The in-memory competitors need no store, but must validate the
        # query exactly like the relational paths do.
        validate_sql_style(sql_style)
        for nid in (source, target):
            if not graph.has_node(nid):
                raise NodeNotFoundError(f"node {nid} is not in the graph")
        return run_in_memory(graph, source, target, method=method)
    with PathService(default_backend=backend, cache_size=0) as service:
        service.add_graph(DEFAULT_GRAPH, graph, backend=backend,
                          buffer_capacity=buffer_capacity,
                          index_mode=index_mode, db_path=db_path)
        if method == "BSEG":
            threshold = lthd if lthd is not None else _default_lthd(graph)
            service.build_segtable(DEFAULT_GRAPH, lthd=threshold,
                                   sql_style=sql_style)
        return service.shortest_path(source, target, graph=DEFAULT_GRAPH,
                                     method=method, sql_style=sql_style,
                                     max_iterations=max_iterations)


def shortest_path_in_memory(graph: Graph, source: int, target: int,
                            method: str = "MDJ") -> PathResult:
    """Run one of the in-memory competitors (MDJ or MBDJ)."""
    return run_in_memory(graph, source, target, method=method)


def _default_lthd(graph: Graph) -> float:
    """A reasonable default SegTable threshold: three times the minimal
    edge weight (covers short local detours without exploding the index)."""
    try:
        return 3.0 * graph.min_edge_weight()
    except ValueError:
        return 1.0


__all__ = [
    "BACKENDS",
    "MEMORY_METHODS",
    "METHODS",
    "RELATIONAL_METHODS",
    "RelationalPathFinder",
    "shortest_path",
    "shortest_path_in_memory",
]
