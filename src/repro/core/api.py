"""Top-level convenience API.

:class:`RelationalPathFinder` wraps the whole pipeline the paper describes:
load a graph into relational tables, optionally build the SegTable index,
and answer shortest-path queries with any of the paper's methods::

    finder = RelationalPathFinder(graph)            # mini relational engine
    finder.build_segtable(lthd=5)
    result = finder.shortest_path(s, t, method="BSEG")
    print(result.distance, result.path)
    finder.close()

Method names follow the paper: ``DJ``, ``BDJ``, ``BSDJ``, ``BBFS``, ``BSEG``
for the relational algorithms and ``MDJ``, ``MBDJ`` for the in-memory
competitors.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.bfs import bidirectional_bfs
from repro.core.bidirectional import bidirectional_dijkstra, bidirectional_set_dijkstra
from repro.core.bseg import bidirectional_segtable_search
from repro.core.dijkstra import dijkstra_single_direction
from repro.core.path import PathResult
from repro.core.segtable import build_segtable
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import QueryStats, SegTableBuildStats
from repro.core.store.base import GraphStore, IndexMode
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore
from repro.errors import InvalidQueryError, NodeNotFoundError
from repro.graph.model import Graph
from repro.memory.bidirectional import bidirectional_dijkstra as memory_bidirectional
from repro.memory.dijkstra import dijkstra_shortest_path as memory_dijkstra

RELATIONAL_METHODS: Dict[str, Callable[..., PathResult]] = {
    "DJ": dijkstra_single_direction,
    "BDJ": bidirectional_dijkstra,
    "BSDJ": bidirectional_set_dijkstra,
    "BBFS": bidirectional_bfs,
    "BSEG": bidirectional_segtable_search,
}

MEMORY_METHODS = ("MDJ", "MBDJ")

METHODS = tuple(RELATIONAL_METHODS) + MEMORY_METHODS
"""All supported method names."""

BACKENDS = ("minidb", "sqlite")


class RelationalPathFinder:
    """Owns a graph store and answers shortest-path queries against it.

    Args:
        graph: the graph to load.
        backend: ``"minidb"`` (the built-in engine / DBMS-x role) or
            ``"sqlite"`` (the second-platform role).
        buffer_capacity: buffer-pool size in pages (minidb backend only).
        index_mode: index strategy for the edge and visited tables
            (``"clustered"``, ``"nonclustered"`` or ``"none"``).
        db_path: optional file path backing the database (minidb: page file,
            sqlite: database file); in-memory by default.
    """

    def __init__(self, graph: Graph, backend: str = "minidb",
                 buffer_capacity: int = 256,
                 index_mode: str = IndexMode.CLUSTERED,
                 db_path: Optional[str] = None) -> None:
        if backend not in BACKENDS:
            raise InvalidQueryError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.graph = graph
        self.backend = backend
        self.index_mode = IndexMode.validate(index_mode)
        if backend == "minidb":
            self.store: GraphStore = MiniDBGraphStore(
                buffer_capacity=buffer_capacity, path=db_path
            )
        else:
            self.store = SQLiteGraphStore(path=db_path or ":memory:")
        self.store.load_graph(graph, index_mode=self.index_mode)
        self.segtable_stats: Optional[SegTableBuildStats] = None

    # -- index management -----------------------------------------------------------

    def build_segtable(self, lthd: float, sql_style: str = NSQL,
                       index_mode: Optional[str] = None) -> SegTableBuildStats:
        """Construct the SegTable index with threshold ``lthd``."""
        self.segtable_stats = build_segtable(
            self.store, lthd, sql_style=sql_style,
            index_mode=index_mode or self.index_mode,
        )
        return self.segtable_stats

    # -- queries ---------------------------------------------------------------------

    def shortest_path(self, source: int, target: int, method: str = "BSDJ",
                      sql_style: str = NSQL,
                      max_iterations: Optional[int] = None) -> PathResult:
        """Answer one shortest-path query.

        Raises:
            NodeNotFoundError: when an endpoint is not in the graph.
            InvalidQueryError: for unknown methods.
            PathNotFoundError: when the nodes are not connected.
        """
        self._check_node(source)
        self._check_node(target)
        method = method.upper()
        validate_sql_style(sql_style)
        if method in MEMORY_METHODS:
            return shortest_path_in_memory(self.graph, source, target, method=method)
        if method not in RELATIONAL_METHODS:
            raise InvalidQueryError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        algorithm = RELATIONAL_METHODS[method]
        return algorithm(self.store, source, target, sql_style=sql_style,
                         max_iterations=max_iterations)

    def _check_node(self, nid: int) -> None:
        if not self.graph.has_node(nid):
            raise NodeNotFoundError(f"node {nid} is not in the graph")

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Release the underlying database."""
        self.store.close()

    def __enter__(self) -> "RelationalPathFinder":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def shortest_path(graph: Graph, source: int, target: int, method: str = "BSDJ",
                  backend: str = "minidb", sql_style: str = NSQL,
                  lthd: Optional[float] = None,
                  buffer_capacity: int = 256,
                  index_mode: str = IndexMode.CLUSTERED) -> PathResult:
    """One-shot convenience wrapper: load, (optionally) index, query, close.

    For repeated queries over the same graph prefer
    :class:`RelationalPathFinder`, which loads the graph only once.
    """
    method = method.upper()
    if method in MEMORY_METHODS:
        return shortest_path_in_memory(graph, source, target, method=method)
    with RelationalPathFinder(graph, backend=backend,
                              buffer_capacity=buffer_capacity,
                              index_mode=index_mode) as finder:
        if method == "BSEG":
            threshold = lthd if lthd is not None else _default_lthd(graph)
            finder.build_segtable(threshold, sql_style=sql_style)
        return finder.shortest_path(source, target, method=method,
                                    sql_style=sql_style)


def shortest_path_in_memory(graph: Graph, source: int, target: int,
                            method: str = "MDJ") -> PathResult:
    """Run one of the in-memory competitors (MDJ or MBDJ)."""
    method = method.upper()
    if method == "MDJ":
        result = memory_dijkstra(graph, source, target)
    elif method == "MBDJ":
        result = memory_bidirectional(graph, source, target)
    else:
        raise InvalidQueryError(
            f"unknown in-memory method {method!r}; expected MDJ or MBDJ"
        )
    stats = QueryStats(method=method)
    stats.found = True
    stats.distance = result.distance
    stats.visited_nodes = result.settled
    stats.path_edges = result.num_edges
    return PathResult(source, target, result.distance, result.path, stats)


def _default_lthd(graph: Graph) -> float:
    """A reasonable default SegTable threshold: three times the minimal
    edge weight (covers short local detours without exploding the index)."""
    try:
        return 3.0 * graph.min_edge_weight()
    except ValueError:
        return 1.0
