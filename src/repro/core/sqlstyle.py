"""SQL evaluation styles: new-feature SQL vs traditional SQL.

The paper's Figure 6(d) and Figure 9(f) compare two ways of writing the
E- and M-operators:

* **NSQL** ("new SQL") — the E-operator deduplicates expanded nodes with a
  window function (``row_number() over (partition by tid order by cost)``)
  and the M-operator is a single MERGE statement.
* **TSQL** ("traditional SQL") — the E-operator uses a GROUP BY aggregate
  plus an extra join to recover the predecessor column, and the M-operator
  is an UPDATE statement followed by an INSERT ... NOT EXISTS statement.

Both styles compute the same result; NSQL issues fewer/cheaper statements.
"""

from __future__ import annotations

NSQL = "nsql"
TSQL = "tsql"

SQL_STYLES = (NSQL, TSQL)


def validate_sql_style(style: str) -> str:
    """Return ``style`` lower-cased, raising ``ValueError`` when unknown."""
    normalized = style.lower()
    if normalized not in SQL_STYLES:
        raise ValueError(f"unknown SQL style {style!r}; expected one of {SQL_STYLES}")
    return normalized
