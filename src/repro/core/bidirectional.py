"""Bi-directional relational search (Section 4.1, Algorithm 2 skeleton).

One driver implements the shared structure of all four bi-directional
methods; they differ only in how the frontier of each expansion is chosen:

* **BDJ** — node-at-a-time: the single candidate with the minimal distance.
* **BSDJ** — set-at-a-time: every candidate with the minimal distance
  (set Dijkstra, Section 4.1).
* **BBFS** — every candidate node, regardless of distance (relational
  breadth-first search).
* **BSEG** — every candidate within ``k * lthd`` of the origin, expanding
  over the SegTable and applying the Theorem 1 pruning rule (Algorithm 2).

The driver follows Algorithm 2: initialize ``TVisited`` with the source and
the target, alternate expansion directions by frontier size, track ``l_f``,
``l_b`` and ``minCost``, and stop when ``l_f + l_b >= minCost``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.deadline import check_deadline
from repro.core.directions import (
    BACKWARD_DIRECTION,
    Direction,
    FORWARD_DIRECTION,
    INFINITY,
)
from repro.core.path import PathResult
from repro.core.recovery import recover_bidirectional_path
from repro.core.sqlstyle import NSQL, validate_sql_style
from repro.core.stats import (
    PHASE_PATH_EXPANSION,
    PHASE_PATH_RECOVERY,
    PHASE_STATISTICS,
    QueryStats,
)
from repro.core.store.base import GraphStore
from repro.errors import InvalidQueryError, PathNotFoundError
from repro.obs import now as _now
from repro.obs import span as _span


@dataclass(frozen=True)
class FrontierPolicy:
    """How each expansion chooses its frontier nodes.

    Attributes:
        name: method name reported in statistics (``BDJ``, ``BSDJ``, ...).
        set_mode: ``False`` expands a single node per iteration, ``True``
            expands a whole set selected with Listing 4(1).
        distance_factor: for set mode, the frontier includes every candidate
            whose distance is at most ``distance_factor * expansion_number``
            (in addition to the minimal-distance candidates, which are always
            included).  ``0.0`` selects only the minimal set (BSDJ);
            ``inf`` selects every candidate (BBFS); ``lthd`` gives the BSEG
            selective expansion.
        use_segtable: expand over the SegTable instead of ``TEdges``.
        prune: apply the Theorem 1 bi-directional pruning rule.
    """

    name: str
    set_mode: bool
    distance_factor: float = 0.0
    use_segtable: bool = False
    prune: bool = False

    def frontier_threshold(self, expansion_number: int) -> float:
        """Distance threshold for the given per-direction expansion number."""
        if self.distance_factor == 0.0:
            return float("-inf")
        if self.distance_factor == INFINITY:
            return INFINITY
        return self.distance_factor * expansion_number


@dataclass
class _DirectionState:
    """Mutable per-direction bookkeeping of the driver loop."""

    direction: Direction
    latest_distance: float = 0.0
    frontier_size: int = 1
    expansions: int = 1
    exhausted: bool = False


def bidirectional_search(store: GraphStore, source: int, target: int,
                         policy: FrontierPolicy,
                         sql_style: str = NSQL,
                         max_iterations: Optional[int] = None,
                         deadline: Optional[float] = None) -> PathResult:
    """Run the bi-directional FEM search described by ``policy``.

    ``deadline`` is an optional absolute monotonic instant checked between
    expansions, bounding overrun past the budget to at most one iteration.

    Raises:
        PathNotFoundError: when no path connects ``source`` and ``target``.
        InvalidQueryError: when the policy needs a SegTable that is missing.
        DeadlineExceededError: when ``deadline`` expires mid-search.
    """
    if policy.use_segtable and not store.has_segtable:
        raise InvalidQueryError(
            f"{policy.name} requires a SegTable; build or load one first"
        )
    stats = QueryStats(method=policy.name, sql_style=validate_sql_style(sql_style))
    store.begin_query(stats, stats.sql_style)
    start_time = _now()

    with stats.phase(PHASE_PATH_EXPANSION):
        store.reset_visited()
        if source == target:
            store.insert_visited(
                [{"nid": source, "d2s": 0.0, "p2s": source, "f": 0,
                  "d2t": 0.0, "p2t": source, "b": 0}]
            )
            stats.found = True
            stats.distance = 0.0
            stats.visited_nodes = store.visited_count()
            stats.total_time = _now() - start_time
            return PathResult(source, target, 0.0, [source], stats)
        store.insert_visited(
            [
                {"nid": source, "d2s": 0.0, "p2s": source, "f": 0},
                {"nid": target, "d2t": 0.0, "p2t": target, "b": 0},
            ]
        )

    forward_state = _DirectionState(FORWARD_DIRECTION)
    backward_state = _DirectionState(BACKWARD_DIRECTION)
    min_cost = INFINITY

    while forward_state.latest_distance + backward_state.latest_distance < min_cost:
        if max_iterations is not None and stats.expansions >= max_iterations:
            break
        check_deadline(deadline, f"{policy.name} iteration {stats.expansions + 1}")
        state = _choose_direction(forward_state, backward_state)
        if state is None:
            break
        opposite = backward_state if state is forward_state else forward_state
        with _span("fem.iteration", index=stats.expansions + 1,
                   direction=state.direction.name) as iteration:
            statements_before = stats.statements
            expanded = _expand_one_round(store, stats, policy, state,
                                         opposite, min_cost)
            iteration.tag(statements=stats.statements - statements_before,
                          frontier=state.frontier_size if expanded else 0)
        if not expanded:
            state.exhausted = True
            state.latest_distance = INFINITY
            continue
        # Collect the statistics that drive the termination test (Algorithm 2
        # lines 12 and 16): the latest finalized distance and minCost.
        with stats.phase(PHASE_STATISTICS):
            latest = store.min_unfinalized_distance(state.direction)
            if latest is None:
                state.exhausted = True
                state.latest_distance = INFINITY
            else:
                state.latest_distance = latest
            min_cost = store.min_total_cost()

    with stats.phase(PHASE_STATISTICS):
        min_cost = store.min_total_cost()
    if min_cost >= INFINITY:
        stats.visited_nodes = store.visited_count()
        stats.total_time = _now() - start_time
        raise PathNotFoundError(f"no path from {source} to {target}")
    with stats.phase(PHASE_STATISTICS):
        meeting = store.meeting_node(min_cost)
    if meeting is None:
        raise PathNotFoundError(
            f"internal error: no meeting node for minCost={min_cost}"
        )
    with stats.phase(PHASE_PATH_RECOVERY):
        path = recover_bidirectional_path(store, source, target, meeting)

    stats.found = True
    stats.distance = float(min_cost)
    stats.path_edges = len(path) - 1
    stats.visited_nodes = store.visited_count()
    stats.total_time = _now() - start_time
    return PathResult(source, target, float(min_cost), path, stats)


def _choose_direction(forward_state: _DirectionState,
                      backward_state: _DirectionState) -> Optional[_DirectionState]:
    """Pick the direction with fewer frontier nodes (Algorithm 2 line 7)."""
    if forward_state.exhausted and backward_state.exhausted:
        return None
    if forward_state.exhausted:
        return backward_state
    if backward_state.exhausted:
        return forward_state
    if forward_state.frontier_size <= backward_state.frontier_size:
        return forward_state
    return backward_state


def _expand_one_round(store: GraphStore, stats: QueryStats, policy: FrontierPolicy,
                      state: _DirectionState, opposite: _DirectionState,
                      min_cost: float) -> bool:
    """Run F, E and M for one expansion in ``state``'s direction.

    Returns ``False`` when the direction has no candidate frontier left.
    """
    direction = state.direction
    prune_lb = opposite.latest_distance if policy.prune else None
    prune_min_cost = min_cost if policy.prune else None

    if not policy.set_mode:
        with stats.phase(PHASE_STATISTICS):
            mid = store.top1_min_unfinalized(direction)
        if mid is None:
            return False
        with stats.phase(PHASE_PATH_EXPANSION):
            store.expand(direction, mid=mid, use_segtable=policy.use_segtable,
                         prune_lb=prune_lb, prune_min_cost=prune_min_cost)
            stats.record_expansion(direction.is_forward)
            store.finalize_node(mid, direction)
        state.frontier_size = 1
        state.expansions += 1
        return True

    threshold = policy.frontier_threshold(state.expansions)
    with stats.phase(PHASE_PATH_EXPANSION):
        selected = store.select_frontier_set(direction, threshold)
    if selected == 0:
        return False
    with stats.phase(PHASE_PATH_EXPANSION):
        affected = store.expand(direction, use_segtable=policy.use_segtable,
                                prune_lb=prune_lb, prune_min_cost=prune_min_cost)
        stats.record_expansion(direction.is_forward)
        store.finalize_frontier(direction)
    # Algorithm 2 uses the affected-tuple count to balance directions.  A
    # zero count still finalized this frontier, so the search goes on; use 1
    # so the comparison in _choose_direction stays meaningful.
    state.frontier_size = max(affected, 1)
    state.expansions += 1
    return True


# ----------------------------------------------------------------------------- public methods

BDJ_POLICY = FrontierPolicy(name="BDJ", set_mode=False)
BSDJ_POLICY = FrontierPolicy(name="BSDJ", set_mode=True, distance_factor=0.0)


def bidirectional_dijkstra(store: GraphStore, source: int, target: int,
                           sql_style: str = NSQL,
                           max_iterations: Optional[int] = None,
                           deadline: Optional[float] = None) -> PathResult:
    """BDJ: bi-directional node-at-a-time relational Dijkstra."""
    return bidirectional_search(store, source, target, BDJ_POLICY,
                                sql_style=sql_style, max_iterations=max_iterations,
                                deadline=deadline)


def bidirectional_set_dijkstra(store: GraphStore, source: int, target: int,
                               sql_style: str = NSQL,
                               max_iterations: Optional[int] = None,
                               deadline: Optional[float] = None) -> PathResult:
    """BSDJ: bi-directional set Dijkstra (Section 4.1)."""
    return bidirectional_search(store, source, target, BSDJ_POLICY,
                                sql_style=sql_style, max_iterations=max_iterations,
                                deadline=deadline)
