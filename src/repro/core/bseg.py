"""BSEG — bi-directional selective path expansion on the SegTable
(Algorithm 2 of the paper).

BSEG balances the two optimization goals of Section 4: it keeps the search
space close to set Dijkstra's while issuing far fewer statements, by
expanding over precomputed shortest segments (``TOutSegs`` / ``TInSegs``)
and selecting as frontier every candidate within ``k * lthd`` of the origin
in the ``k``-th expansion.  The Theorem 1 pruning rule
(``d2s + cost + l_b <= minCost``) is applied inside the expansion statement.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bidirectional import FrontierPolicy, bidirectional_search
from repro.core.path import PathResult
from repro.core.sqlstyle import NSQL
from repro.core.store.base import GraphStore
from repro.errors import InvalidQueryError


def bseg_policy(lthd: float) -> FrontierPolicy:
    """Frontier policy of Algorithm 2 for a SegTable built with ``lthd``."""
    if lthd <= 0:
        raise InvalidQueryError("the SegTable index threshold must be positive")
    return FrontierPolicy(
        name="BSEG",
        set_mode=True,
        distance_factor=float(lthd),
        use_segtable=True,
        prune=True,
    )


def bidirectional_segtable_search(store: GraphStore, source: int, target: int,
                                  sql_style: str = NSQL,
                                  lthd: Optional[float] = None,
                                  max_iterations: Optional[int] = None,
                                  deadline: Optional[float] = None) -> PathResult:
    """BSEG: selective bi-directional expansion over the SegTable.

    Args:
        store: a store with a loaded/constructed SegTable.
        source: source node id.
        target: target node id.
        sql_style: ``"nsql"`` or ``"tsql"``.
        lthd: index threshold used for frontier selection; defaults to the
            threshold the store's SegTable was built with.
        max_iterations: optional safety cap on the number of expansions.
        deadline: optional absolute monotonic deadline checked between
            expansions.

    Raises:
        InvalidQueryError: when the store has no SegTable.
        PathNotFoundError: when no path exists.
    """
    if not store.has_segtable:
        raise InvalidQueryError("BSEG requires a SegTable; build or load one first")
    threshold = lthd if lthd is not None else store.segtable_lthd
    if threshold is None:
        raise InvalidQueryError("the store does not record its SegTable threshold")
    return bidirectional_search(store, source, target, bseg_policy(float(threshold)),
                                sql_style=sql_style, max_iterations=max_iterations,
                                deadline=deadline)
