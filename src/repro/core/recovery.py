"""Full path recovery (the FPR phase of Figure 6(b)).

After the iterations stop, the client recovers the actual shortest path by
following the ``p2s`` links backwards from the meeting node (or the target)
and the ``p2t`` links forwards, one ``SELECT`` per hop (Listing 3(3)).
"""

from __future__ import annotations

from typing import List

from repro.core.directions import BACKWARD_DIRECTION, Direction, FORWARD_DIRECTION
from repro.core.store.base import GraphStore
from repro.errors import PathNotFoundError


def _follow_links(store: GraphStore, start: int, origin: int,
                  direction: Direction, limit: int) -> List[int]:
    """Follow predecessor/successor links from ``start`` until ``origin``."""
    chain = [start]
    node = start
    steps = 0
    while node != origin:
        link = store.get_link(node, direction)
        if link is None:
            raise PathNotFoundError(
                f"broken {direction.pred_col} chain at node {node} during recovery"
            )
        node = link
        chain.append(node)
        steps += 1
        if steps > limit:
            raise PathNotFoundError(
                f"{direction.pred_col} chain did not reach node {origin} "
                f"within {limit} steps"
            )
    return chain


def recover_forward_path(store: GraphStore, source: int, target: int) -> List[int]:
    """Recover ``source -> target`` along the ``p2s`` links (unidirectional)."""
    limit = max(store.visited_count(), 1) + 1
    chain = _follow_links(store, target, source, FORWARD_DIRECTION, limit)
    chain.reverse()
    return chain


def recover_bidirectional_path(store: GraphStore, source: int, target: int,
                               meeting_node: int) -> List[int]:
    """Recover the full path through ``meeting_node`` (Algorithm 2, lines 17-20).

    The prefix follows ``p2s`` links from the meeting node back to the
    source; the suffix follows ``p2t`` links from the meeting node to the
    target.
    """
    limit = max(store.visited_count(), 1) + 1
    prefix = _follow_links(store, meeting_node, source, FORWARD_DIRECTION, limit)
    prefix.reverse()
    suffix = _follow_links(store, meeting_node, target, BACKWARD_DIRECTION, limit)
    return prefix + suffix[1:]
