"""Weighted directed graph model.

The paper (Section 2.1) studies weighted directed or undirected graphs with
non-negative edge weights, stored relationally as a ``TNodes(nid)`` table and
a ``TEdges(fid, tid, cost)`` table.  :class:`Graph` is the in-memory
counterpart of that representation: a set of integer node identifiers and a
multimap of weighted edges, with both outgoing and incoming adjacency lists
so that bi-directional searches can expand in either direction.

Undirected graphs are modelled the way the paper's experiments treat them:
each undirected edge is stored as two directed edges with the same weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NegativeWeightError, NodeNotFoundError


@dataclass(frozen=True)
class Edge:
    """A directed weighted edge ``fid -> tid`` with non-negative ``cost``.

    Field names deliberately match the relational schema used by the paper's
    ``TEdges`` table (``fid``, ``tid``, ``cost``).
    """

    fid: int
    tid: int
    cost: float

    def reversed(self) -> "Edge":
        """Return the same edge with endpoints swapped (used to derive the
        incoming-edge view needed by backward expansions)."""
        return Edge(self.tid, self.fid, self.cost)


class Graph:
    """A weighted directed graph over integer node identifiers.

    The class keeps three structures:

    * ``_nodes`` — the set of node identifiers;
    * ``_out`` — outgoing adjacency: ``fid -> list[(tid, cost)]``;
    * ``_in`` — incoming adjacency: ``tid -> list[(fid, cost)]``.

    Parallel edges are allowed (the relational representation allows them
    too); the search algorithms always pick the cheapest alternative, so
    keeping them does not affect correctness.
    """

    def __init__(self, directed: bool = True) -> None:
        self._directed = directed
        self._nodes: set[int] = set()
        self._out: Dict[int, List[Tuple[int, float]]] = {}
        self._in: Dict[int, List[Tuple[int, float]]] = {}
        self._edge_count = 0

    # -- construction -------------------------------------------------------

    def add_node(self, nid: int) -> None:
        """Register a node identifier (no-op if already present)."""
        self._nodes.add(int(nid))

    def add_edge(self, fid: int, tid: int, cost: float) -> None:
        """Add a weighted edge.

        For undirected graphs the reverse edge is added as well, mirroring
        how the paper's experiments store undirected inputs relationally.

        Raises:
            NegativeWeightError: if ``cost`` is negative.
        """
        if cost < 0:
            raise NegativeWeightError(
                f"edge ({fid}, {tid}) has negative weight {cost}"
            )
        self._add_directed_edge(int(fid), int(tid), float(cost))
        if not self._directed and fid != tid:
            self._add_directed_edge(int(tid), int(fid), float(cost))

    def _add_directed_edge(self, fid: int, tid: int, cost: float) -> None:
        self._nodes.add(fid)
        self._nodes.add(tid)
        self._out.setdefault(fid, []).append((tid, cost))
        self._in.setdefault(tid, []).append((fid, cost))
        self._edge_count += 1

    def add_edges(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Add many ``(fid, tid, cost)`` triples."""
        for fid, tid, cost in edges:
            self.add_edge(fid, tid, cost)

    # -- basic accessors ----------------------------------------------------

    @property
    def directed(self) -> bool:
        """Whether edges were added as directed edges only."""
        return self._directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (an undirected input counts twice)."""
        return self._edge_count

    def nodes(self) -> Iterator[int]:
        """Iterate over node identifiers (unordered)."""
        return iter(self._nodes)

    def has_node(self, nid: int) -> bool:
        """Return whether ``nid`` is a node of this graph."""
        return nid in self._nodes

    def has_edge(self, fid: int, tid: int) -> bool:
        """Return whether at least one directed edge ``fid -> tid`` exists."""
        return any(t == tid for t, _ in self._out.get(fid, ()))

    def edges(self) -> Iterator[Edge]:
        """Iterate over all stored directed edges."""
        for fid, adjacency in self._out.items():
            for tid, cost in adjacency:
                yield Edge(fid, tid, cost)

    def out_edges(self, nid: int) -> Sequence[Tuple[int, float]]:
        """Outgoing neighbours of ``nid`` as ``(tid, cost)`` pairs."""
        self._require_node(nid)
        return self._out.get(nid, [])

    def in_edges(self, nid: int) -> Sequence[Tuple[int, float]]:
        """Incoming neighbours of ``nid`` as ``(fid, cost)`` pairs."""
        self._require_node(nid)
        return self._in.get(nid, [])

    def out_degree(self, nid: int) -> int:
        """Number of outgoing edges of ``nid``."""
        self._require_node(nid)
        return len(self._out.get(nid, ()))

    def in_degree(self, nid: int) -> int:
        """Number of incoming edges of ``nid``."""
        self._require_node(nid)
        return len(self._in.get(nid, ()))

    def edge_cost(self, fid: int, tid: int) -> Optional[float]:
        """Return the minimal cost among parallel edges ``fid -> tid`` or
        ``None`` when no such edge exists."""
        costs = [c for t, c in self._out.get(fid, ()) if t == tid]
        return min(costs) if costs else None

    def min_edge_weight(self) -> float:
        """Return ``w_min``, the minimal edge weight of the graph.

        The paper's iteration bounds (Theorems 2 and 3) are expressed in terms
        of this quantity.  Raises :class:`ValueError` on an edge-less graph.
        """
        weights = [cost for adjacency in self._out.values() for _, cost in adjacency]
        if not weights:
            raise ValueError("graph has no edges; w_min is undefined")
        return min(weights)

    def _require_node(self, nid: int) -> None:
        if nid not in self._nodes:
            raise NodeNotFoundError(f"node {nid} is not in the graph")

    # -- conversions --------------------------------------------------------

    def edge_triples(self) -> List[Tuple[int, int, float]]:
        """Return all directed edges as a list of ``(fid, tid, cost)``."""
        return [(e.fid, e.tid, e.cost) for e in self.edges()]

    def reverse(self) -> "Graph":
        """Return a new graph with every directed edge reversed."""
        reversed_graph = Graph(directed=True)
        for nid in self._nodes:
            reversed_graph.add_node(nid)
        for edge in self.edges():
            reversed_graph.add_edge(edge.tid, edge.fid, edge.cost)
        return reversed_graph

    def subgraph(self, nodes: Iterable[int]) -> "Graph":
        """Return the induced subgraph on ``nodes`` (directed)."""
        keep = set(nodes)
        sub = Graph(directed=True)
        for nid in keep:
            if nid in self._nodes:
                sub.add_node(nid)
        for edge in self.edges():
            if edge.fid in keep and edge.tid in keep:
                sub.add_edge(edge.fid, edge.tid, edge.cost)
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy preserving directedness."""
        clone = Graph(directed=True)
        clone._directed = self._directed
        for nid in self._nodes:
            clone.add_node(nid)
        for edge in self.edges():
            clone._add_directed_edge(edge.fid, edge.tid, edge.cost)
        return clone

    def __contains__(self, nid: object) -> bool:
        return nid in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self._directed else "undirected"
        return f"Graph({kind}, nodes={self.num_nodes}, edges={self.num_edges})"
