"""Synthetic graph generators used by the paper's evaluation.

Section 5.1 of the paper uses two synthetic families:

* **Random graphs** — ``n`` nodes and ``m`` edges obtained by drawing the two
  endpoints of each edge uniformly at random (``RandomxmNyd`` graphs, where
  ``y`` is the average degree).
* **Power graphs** — scale-free graphs produced by the Barabási preferential
  attachment generator (``PowerxkNyd`` graphs).

Edge weights are drawn uniformly from ``[1, 100]`` in all experiments, which
is the default ``weight_range`` here.  All generators take an explicit
``seed`` so experiments are repeatable.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.graph.model import Graph

DEFAULT_WEIGHT_RANGE: Tuple[int, int] = (1, 100)


def _weight(rng: random.Random, weight_range: Tuple[int, int]) -> int:
    low, high = weight_range
    if low > high:
        raise ValueError(f"invalid weight range {weight_range}")
    return rng.randint(low, high)


def random_graph(
    num_nodes: int,
    avg_degree: float = 3.0,
    weight_range: Tuple[int, int] = DEFAULT_WEIGHT_RANGE,
    seed: Optional[int] = 0,
    directed: bool = True,
) -> Graph:
    """Generate a ``Random`` graph per the paper's construction.

    ``m = round(num_nodes * avg_degree)`` edges are added; the endpoints of
    each edge are drawn uniformly at random among the ``num_nodes`` nodes.
    Self loops are rejected and re-drawn so every edge connects two distinct
    nodes.

    Args:
        num_nodes: number of nodes (identifiers ``0 .. num_nodes - 1``).
        avg_degree: average out-degree; the paper uses 3 for most runs.
        weight_range: inclusive integer range for edge weights.
        seed: PRNG seed; ``None`` uses a nondeterministic seed.
        directed: whether edges are directed (the paper's relational layout
            stores directed edges either way).

    Returns:
        The generated :class:`Graph`.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    graph = Graph(directed=directed)
    for nid in range(num_nodes):
        graph.add_node(nid)
    num_edges = int(round(num_nodes * avg_degree))
    for _ in range(num_edges):
        fid = rng.randrange(num_nodes)
        tid = rng.randrange(num_nodes)
        while tid == fid and num_nodes > 1:
            tid = rng.randrange(num_nodes)
        graph.add_edge(fid, tid, _weight(rng, weight_range))
    return graph


def power_law_graph(
    num_nodes: int,
    edges_per_node: int = 3,
    weight_range: Tuple[int, int] = DEFAULT_WEIGHT_RANGE,
    seed: Optional[int] = 0,
    directed: bool = True,
) -> Graph:
    """Generate a ``Power`` graph with a Barabási–Albert preferential
    attachment process.

    Each new node attaches to ``edges_per_node`` existing nodes chosen with
    probability proportional to their current degree, yielding the skewed
    degree distribution of the paper's Power graphs.

    Args:
        num_nodes: number of nodes.
        edges_per_node: attachment edges per arriving node (the paper's
            ``yd`` suffix, typically 3).
        weight_range: inclusive integer range for edge weights.
        seed: PRNG seed.
        directed: whether the produced edges are directed.

    Returns:
        The generated :class:`Graph`.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if edges_per_node < 1:
        raise ValueError("edges_per_node must be at least 1")
    rng = random.Random(seed)
    graph = Graph(directed=directed)
    for nid in range(num_nodes):
        graph.add_node(nid)

    # Seed clique of edges_per_node + 1 nodes so attachment targets exist.
    seed_size = min(num_nodes, edges_per_node + 1)
    repeated_targets: list[int] = []
    for fid in range(seed_size):
        for tid in range(fid + 1, seed_size):
            graph.add_edge(fid, tid, _weight(rng, weight_range))
            graph.add_edge(tid, fid, _weight(rng, weight_range))
            repeated_targets.extend((fid, tid))

    for new_node in range(seed_size, num_nodes):
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < min(edges_per_node, new_node) and attempts < 50 * edges_per_node:
            attempts += 1
            if repeated_targets:
                target = rng.choice(repeated_targets)
            else:
                target = rng.randrange(new_node)
            if target != new_node:
                chosen.add(target)
        for target in chosen:
            graph.add_edge(new_node, target, _weight(rng, weight_range))
            graph.add_edge(target, new_node, _weight(rng, weight_range))
            repeated_targets.extend((new_node, target))
    return graph


def grid_graph(
    rows: int,
    cols: int,
    weight_range: Tuple[int, int] = DEFAULT_WEIGHT_RANGE,
    seed: Optional[int] = 0,
) -> Graph:
    """Generate a 2-D grid (road-network-like) graph.

    Nodes are numbered row-major; each node is connected to its right and
    down neighbours in both directions.  Grids are useful as a stand-in for
    transportation networks, one of the motivating applications in the
    paper's introduction.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    rng = random.Random(seed)
    graph = Graph(directed=True)
    for nid in range(rows * cols):
        graph.add_node(nid)
    for row in range(rows):
        for col in range(cols):
            nid = row * cols + col
            if col + 1 < cols:
                weight = _weight(rng, weight_range)
                graph.add_edge(nid, nid + 1, weight)
                graph.add_edge(nid + 1, nid, weight)
            if row + 1 < rows:
                weight = _weight(rng, weight_range)
                graph.add_edge(nid, nid + cols, weight)
                graph.add_edge(nid + cols, nid, weight)
    return graph


def path_graph(
    num_nodes: int,
    weight_range: Tuple[int, int] = (1, 1),
    seed: Optional[int] = 0,
) -> Graph:
    """Generate a simple path ``0 -> 1 -> ... -> n-1`` (bidirectional edges).

    Handy in tests where the shortest path and its length are known by
    construction.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    graph = Graph(directed=True)
    graph.add_node(0)
    for nid in range(num_nodes - 1):
        weight = _weight(rng, weight_range)
        graph.add_edge(nid, nid + 1, weight)
        graph.add_edge(nid + 1, nid, weight)
    return graph


def star_graph(
    num_leaves: int,
    weight_range: Tuple[int, int] = DEFAULT_WEIGHT_RANGE,
    seed: Optional[int] = 0,
) -> Graph:
    """Generate a star: node 0 is the hub, nodes ``1..num_leaves`` are leaves."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be at least 1")
    rng = random.Random(seed)
    graph = Graph(directed=True)
    graph.add_node(0)
    for leaf in range(1, num_leaves + 1):
        weight = _weight(rng, weight_range)
        graph.add_edge(0, leaf, weight)
        graph.add_edge(leaf, 0, weight)
    return graph


def complete_graph(
    num_nodes: int,
    weight_range: Tuple[int, int] = DEFAULT_WEIGHT_RANGE,
    seed: Optional[int] = 0,
) -> Graph:
    """Generate a complete directed graph on ``num_nodes`` nodes."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    graph = Graph(directed=True)
    for nid in range(num_nodes):
        graph.add_node(nid)
    for fid in range(num_nodes):
        for tid in range(num_nodes):
            if fid != tid:
                graph.add_edge(fid, tid, _weight(rng, weight_range))
    return graph
