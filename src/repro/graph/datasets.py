"""Scaled-down stand-ins for the paper's real-life datasets.

The paper evaluates on three real graphs (Table 1):

========== ========== ===========
Dataset    # Nodes    # Edges
========== ========== ===========
DBLP          312,967   1,149,663
GoogleWeb     855,802   5,066,842
LiveJournal 4,847,571  43,110,428
========== ========== ===========

The original snapshots are not redistributable here and are far larger than a
laptop-scale pure-Python reproduction can exercise, so we substitute
synthetic graphs whose *structural characteristics* — average degree, degree
skew, and small-world distances — match the originals.  The experiments only
depend on those characteristics (e.g., GoogleWeb's sensitivity to the
SegTable threshold in Figure 9(b) follows from its skewed degree
distribution), so the substitution preserves the reported behaviour.  See
DESIGN.md §2 for the substitution table.

Each stand-in keeps the original's average degree and downscales the node
count by a configurable ``scale`` factor (default 1/1000 of the original).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graph.generators import power_law_graph, random_graph
from repro.graph.model import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset stand-in.

    Attributes:
        name: dataset key (lowercase, e.g. ``"dblp"``).
        paper_nodes: node count reported in the paper's Table 1.
        paper_edges: edge count reported in the paper's Table 1.
        kind: ``"power"`` for skewed-degree graphs, ``"random"`` for
            Erdős–Rényi-style graphs.
        description: one-line provenance note.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    kind: str
    description: str

    @property
    def avg_degree(self) -> float:
        """Average out-degree implied by the paper's node/edge counts."""
        return self.paper_edges / self.paper_nodes


_SPECS: Dict[str, DatasetSpec] = {
    "dblp": DatasetSpec(
        name="dblp",
        paper_nodes=312_967,
        paper_edges=1_149_663,
        kind="power",
        description="Co-authorship graph stand-in (moderately skewed degrees)",
    ),
    "googleweb": DatasetSpec(
        name="googleweb",
        paper_nodes=855_802,
        paper_edges=5_066_842,
        kind="power",
        description="Web graph stand-in (heavily skewed degree distribution)",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        paper_nodes=4_847_571,
        paper_edges=43_110_428,
        kind="power",
        description="Social network stand-in (large, dense, skewed)",
    ),
}

DEFAULT_SCALE = 1.0 / 1000.0
_MIN_NODES = 200


def list_datasets() -> List[str]:
    """Return the known dataset names."""
    return sorted(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name``.

    Raises:
        KeyError: for unknown dataset names.
    """
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {list_datasets()}")
    return _SPECS[key]


def _scaled_nodes(spec: DatasetSpec, scale: float, num_nodes: Optional[int]) -> int:
    if num_nodes is not None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return num_nodes
    return max(_MIN_NODES, int(spec.paper_nodes * scale))


def load_dataset(
    name: str,
    scale: float = DEFAULT_SCALE,
    num_nodes: Optional[int] = None,
    seed: int = 7,
) -> Graph:
    """Build the stand-in graph for dataset ``name``.

    Args:
        name: one of :func:`list_datasets`.
        scale: node-count downscaling factor relative to the paper's graph.
        num_nodes: explicit node count, overriding ``scale`` when given.
        seed: PRNG seed for the generator.

    Returns:
        The generated :class:`Graph` with the original's average degree.
    """
    spec = dataset_spec(name)
    nodes = _scaled_nodes(spec, scale, num_nodes)
    degree = spec.avg_degree
    if spec.kind == "power":
        edges_per_node = max(1, int(round(degree / 2.0)))
        return power_law_graph(nodes, edges_per_node=edges_per_node, seed=seed)
    return random_graph(nodes, avg_degree=degree, seed=seed)


def dblp_standin(scale: float = DEFAULT_SCALE, num_nodes: Optional[int] = None,
                 seed: int = 7) -> Graph:
    """Stand-in for the DBLP co-authorship graph."""
    return load_dataset("dblp", scale=scale, num_nodes=num_nodes, seed=seed)


def googleweb_standin(scale: float = DEFAULT_SCALE, num_nodes: Optional[int] = None,
                      seed: int = 11) -> Graph:
    """Stand-in for the GoogleWeb graph (strongly skewed degrees)."""
    return load_dataset("googleweb", scale=scale, num_nodes=num_nodes, seed=seed)


def livejournal_standin(scale: float = DEFAULT_SCALE, num_nodes: Optional[int] = None,
                        seed: int = 13) -> Graph:
    """Stand-in for the LiveJournal social graph."""
    return load_dataset("livejournal", scale=scale, num_nodes=num_nodes, seed=seed)


def dataset_statistics(scale: float = DEFAULT_SCALE,
                       seed: int = 7) -> List[Dict[str, object]]:
    """Build every stand-in and return Table-1-style statistics.

    Each row reports both the paper's original counts and the stand-in's
    actual counts, which is what ``benchmarks/bench_table1_datasets.py``
    prints.
    """
    rows: List[Dict[str, object]] = []
    loaders: Dict[str, Callable[..., Graph]] = {
        "dblp": dblp_standin,
        "googleweb": googleweb_standin,
        "livejournal": livejournal_standin,
    }
    for name in list_datasets():
        spec = dataset_spec(name)
        graph = loaders[name](scale=scale)
        rows.append(
            {
                "dataset": name,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "standin_nodes": graph.num_nodes,
                "standin_edges": graph.num_edges,
                "avg_degree_paper": round(spec.avg_degree, 2),
                "avg_degree_standin": round(graph.num_edges / graph.num_nodes, 2),
            }
        )
    return rows
