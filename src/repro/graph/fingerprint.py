"""Content fingerprints of graphs.

The persistent session catalog records, for every registered graph, a
digest of the graph's *content* — its node set and its multiset of weighted
edges — so that a warm reattach can detect when the database file changed
underneath the manifest (new edges, different weights, a different graph
reusing the path).

The digest is defined over a canonical serialization: node ids in sorted
order, then ``(fid, tid, cost)`` triples in sorted order, costs rendered
with :func:`repr` (floats round-trip exactly through both SQLite ``REAL``
columns and JSON, so the same content always hashes the same, whichever
side computes it).  Both the in-memory :class:`~repro.graph.model.Graph`
and a store reading its own ``TNodes`` / ``TEdges`` tables feed this one
helper, which is what makes their fingerprints comparable.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.model import Graph

FINGERPRINT_SCHEME = "sha256"


def fingerprint_content(nodes: Iterable[int],
                        edges: Iterable[Tuple[int, int, float]]) -> str:
    """Digest a graph given as raw node ids and edge triples.

    Args:
        nodes: node identifiers, any order (sorted internally).
        edges: ``(fid, tid, cost)`` triples, any order (sorted internally);
            parallel edges are kept — they are part of the content.

    Returns:
        A ``"sha256:<hex>"`` string.
    """
    hasher = hashlib.sha256()
    for nid in sorted(int(nid) for nid in nodes):
        hasher.update(f"n:{nid}\n".encode("ascii"))
    triples = sorted((int(fid), int(tid), float(cost))
                     for fid, tid, cost in edges)
    for fid, tid, cost in triples:
        hasher.update(f"e:{fid}:{tid}:{cost!r}\n".encode("ascii"))
    return f"{FINGERPRINT_SCHEME}:{hasher.hexdigest()}"


def fingerprint_graph(graph: "Graph") -> str:
    """Digest an in-memory :class:`~repro.graph.model.Graph`.

    Matches :meth:`GraphStore.content_fingerprint` for a store loaded with
    the same graph.
    """
    return fingerprint_content(
        graph.nodes(),
        ((edge.fid, edge.tid, edge.cost) for edge in graph.edges()),
    )


__all__ = ["FINGERPRINT_SCHEME", "fingerprint_content", "fingerprint_graph"]
