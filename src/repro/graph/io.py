"""Edge-list I/O for graphs.

The on-disk format is a plain text file with one edge per line::

    # optional comment lines start with '#'
    <fid> <tid> <cost>

which matches the SNAP edge-list style used by the paper's real datasets
(with an extra weight column).  Whitespace- and comma-separated files are
both accepted.
"""

from __future__ import annotations

import os
from typing import Union

from repro.errors import GraphFormatError
from repro.graph.model import Graph

PathLike = Union[str, os.PathLike]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> int:
    """Write ``graph`` to ``path`` as a weighted edge list.

    Args:
        graph: graph to serialize.
        path: destination file path.
        header: whether to emit a comment header with node/edge counts.

    Returns:
        The number of edges written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
            handle.write("# fid tid cost\n")
        for edge in graph.edges():
            handle.write(f"{edge.fid} {edge.tid} {edge.cost:g}\n")
            count += 1
    return count


def read_edge_list(path: PathLike, directed: bool = True,
                   default_cost: float = 1.0) -> Graph:
    """Read a weighted edge list from ``path``.

    Lines starting with ``#`` are ignored.  Two-column lines are accepted and
    get ``default_cost`` as their weight, so unweighted SNAP files load
    directly.

    Raises:
        GraphFormatError: when a line cannot be parsed.
    """
    graph = Graph(directed=directed)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                fid = int(parts[0])
                tid = int(parts[1])
                cost = float(parts[2]) if len(parts) == 3 else default_cost
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: could not parse {line!r}"
                ) from exc
            graph.add_edge(fid, tid, cost)
    return graph
