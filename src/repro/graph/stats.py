"""Graph statistics helpers (degree distributions, connectivity, Table 1)."""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.graph.model import Graph


@dataclass
class GraphStatistics:
    """Summary statistics of a graph.

    Attributes:
        num_nodes: node count.
        num_edges: directed edge count.
        avg_out_degree: mean outgoing degree.
        max_out_degree: maximal outgoing degree.
        min_edge_weight: smallest edge weight (``w_min`` in the paper).
        max_edge_weight: largest edge weight.
        degree_histogram: out-degree -> number of nodes with that degree.
        num_reachable_from_sample: size of the forward-reachable set from the
            smallest node id (a cheap connectivity indicator).
    """

    num_nodes: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    min_edge_weight: float
    max_edge_weight: float
    degree_histogram: Dict[int, int] = field(default_factory=dict)
    num_reachable_from_sample: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form, JSON-serializable (the session catalog persists
        this so warm-started sessions plan ``method="auto"`` queries without
        re-scanning the graph)."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "avg_out_degree": self.avg_out_degree,
            "max_out_degree": self.max_out_degree,
            "min_edge_weight": self.min_edge_weight,
            "max_edge_weight": self.max_edge_weight,
            "degree_histogram": dict(self.degree_histogram),
            "num_reachable_from_sample": self.num_reachable_from_sample,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GraphStatistics":
        """Rebuild from :meth:`as_dict` output (JSON round-trips turn the
        histogram's integer keys into strings; they are converted back)."""
        histogram = {int(degree): int(count) for degree, count
                     in dict(data.get("degree_histogram", {})).items()}
        return cls(
            num_nodes=int(data["num_nodes"]),
            num_edges=int(data["num_edges"]),
            avg_out_degree=float(data["avg_out_degree"]),
            max_out_degree=int(data["max_out_degree"]),
            min_edge_weight=float(data["min_edge_weight"]),
            max_edge_weight=float(data["max_edge_weight"]),
            degree_histogram=histogram,
            num_reachable_from_sample=int(data.get("num_reachable_from_sample", 0)),
        )


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return a mapping from out-degree to the number of nodes having it."""
    counts = Counter(graph.out_degree(nid) for nid in graph.nodes())
    return dict(counts)


def reachable_set_size(graph: Graph, source: int) -> int:
    """Size of the set of nodes reachable from ``source`` along out-edges."""
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, _cost in graph.out_edges(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return len(seen)


def compute_statistics(graph: Graph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    weights: List[float] = [edge.cost for edge in graph.edges()]
    histogram = degree_histogram(graph)
    sample_node = min(graph.nodes()) if graph.num_nodes else 0
    reachable = reachable_set_size(graph, sample_node) if graph.num_nodes else 0
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        avg_out_degree=(graph.num_edges / graph.num_nodes) if graph.num_nodes else 0.0,
        max_out_degree=max(histogram) if histogram else 0,
        min_edge_weight=min(weights) if weights else 0.0,
        max_edge_weight=max(weights) if weights else 0.0,
        degree_histogram=histogram,
        num_reachable_from_sample=reachable,
    )
