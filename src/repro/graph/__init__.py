"""Graph substrate: in-memory graph model, generators, datasets and I/O.

This package provides the weighted-graph model used throughout the library.
Graphs are loaded into the relational engine (``repro.rdb``) by the stores in
``repro.core.store``; the in-memory representation here is also used directly
by the in-memory competitor algorithms (``repro.memory``).
"""

from repro.graph.model import Edge, Graph
from repro.graph.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_graph,
    star_graph,
)
from repro.graph.datasets import (
    DatasetSpec,
    dataset_statistics,
    dblp_standin,
    googleweb_standin,
    livejournal_standin,
    load_dataset,
    list_datasets,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import GraphStatistics, compute_statistics

__all__ = [
    "Edge",
    "Graph",
    "GraphStatistics",
    "DatasetSpec",
    "complete_graph",
    "compute_statistics",
    "dataset_statistics",
    "dblp_standin",
    "googleweb_standin",
    "grid_graph",
    "list_datasets",
    "livejournal_standin",
    "load_dataset",
    "path_graph",
    "power_law_graph",
    "random_graph",
    "read_edge_list",
    "star_graph",
    "write_edge_list",
]
