"""Execution statistics for the relational engine.

The paper's evaluation reports, besides wall-clock time, the number of
expansions (statements issued) and the size of intermediate results.  These
counters are the engine-side half of that accounting: statements executed,
rows read and written, and timing broken down by a caller-supplied label
(used by the FEM core to attribute time to the F, E and M operators and to
the PE / SC / FPR phases of Figure 6).
"""

from __future__ import annotations

from repro.obs import now as _now
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class DatabaseStats:
    """Counters describing work done by a :class:`~repro.rdb.engine.Database`."""

    statements: int = 0
    statements_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    rows_read: int = 0
    rows_written: int = 0
    rows_deleted: int = 0
    time_by_label: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def record_statement(self, kind: str = "statement") -> None:
        """Count one logical SQL statement of the given kind."""
        self.statements += 1
        self.statements_by_kind[kind] += 1

    def add_rows_read(self, count: int = 1) -> None:
        """Count rows produced by scans and index lookups."""
        self.rows_read += count

    def add_rows_written(self, count: int = 1) -> None:
        """Count rows inserted or updated."""
        self.rows_written += count

    def add_rows_deleted(self, count: int = 1) -> None:
        """Count rows deleted."""
        self.rows_deleted += count

    @contextmanager
    def timed(self, label: str) -> Iterator[None]:
        """Accumulate the elapsed wall-clock time of the block under ``label``."""
        start = _now()
        try:
            yield
        finally:
            self.time_by_label[label] += _now() - start

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self.statements = 0
        self.statements_by_kind = defaultdict(int)
        self.rows_read = 0
        self.rows_written = 0
        self.rows_deleted = 0
        self.time_by_label = defaultdict(float)

    def snapshot(self) -> Dict[str, object]:
        """Return a plain-dict copy of the counters (for reports)."""
        return {
            "statements": self.statements,
            "statements_by_kind": dict(self.statements_by_kind),
            "rows_read": self.rows_read,
            "rows_written": self.rows_written,
            "rows_deleted": self.rows_deleted,
            "time_by_label": dict(self.time_by_label),
        }
