"""Physical query operators over row dictionaries.

Each operator is an iterable of rows (dicts).  Plans are built by composing
operators, e.g. the paper's E-operator join between the frontier and the
edge table becomes::

    frontier = Filter(SeqScan(tvisited), col("f").eq(2))
    expanded = IndexNestedLoopJoin(frontier, tedges, outer_key=col("nid"),
                                   inner_column="fid")

The operators deliberately mirror textbook physical operators (sequential
scan, index scan, filter, project, nested-loop / index-nested-loop / hash
join, sort, aggregation, limit) rather than a SQL parser: the paper's client
issues a fixed set of statements, so the stores in ``repro.core.store``
compose these plans directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.rdb.expressions import ExpressionLike, as_callable
from repro.rdb.table import Table

Row = Dict[str, object]


def _prefixed(row: Mapping[str, object], prefix: Optional[str]) -> Row:
    if prefix is None:
        return dict(row)
    return {f"{prefix}.{key}": value for key, value in row.items()}


class Operator:
    """Base class: an operator is an iterable of row dictionaries."""

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    def rows(self) -> List[Row]:
        """Materialize the operator's output."""
        return list(self)


class SeqScan(Operator):
    """Full scan of a table, optionally prefixing columns with an alias."""

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        self.table = table
        self.alias = alias

    def __iter__(self) -> Iterator[Row]:
        for row in self.table.scan():
            yield _prefixed(row, self.alias)


class IndexScan(Operator):
    """Equality or range scan through an index on ``column``."""

    def __init__(self, table: Table, column: str, key: object = None,
                 low: object = None, high: object = None,
                 alias: Optional[str] = None) -> None:
        if key is None and low is None and high is None:
            raise QueryError("IndexScan needs an equality key or a range")
        self.table = table
        self.column = column
        self.key = key
        self.low = low
        self.high = high
        self.alias = alias

    def __iter__(self) -> Iterator[Row]:
        if self.key is not None:
            rows: Iterable[Row] = self.table.lookup(self.column, self.key)
        else:
            rows = self.table.range_lookup(self.column, self.low, self.high)
        for row in rows:
            yield _prefixed(row, self.alias)


class Rows(Operator):
    """Wrap an in-memory list of rows as an operator (a VALUES clause)."""

    def __init__(self, rows: Sequence[Row], alias: Optional[str] = None) -> None:
        self._rows = list(rows)
        self.alias = alias

    def __iter__(self) -> Iterator[Row]:
        for row in self._rows:
            yield _prefixed(row, self.alias)


class Filter(Operator):
    """Keep rows for which ``predicate`` evaluates truthy (SQL WHERE)."""

    def __init__(self, child: Iterable[Row], predicate: ExpressionLike) -> None:
        self.child = child
        self.predicate = as_callable(predicate)

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            if self.predicate(row):
                yield row


class Project(Operator):
    """Compute output columns from input rows (SQL SELECT list)."""

    def __init__(self, child: Iterable[Row],
                 outputs: Mapping[str, ExpressionLike]) -> None:
        self.child = child
        self.outputs = {name: as_callable(expr) for name, expr in outputs.items()}

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            yield {name: expr(row) for name, expr in self.outputs.items()}


class NestedLoopJoin(Operator):
    """Join two inputs with an arbitrary predicate (inner join)."""

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 predicate: ExpressionLike) -> None:
        self.left = left
        self.right = right
        self.predicate = as_callable(predicate)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                combined = {**left_row, **right_row}
                if self.predicate(combined):
                    yield combined


class IndexNestedLoopJoin(Operator):
    """For each outer row, probe an index on the inner table.

    This is the engine's realization of the paper's E-operator join
    ``TVisited q JOIN TEdges out ON q.nid = out.fid``: the outer side is the
    (small) frontier, the inner side is the (large) edge table accessed
    through its ``fid`` index.
    """

    def __init__(self, outer: Iterable[Row], inner_table: Table,
                 outer_key: ExpressionLike, inner_column: str,
                 inner_alias: Optional[str] = None,
                 residual: Optional[ExpressionLike] = None) -> None:
        self.outer = outer
        self.inner_table = inner_table
        self.outer_key = as_callable(outer_key)
        self.inner_column = inner_column
        self.inner_alias = inner_alias
        self.residual = as_callable(residual) if residual is not None else None

    def __iter__(self) -> Iterator[Row]:
        for outer_row in self.outer:
            key = self.outer_key(outer_row)
            for inner_row in self.inner_table.lookup(self.inner_column, key):
                combined = {**outer_row, **_prefixed(inner_row, self.inner_alias)}
                if self.residual is None or self.residual(combined):
                    yield combined


class HashJoin(Operator):
    """Equi-join by building a hash table on the right input."""

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 left_key: ExpressionLike, right_key: ExpressionLike) -> None:
        self.left = left
        self.right = right
        self.left_key = as_callable(left_key)
        self.right_key = as_callable(right_key)

    def __iter__(self) -> Iterator[Row]:
        buckets: Dict[object, List[Row]] = {}
        for right_row in self.right:
            buckets.setdefault(self.right_key(right_row), []).append(right_row)
        for left_row in self.left:
            for right_row in buckets.get(self.left_key(left_row), ()):
                yield {**left_row, **right_row}


class Sort(Operator):
    """Sort rows by one or more ``(expression, ascending)`` keys."""

    def __init__(self, child: Iterable[Row],
                 keys: Sequence[Tuple[ExpressionLike, bool]]) -> None:
        self.child = child
        self.keys = [(as_callable(expr), ascending) for expr, ascending in keys]

    def __iter__(self) -> Iterator[Row]:
        rows = list(self.child)
        # Stable sort applied from the least-significant key backwards.
        for expr, ascending in reversed(self.keys):
            rows.sort(key=lambda row: expr(row), reverse=not ascending)
        return iter(rows)


class Limit(Operator):
    """Return at most ``count`` rows (SQL TOP / LIMIT)."""

    def __init__(self, child: Iterable[Row], count: int) -> None:
        if count < 0:
            raise QueryError("LIMIT count must be non-negative")
        self.child = child
        self.count = count

    def __iter__(self) -> Iterator[Row]:
        produced = 0
        for row in self.child:
            if produced >= self.count:
                return
            produced += 1
            yield row


_AGGREGATES: Dict[str, Callable[[List[object]], object]] = {
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "sum": lambda values: sum(values) if values else None,
    "count": len,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
}


class Aggregate(Operator):
    """Grouped aggregation (SQL GROUP BY).

    Args:
        child: input rows.
        group_by: grouping column names (empty for a single global group).
        aggregates: output name -> ``(function, expression)`` where function
            is one of ``min``, ``max``, ``sum``, ``count``, ``avg``.
    """

    def __init__(self, child: Iterable[Row], group_by: Sequence[str],
                 aggregates: Mapping[str, Tuple[str, ExpressionLike]]) -> None:
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = {}
        for name, (function, expr) in aggregates.items():
            if function not in _AGGREGATES:
                raise QueryError(f"unknown aggregate function {function!r}")
            self.aggregates[name] = (function, as_callable(expr))

    def __iter__(self) -> Iterator[Row]:
        groups: Dict[Tuple[object, ...], List[Row]] = {}
        for row in self.child:
            key = tuple(row.get(column) for column in self.group_by)
            groups.setdefault(key, []).append(row)
        if not groups and not self.group_by:
            groups[()] = []
        for key, rows in groups.items():
            output: Row = dict(zip(self.group_by, key))
            for name, (function, expr) in self.aggregates.items():
                values = [expr(row) for row in rows]
                values = [value for value in values if value is not None]
                output[name] = _AGGREGATES[function](values)
            yield output


def scalar(child: Iterable[Row], column: str) -> object:
    """Return ``column`` of the first row of ``child`` (or ``None`` if empty).

    Convenience for single-value statements such as
    ``SELECT min(d2s) FROM TVisited WHERE f = 0``.
    """
    for row in child:
        return row.get(column)
    return None
