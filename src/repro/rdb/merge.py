"""MERGE statement (SQL:2008).

``MERGE INTO target USING source ON (condition) WHEN MATCHED [AND extra]
THEN UPDATE ... WHEN NOT MATCHED THEN INSERT ...`` is the single statement
the paper uses for the M-operator: newly expanded nodes that are not yet in
``TVisited`` are inserted, and existing rows whose distance can be improved
are updated.  The alternative — an UPDATE followed by an INSERT with a
``NOT EXISTS`` subquery — is the "traditional SQL" variant of Figure 6(d),
available here as :func:`merge_with_update_insert`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.rdb.table import Table

Row = Dict[str, object]
MatchCondition = Callable[[Row, Row], bool]
UpdateAction = Callable[[Row, Row], Mapping[str, object]]
InsertAction = Callable[[Row], Mapping[str, object]]


@dataclass
class MergeResult:
    """Outcome of a merge: how many target rows were updated / inserted."""

    updated: int = 0
    inserted: int = 0

    @property
    def affected(self) -> int:
        """Total affected rows — the SQLCA count the paper's client reads."""
        return self.updated + self.inserted


def merge_into(target: Table, source: Iterable[Row], key_column: str,
               source_key: str,
               matched_condition: Optional[MatchCondition] = None,
               matched_update: Optional[UpdateAction] = None,
               not_matched_insert: Optional[InsertAction] = None) -> MergeResult:
    """Execute a MERGE of ``source`` rows into ``target``.

    Args:
        target: target table.
        source: source rows (any iterable of dicts).
        key_column: target column used in the ON condition.
        source_key: source column compared against ``key_column``.
        matched_condition: extra ``WHEN MATCHED AND ...`` predicate taking
            ``(target_row, source_row)``; default always true.
        matched_update: returns the column changes to apply to a matched
            target row, given ``(target_row, source_row)``.  ``None`` skips
            the update branch.
        not_matched_insert: returns the full row to insert for an unmatched
            source row.  ``None`` skips the insert branch.

    Returns:
        A :class:`MergeResult` with updated / inserted counts.
    """
    result = MergeResult()
    for source_row in source:
        key = source_row.get(source_key)
        matches = target.lookup_with_rids(key_column, key)
        if matches:
            if matched_update is None:
                continue
            for rid, target_row in matches:
                condition_holds = (matched_condition is None
                                   or matched_condition(target_row, source_row))
                if not condition_holds:
                    continue
                changes = matched_update(target_row, source_row)
                new_row = dict(target_row)
                new_row.update(changes)
                target.update_by_rid(rid, new_row, old_row=target_row)
                result.updated += 1
        else:
            if not_matched_insert is None:
                continue
            target.insert(dict(not_matched_insert(source_row)))
            result.inserted += 1
    return result


def merge_with_update_insert(target: Table, source: Iterable[Row], key_column: str,
                             source_key: str,
                             matched_condition: Optional[MatchCondition] = None,
                             matched_update: Optional[UpdateAction] = None,
                             not_matched_insert: Optional[InsertAction] = None
                             ) -> MergeResult:
    """The traditional two-statement alternative to MERGE.

    First pass: UPDATE every matched row (re-probing the target per source
    row).  Second pass: INSERT source rows for which NOT EXISTS a matching
    target row.  Functionally equivalent to :func:`merge_into` but performs
    two passes over the source and two rounds of target probes, which is the
    overhead the paper's TSQL measurements show.
    """
    result = MergeResult()
    materialized = list(source)
    # Statement 1: UPDATE ... WHERE EXISTS (matching source row).
    if matched_update is not None:
        for source_row in materialized:
            key = source_row.get(source_key)
            for rid, target_row in target.lookup_with_rids(key_column, key):
                condition_holds = (matched_condition is None
                                   or matched_condition(target_row, source_row))
                if not condition_holds:
                    continue
                changes = matched_update(target_row, source_row)
                new_row = dict(target_row)
                new_row.update(changes)
                target.update_by_rid(rid, new_row, old_row=target_row)
                result.updated += 1
    # Statement 2: INSERT ... WHERE NOT EXISTS (matching target row).
    if not_matched_insert is not None:
        for source_row in materialized:
            key = source_row.get(source_key)
            if not target.lookup_with_rids(key_column, key):
                target.insert(dict(not_matched_insert(source_row)))
                result.inserted += 1
    return result
