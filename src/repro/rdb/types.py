"""Column types supported by the relational engine.

The engine supports the three types the paper's tables need: 64-bit integers
for node identifiers and flags, doubles for edge weights / distances, and
text for labels (used by the graph-pattern-matching demo).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TypeMismatchError
from repro.storage.serialization import FLOAT, INTEGER, TEXT

__all__ = ["INTEGER", "FLOAT", "TEXT", "coerce_value", "python_type"]

_PYTHON_TYPES = {
    INTEGER: int,
    FLOAT: float,
    TEXT: str,
}


def python_type(column_type: str) -> type:
    """Return the Python type corresponding to a column type name."""
    try:
        return _PYTHON_TYPES[column_type]
    except KeyError as exc:
        raise TypeMismatchError(f"unknown column type {column_type!r}") from exc


def coerce_value(value: Optional[object], column_type: str,
                 nullable: bool = True) -> Optional[object]:
    """Coerce ``value`` to ``column_type`` or raise :class:`TypeMismatchError`.

    ``None`` passes through for nullable columns.  Integers are accepted for
    FLOAT columns, and booleans/floats with integral values for INTEGER
    columns, mirroring the implicit casts a SQL engine would perform.
    """
    if value is None:
        if nullable:
            return None
        raise TypeMismatchError("NULL value in a NOT NULL column")
    if column_type == INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatchError(f"{value!r} is not an INTEGER")
    if column_type == FLOAT:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise TypeMismatchError(f"{value!r} is not a FLOAT")
    if column_type == TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"{value!r} is not TEXT")
    raise TypeMismatchError(f"unknown column type {column_type!r}")
