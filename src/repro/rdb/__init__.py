"""Relational engine: schemas, tables, physical operators and SQL features.

This package is the "RDB" of the paper: graphs and intermediate search state
are stored in tables backed by the storage engine (``repro.storage``), and
the FEM operators are evaluated with the physical operators defined here —
scans, index lookups, joins, aggregation, the SQL:2003 *window function* and
the SQL:2008 *MERGE statement* the paper leans on.

The main entry point is :class:`~repro.rdb.engine.Database`.
"""

from repro.rdb.types import FLOAT, INTEGER, TEXT
from repro.rdb.schema import Column, TableSchema
from repro.rdb.expressions import BinaryOp, ColumnRef, Literal, col, lit
from repro.rdb.table import IndexInfo, Table
from repro.rdb.engine import Database
from repro.rdb.stats import DatabaseStats
from repro.rdb.merge import MergeResult, merge_into
from repro.rdb.window import window_row_number

__all__ = [
    "BinaryOp",
    "Column",
    "ColumnRef",
    "Database",
    "DatabaseStats",
    "FLOAT",
    "INTEGER",
    "IndexInfo",
    "Literal",
    "MergeResult",
    "TEXT",
    "Table",
    "TableSchema",
    "col",
    "lit",
    "merge_into",
    "window_row_number",
]
