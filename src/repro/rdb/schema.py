"""Table schemas: named, typed columns plus optional primary key."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.rdb.types import coerce_value
from repro.storage.serialization import SUPPORTED_TYPES


@dataclass(frozen=True)
class Column:
    """One column: a name, a type (INTEGER / FLOAT / TEXT) and nullability."""

    name: str
    type: str
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.type not in SUPPORTED_TYPES:
            raise SchemaError(f"unsupported column type {self.type!r}")


@dataclass
class TableSchema:
    """Schema of a table: ordered columns and an optional primary-key column."""

    name: str
    columns: List[Column]
    primary_key: Optional[str] = None
    _positions: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        self._positions = {column.name: index for index, column in enumerate(self.columns)}

    # -- lookups -------------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    @property
    def column_types(self) -> List[str]:
        """Column types in declaration order."""
        return [column.type for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Whether ``name`` is a column of this table."""
        return name in self._positions

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name``."""
        try:
            return self._positions[name]
        except KeyError as exc:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from exc

    def column(self, name: str) -> Column:
        """Return the :class:`Column` named ``name``."""
        return self.columns[self.position(name)]

    # -- row conversions ------------------------------------------------------------

    def row_to_tuple(self, row: Dict[str, object]) -> Tuple[object, ...]:
        """Convert a column-name -> value mapping into a storage tuple.

        Missing columns become NULL; unknown keys raise
        :class:`~repro.errors.SchemaError`; values are type-coerced.
        """
        unknown = set(row) - set(self._positions)
        if unknown:
            raise SchemaError(
                f"row has columns {sorted(unknown)} not in table {self.name!r}"
            )
        values: List[object] = []
        for column in self.columns:
            value = coerce_value(row.get(column.name), column.type, column.nullable)
            values.append(value)
        return tuple(values)

    def tuple_to_row(self, values: Sequence[object]) -> Dict[str, object]:
        """Convert a storage tuple back into a column-name -> value dict."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"tuple has {len(values)} values, table {self.name!r} has "
                f"{len(self.columns)} columns"
            )
        return {column.name: value for column, value in zip(self.columns, values)}
