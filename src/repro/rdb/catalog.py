"""Catalog: the registry of tables known to a database."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CatalogError
from repro.rdb.table import Table


class Catalog:
    """Name -> :class:`Table` registry with create/drop semantics."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table) -> None:
        """Register ``table``; raises :class:`CatalogError` if the name exists."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Return the table called ``name``.

        Raises:
            CatalogError: for unknown names.
        """
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def drop(self, name: str) -> None:
        """Forget the table called ``name``.

        Raises:
            CatalogError: for unknown names.
        """
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def has(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return name in self._tables

    def names(self) -> List[str]:
        """Sorted table names."""
        return sorted(self._tables)

    def __len__(self) -> int:
        return len(self._tables)
