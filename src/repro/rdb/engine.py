"""The ``Database`` facade: storage + catalog + statistics in one object.

A :class:`Database` owns a disk manager, a buffer pool, a catalog of tables
and a :class:`~repro.rdb.stats.DatabaseStats` counter block.  It is the
"RDB" that the graph stores in ``repro.core.store`` talk to, and the object
whose buffer capacity the buffer-size experiments vary.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional, Sequence

from repro.rdb.catalog import Catalog
from repro.rdb.schema import Column, TableSchema
from repro.rdb.stats import DatabaseStats
from repro.rdb.table import IndexInfo, Table
from repro.storage.buffer_pool import DEFAULT_CAPACITY, BufferPool, BufferPoolStats
from repro.storage.disk import PAGE_SIZE, open_disk
from repro.storage.heap_file import HeapFile


class Database:
    """A small disk-backed relational database.

    Args:
        path: file backing the database pages.  ``None`` keeps pages in
            memory (still counted as logical I/O); ``":temp:"`` creates a
            temporary file that is removed on :meth:`close`.
        buffer_capacity: number of pages the buffer pool may cache — the
            independent variable of the paper's Figures 8(b) and 9(g).
        page_size: page size in bytes.
    """

    def __init__(self, path: Optional[str] = None,
                 buffer_capacity: int = DEFAULT_CAPACITY,
                 page_size: int = PAGE_SIZE) -> None:
        self._temp_path: Optional[str] = None
        if path == ":temp:":
            handle, path = tempfile.mkstemp(prefix="repro_db_", suffix=".pages")
            os.close(handle)
            self._temp_path = path
        self.path = path
        self.disk = open_disk(path, page_size)
        self.pool = BufferPool(self.disk, buffer_capacity)
        self.catalog = Catalog()
        self.stats = DatabaseStats()
        self._closed = False

    # -- DDL ------------------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Column],
                     primary_key: Optional[str] = None) -> Table:
        """Create a table and register it in the catalog."""
        schema = TableSchema(name=name, columns=list(columns), primary_key=primary_key)
        heap = HeapFile(self.pool, name=name)
        table = Table(schema, heap, stats=self.stats)
        self.catalog.register(table)
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table (its pages are not reclaimed; callers recreate the
        database for a truly fresh start, which is what the benchmarks do)."""
        self.catalog.drop(name)

    def create_index(self, table_name: str, column: str, kind: str = "btree",
                     unique: bool = False, clustered: bool = False,
                     name: Optional[str] = None) -> IndexInfo:
        """Create an index on ``table_name(column)``."""
        return self.table(table_name).create_index(
            column, kind=kind, unique=unique, clustered=clustered, name=name
        )

    # -- access -----------------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        return self.catalog.get(name)

    def has_table(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return self.catalog.has(name)

    def table_names(self) -> List[str]:
        """Sorted names of all tables."""
        return self.catalog.names()

    # -- statistics ----------------------------------------------------------------------

    @property
    def buffer_stats(self) -> BufferPoolStats:
        """Buffer-pool counters (hits, misses, evictions)."""
        return self.pool.stats

    @property
    def io_reads(self) -> int:
        """Physical page reads performed by the disk manager."""
        return self.disk.reads

    @property
    def io_writes(self) -> int:
        """Physical page writes performed by the disk manager."""
        return self.disk.writes

    def reset_stats(self) -> None:
        """Reset statement, buffer and disk counters (not table contents)."""
        self.stats.reset()
        self.pool.reset_stats()

    def set_buffer_capacity(self, capacity: int) -> None:
        """Resize the buffer pool (evicting pages when shrinking)."""
        self.pool.set_capacity(capacity)

    # -- lifecycle ------------------------------------------------------------------------

    def close(self) -> None:
        """Flush dirty pages and close the disk manager."""
        if self._closed:
            return
        self.pool.close()
        if self._temp_path is not None and os.path.exists(self._temp_path):
            os.remove(self._temp_path)
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = self.path or "memory"
        return (f"Database(path={backing!r}, tables={len(self.catalog)}, "
                f"buffer={self.pool.capacity} pages)")
