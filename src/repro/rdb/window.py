"""Window functions (SQL:2003).

The paper's E-operator uses ``row_number() over (partition by tid order by
cost)`` to keep, for every expanded node, only the cheapest incoming path —
*and* to carry the non-aggregated predecessor column along, which a plain
GROUP BY cannot do without an extra join (that extra join is exactly the
"traditional SQL" variant measured in Figure 6(d)).

:class:`Window` is the generic operator; :func:`window_row_number` is the
convenience wrapper used by the stores.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.rdb.expressions import ExpressionLike, as_callable
from repro.rdb.operators import Operator

Row = Dict[str, object]

_SUPPORTED_FUNCTIONS = ("row_number", "rank", "min", "max", "sum", "count", "avg")


class Window(Operator):
    """Evaluate a window function over partitions of the input.

    Args:
        child: input rows.
        function: one of ``row_number``, ``rank``, ``min``, ``max``, ``sum``,
            ``count``, ``avg``.
        partition_by: column names defining partitions.
        order_by: ``(expression, ascending)`` pairs ordering rows inside a
            partition (required for ``row_number`` / ``rank``).
        argument: value expression for the aggregate window functions.
        output: name of the produced column.
    """

    def __init__(self, child: Iterable[Row], function: str,
                 partition_by: Sequence[str],
                 order_by: Optional[Sequence[Tuple[ExpressionLike, bool]]] = None,
                 argument: Optional[ExpressionLike] = None,
                 output: str = "window_value") -> None:
        if function not in _SUPPORTED_FUNCTIONS:
            raise QueryError(f"unsupported window function {function!r}")
        if function in ("row_number", "rank") and not order_by:
            raise QueryError(f"{function} requires an ORDER BY clause")
        if function in ("min", "max", "sum", "avg") and argument is None:
            raise QueryError(f"{function} requires an argument expression")
        self.child = child
        self.function = function
        self.partition_by = list(partition_by)
        self.order_by = [(as_callable(expr), ascending)
                         for expr, ascending in (order_by or [])]
        self.argument = as_callable(argument) if argument is not None else None
        self.output = output

    def __iter__(self) -> Iterator[Row]:
        partitions: Dict[Tuple[object, ...], List[Row]] = {}
        for row in self.child:
            key = tuple(row.get(column) for column in self.partition_by)
            partitions.setdefault(key, []).append(dict(row))
        for rows in partitions.values():
            ordered = self._ordered(rows)
            yield from self._apply(ordered)

    def _ordered(self, rows: List[Row]) -> List[Row]:
        ordered = list(rows)
        for expr, ascending in reversed(self.order_by):
            ordered.sort(key=lambda row: expr(row), reverse=not ascending)
        return ordered

    def _apply(self, ordered: List[Row]) -> Iterator[Row]:
        if self.function == "row_number":
            for position, row in enumerate(ordered, start=1):
                row[self.output] = position
                yield row
            return
        if self.function == "rank":
            previous_key: Optional[Tuple[object, ...]] = None
            rank = 0
            for position, row in enumerate(ordered, start=1):
                key = tuple(expr(row) for expr, _ in self.order_by)
                if key != previous_key:
                    rank = position
                    previous_key = key
                row[self.output] = rank
                yield row
            return
        values = []
        if self.argument is not None:
            values = [self.argument(row) for row in ordered]
            values = [value for value in values if value is not None]
        if self.function == "count":
            result: object = len(ordered)
        elif self.function == "sum":
            result = sum(values) if values else None
        elif self.function == "avg":
            result = (sum(values) / len(values)) if values else None
        elif self.function == "min":
            result = min(values) if values else None
        else:  # max
            result = max(values) if values else None
        for row in ordered:
            row[self.output] = result
            yield row


def window_row_number(rows: Iterable[Row], partition_by: Sequence[str],
                      order_by: Sequence[Tuple[ExpressionLike, bool]],
                      output: str = "rownum") -> List[Row]:
    """Assign ``row_number() over (partition by ... order by ...)``.

    Returns the materialized rows with the extra ``output`` column — the
    exact shape used in Listing 2(3) / Listing 4(2) of the paper, where the
    caller then keeps only ``rownum == 1``.
    """
    return list(Window(rows, "row_number", partition_by, order_by, output=output))
