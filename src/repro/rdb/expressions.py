"""Scalar expressions over row dictionaries.

Physical operators accept either a plain callable ``row -> value`` or one of
these expression objects.  The expression classes exist so predicates and
projections can be built declaratively (and inspected in tests), in the
spirit of a SQL engine's expression tree::

    predicate = (col("d2s") + col("cost")) < lit(10.0)
    rows = Filter(scan, predicate)
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Mapping, Union

from repro.errors import QueryError

Row = Mapping[str, object]
RowFunction = Callable[[Row], object]
ExpressionLike = Union["Expression", RowFunction]


class Expression:
    """Base class for scalar expressions; subclasses implement ``evaluate``."""

    def evaluate(self, row: Row) -> object:
        """Evaluate the expression against ``row``."""
        raise NotImplementedError

    def __call__(self, row: Row) -> object:
        return self.evaluate(row)

    # Arithmetic -------------------------------------------------------------------

    def __add__(self, other: object) -> "BinaryOp":
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other: object) -> "BinaryOp":
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other: object) -> "BinaryOp":
        return BinaryOp("*", self, _wrap(other))

    # Comparisons ------------------------------------------------------------------

    def __lt__(self, other: object) -> "BinaryOp":
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other: object) -> "BinaryOp":
        return BinaryOp("<=", self, _wrap(other))

    def __gt__(self, other: object) -> "BinaryOp":
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other: object) -> "BinaryOp":
        return BinaryOp(">=", self, _wrap(other))

    def eq(self, other: object) -> "BinaryOp":
        """Equality comparison (named method because ``__eq__`` must stay
        usable for hashing/identity in collections)."""
        return BinaryOp("=", self, _wrap(other))

    def ne(self, other: object) -> "BinaryOp":
        """Inequality comparison."""
        return BinaryOp("!=", self, _wrap(other))

    # Boolean connectives -----------------------------------------------------------

    def and_(self, other: object) -> "BinaryOp":
        """Logical AND."""
        return BinaryOp("and", self, _wrap(other))

    def or_(self, other: object) -> "BinaryOp":
        """Logical OR."""
        return BinaryOp("or", self, _wrap(other))


class ColumnRef(Expression):
    """Reference to a column of the current row."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: Row) -> object:
        try:
            return row[self.name]
        except KeyError as exc:
            raise QueryError(f"row has no column {self.name!r}") from exc

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, row: Row) -> object:
        return self.value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_OPERATORS: Dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "!=": operator.ne,
    "and": lambda left, right: bool(left) and bool(right),
    "or": lambda left, right: bool(left) or bool(right),
}


class BinaryOp(Expression):
    """A binary operation between two expressions.

    NULL semantics follow SQL loosely: if either operand of an arithmetic or
    comparison operator is NULL (``None``), the result is ``None`` (treated
    as false in predicates).
    """

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _OPERATORS:
            raise QueryError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> object:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.op not in ("and", "or") and (left is None or right is None):
            return None
        return _OPERATORS[self.op](left, right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand constructor for :class:`Literal`."""
    return Literal(value)


def _wrap(value: object) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


def as_callable(expression: ExpressionLike) -> RowFunction:
    """Normalize an expression or callable into a ``row -> value`` callable."""
    if isinstance(expression, Expression):
        return expression.evaluate
    if callable(expression):
        return expression
    raise QueryError(f"{expression!r} is neither an Expression nor callable")
