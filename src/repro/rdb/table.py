"""Tables: schema + heap file + secondary indexes.

A :class:`Table` stores rows (dictionaries keyed by column name) in a
:class:`~repro.storage.heap_file.HeapFile` and keeps any number of indexes
consistent with the heap.  Indexes can be *clustered* in the sense the paper
uses for ``TEdges(fid)`` / ``TOutSegs(fid)``: the heap is bulk-loaded in key
order so all rows with the same key sit on neighbouring pages, which is what
makes the E-operator's per-node edge fetch cheap in I/O terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import CatalogError, ConstraintViolationError, QueryError
from repro.index.btree import BPlusTree
from repro.index.hash_index import HashIndex
from repro.rdb.schema import TableSchema
from repro.rdb.stats import DatabaseStats
from repro.storage.heap_file import HeapFile
from repro.storage.page import RecordId
from repro.storage.serialization import RowSerializer

Row = Dict[str, object]
Predicate = Callable[[Row], object]
IndexStructure = Union[BPlusTree, HashIndex]


@dataclass
class IndexInfo:
    """Metadata and structure of one index."""

    name: str
    column: str
    structure: IndexStructure
    unique: bool = False
    clustered: bool = False

    @property
    def kind(self) -> str:
        """``"btree"`` or ``"hash"``."""
        return "btree" if isinstance(self.structure, BPlusTree) else "hash"


class Table:
    """A heap-backed table with secondary indexes."""

    def __init__(self, schema: TableSchema, heap: HeapFile,
                 stats: Optional[DatabaseStats] = None) -> None:
        self.schema = schema
        self.heap = heap
        self.stats = stats or DatabaseStats()
        self.serializer = RowSerializer(schema.column_types)
        self.indexes: Dict[str, IndexInfo] = {}

    @property
    def name(self) -> str:
        """Table name."""
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return len(self.heap)

    # -- index management ---------------------------------------------------------

    def create_index(self, column: str, kind: str = "btree", unique: bool = False,
                     clustered: bool = False, name: Optional[str] = None) -> IndexInfo:
        """Create an index on ``column`` and populate it from existing rows.

        Args:
            column: indexed column name.
            kind: ``"btree"`` (ordered, range scans) or ``"hash"`` (equality).
            unique: reject duplicate keys.
            clustered: marks the index as the table's clustering key; callers
                should bulk-load rows in key order (see :meth:`bulk_load`).
            name: index name; defaults to ``ix_<table>_<column>``.

        Raises:
            CatalogError: if an index with the same name exists.
        """
        self.schema.position(column)  # validates the column exists
        index_name = name or f"ix_{self.schema.name}_{column}"
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        structure: IndexStructure
        if kind == "btree":
            structure = BPlusTree(unique=unique)
        elif kind == "hash":
            structure = HashIndex(unique=unique)
        else:
            raise QueryError(f"unknown index kind {kind!r}")
        info = IndexInfo(name=index_name, column=column, structure=structure,
                         unique=unique, clustered=clustered)
        self.indexes[index_name] = info
        for rid, row in self._scan_with_rids():
            self._index_insert(info, row, rid)
        return info

    def drop_index(self, name: str) -> None:
        """Remove the index ``name``.

        Raises:
            CatalogError: if the index does not exist.
        """
        if name not in self.indexes:
            raise CatalogError(f"index {name!r} does not exist")
        del self.indexes[name]

    def index_on(self, column: str) -> Optional[IndexInfo]:
        """Return an index whose key is ``column`` (clustered ones first)."""
        candidates = [info for info in self.indexes.values() if info.column == column]
        if not candidates:
            return None
        candidates.sort(key=lambda info: (not info.clustered, info.name))
        return candidates[0]

    def _index_insert(self, info: IndexInfo, row: Row, rid: RecordId) -> None:
        key = row.get(info.column)
        if info.unique and info.structure.contains(key):
            raise ConstraintViolationError(
                f"duplicate key {key!r} for unique index {info.name!r}"
            )
        info.structure.insert(key, rid)

    def _index_delete(self, row: Row, rid: RecordId) -> None:
        for info in self.indexes.values():
            info.structure.delete(row.get(info.column), rid)

    # -- mutation -------------------------------------------------------------------

    def insert(self, row: Row) -> RecordId:
        """Insert one row (column-name -> value mapping) and return its RID."""
        values = self.schema.row_to_tuple(row)
        normalized = self.schema.tuple_to_row(values)
        if self.schema.primary_key is not None:
            self._check_primary_key(normalized)
        record = self.serializer.encode(values)
        rid = self.heap.insert(record)
        for info in self.indexes.values():
            try:
                self._index_insert(info, normalized, rid)
            except ConstraintViolationError:
                self.heap.delete(rid)
                raise
        self.stats.add_rows_written()
        return rid

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def bulk_load(self, rows: Iterable[Row], order_by: Optional[str] = None) -> int:
        """Insert many rows, optionally sorted by ``order_by`` first.

        Sorting by the clustering column before insertion is what produces a
        *clustered* physical layout: equal keys land on adjacent pages.
        """
        materialized = list(rows)
        if order_by is not None:
            position = self.schema.position(order_by)  # validate
            del position
            materialized.sort(key=lambda row: (row.get(order_by) is None,
                                               row.get(order_by)))
        return self.insert_many(materialized)

    def _check_primary_key(self, row: Row) -> None:
        key_column = self.schema.primary_key
        info = self.index_on(key_column) if key_column else None
        if info is not None and info.unique:
            return  # the unique index enforces it during _index_insert
        key_value = row.get(key_column)
        for existing in self.scan():
            if existing.get(key_column) == key_value:
                raise ConstraintViolationError(
                    f"duplicate primary key {key_value!r} in table {self.name!r}"
                )

    def delete_where(self, predicate: Predicate) -> int:
        """Delete rows satisfying ``predicate``; returns the number deleted."""
        victims: List[Tuple[RecordId, Row]] = [
            (rid, row) for rid, row in self._scan_with_rids() if predicate(row)
        ]
        for rid, row in victims:
            self.heap.delete(rid)
            self._index_delete(row, rid)
        self.stats.add_rows_deleted(len(victims))
        return len(victims)

    def update_where(self, predicate: Predicate,
                     updater: Callable[[Row], Row]) -> int:
        """Update rows satisfying ``predicate`` with ``updater(row) -> new row``.

        Returns the number of rows updated.  ``updater`` may return a partial
        mapping; unspecified columns keep their values.
        """
        targets: List[Tuple[RecordId, Row]] = [
            (rid, row) for rid, row in self._scan_with_rids() if predicate(row)
        ]
        for rid, row in targets:
            changes = updater(dict(row))
            new_row = dict(row)
            new_row.update(changes)
            self.update_by_rid(rid, new_row, old_row=row)
        return len(targets)

    def update_by_rid(self, rid: RecordId, new_row: Row,
                      old_row: Optional[Row] = None) -> RecordId:
        """Replace the row at ``rid`` with ``new_row``; returns the new RID."""
        if old_row is None:
            old_row = self.read(rid)
        values = self.schema.row_to_tuple(new_row)
        normalized = self.schema.tuple_to_row(values)
        record = self.serializer.encode(values)
        new_rid = self.heap.update(rid, record)
        if new_rid != rid or any(
            old_row.get(info.column) != normalized.get(info.column)
            for info in self.indexes.values()
        ):
            self._index_delete(old_row, rid)
            for info in self.indexes.values():
                info.structure.insert(normalized.get(info.column), new_rid)
        self.stats.add_rows_written()
        return new_rid

    def truncate(self) -> None:
        """Delete every row and clear all indexes (pages are reused)."""
        self.heap.truncate()
        for info in self.indexes.values():
            info.structure.clear()

    # -- access ----------------------------------------------------------------------

    def read(self, rid: RecordId) -> Row:
        """Return the row stored at ``rid``."""
        values = self.serializer.decode(self.heap.read(rid))
        self.stats.add_rows_read()
        return self.schema.tuple_to_row(values)

    def scan(self) -> Iterator[Row]:
        """Iterate over all rows (heap order)."""
        for _rid, row in self._scan_with_rids():
            yield row

    def scan_with_rids(self) -> Iterator[Tuple[RecordId, Row]]:
        """Iterate over ``(rid, row)`` pairs (heap order)."""
        return self._scan_with_rids()

    def _scan_with_rids(self) -> Iterator[Tuple[RecordId, Row]]:
        for rid, record in self.heap.scan():
            values = self.serializer.decode(record)
            self.stats.add_rows_read()
            yield rid, self.schema.tuple_to_row(values)

    def lookup(self, column: str, key: object) -> List[Row]:
        """Return rows with ``row[column] == key`` using an index when available."""
        return [row for _rid, row in self.lookup_with_rids(column, key)]

    def lookup_with_rids(self, column: str, key: object) -> List[Tuple[RecordId, Row]]:
        """Index-assisted equality lookup returning ``(rid, row)`` pairs.

        Falls back to a full scan when no index covers ``column`` — that is
        exactly the "NoIndex" configuration of Figure 8(c).
        """
        info = self.index_on(column)
        if info is None:
            return [(rid, row) for rid, row in self._scan_with_rids()
                    if row.get(column) == key]
        results: List[Tuple[RecordId, Row]] = []
        for rid in info.structure.search(key):
            results.append((rid, self.read(rid)))
        return results

    def range_lookup(self, column: str, low: Optional[object],
                     high: Optional[object]) -> List[Row]:
        """Return rows with ``low <= row[column] <= high`` (ordered by key when a
        B+ tree index exists, heap order otherwise)."""
        info = self.index_on(column)
        if info is not None and isinstance(info.structure, BPlusTree):
            return [self.read(rid) for _key, rid in
                    info.structure.range_scan(low, high)]
        rows = []
        for row in self.scan():
            value = row.get(column)
            if value is None:
                continue
            if low is not None and value < low:
                continue
            if high is not None and value > high:
                continue
            rows.append(row)
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.row_count}, indexes={list(self.indexes)})"
