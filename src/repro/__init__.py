"""repro — Relational shortest path discovery over large graphs.

A reproduction of *Gao, Jin, Zhou, Yu, Jiang, Wang: "Relational Approach for
Shortest Path Discovery over Large Graphs", PVLDB 5(4), 2011*.

The library stores graphs in relational tables and answers shortest-path
queries by issuing iterative FEM (Frontier / Expand / Merge) statements
against a relational engine — either the built-in page/buffer-pool engine
(``repro.rdb``) or SQLite.  It implements the paper's methods DJ, BDJ, BSDJ,
BBFS and BSEG, the SegTable index and its FEM-based construction, and the
in-memory competitors MDJ and MBDJ.

Quickstart::

    from repro import RelationalPathFinder, power_law_graph

    graph = power_law_graph(2_000, edges_per_node=3, seed=7)
    finder = RelationalPathFinder(graph)
    finder.build_segtable(lthd=5)
    result = finder.shortest_path(0, 1234, method="BSEG")
    print(result.distance, result.path)
    finder.close()
"""

from repro.core.api import (
    METHODS,
    RelationalPathFinder,
    shortest_path,
    shortest_path_in_memory,
)
from repro.core.path import PathResult
from repro.core.segtable import SegTableConfig, build_segtable
from repro.core.sqlstyle import NSQL, TSQL
from repro.core.stats import QueryStats, SegTableBuildStats
from repro.core.store.base import IndexMode
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore
from repro.graph.datasets import (
    dblp_standin,
    googleweb_standin,
    list_datasets,
    livejournal_standin,
    load_dataset,
)
from repro.graph.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_graph,
    star_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.model import Edge, Graph
from repro.memory.bidirectional import bidirectional_dijkstra
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.rdb.engine import Database

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Edge",
    "Graph",
    "IndexMode",
    "METHODS",
    "MiniDBGraphStore",
    "NSQL",
    "PathResult",
    "QueryStats",
    "RelationalPathFinder",
    "SQLiteGraphStore",
    "SegTableBuildStats",
    "SegTableConfig",
    "TSQL",
    "__version__",
    "bidirectional_dijkstra",
    "build_segtable",
    "complete_graph",
    "dblp_standin",
    "dijkstra_shortest_path",
    "googleweb_standin",
    "grid_graph",
    "list_datasets",
    "livejournal_standin",
    "load_dataset",
    "path_graph",
    "power_law_graph",
    "random_graph",
    "read_edge_list",
    "shortest_path",
    "shortest_path_in_memory",
    "star_graph",
    "write_edge_list",
]
