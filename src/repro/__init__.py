"""repro — Relational shortest path discovery over large graphs.

A reproduction of *Gao, Jin, Zhou, Yu, Jiang, Wang: "Relational Approach for
Shortest Path Discovery over Large Graphs", PVLDB 5(4), 2011*.

The library stores graphs in relational tables and answers shortest-path
queries by issuing iterative FEM (Frontier / Expand / Merge) statements
against a relational engine.  It implements the paper's methods DJ, BDJ,
BSDJ, BBFS and BSEG, the SegTable index and its FEM-based construction, and
the in-memory competitors MDJ and MBDJ.

The public API is the session-based service layer in :mod:`repro.service`:
a :class:`PathService` hosts any number of named graphs over pluggable
store backends (``minidb`` — the built-in page/buffer-pool engine — or
``sqlite``; more via :func:`register_backend`), plans ``method="auto"``
queries from graph statistics, memoizes SegTable builds, and batches
queries behind a shared LRU result cache.

Quickstart::

    from repro import PathService, power_law_graph

    graph = power_law_graph(2_000, edges_per_node=3, seed=7)
    with PathService() as service:
        service.add_graph("social", graph)
        service.build_segtable("social", lthd=5)
        print(service.explain(0, 1234, graph="social").describe())
        result = service.shortest_path(0, 1234, graph="social")
        print(result.distance, result.path)
        batch = service.shortest_path_many([(0, 1234), (3, 99)],
                                           graph="social")
        print(batch.distances(), batch.stats.hit_rate)

Migration note: the former entry points ``RelationalPathFinder`` and the
one-shot ``shortest_path`` remain available as deprecated shims with
identical results — ``RelationalPathFinder(graph)`` is now spelled
``service.add_graph(...)`` plus ``service.shortest_path(...)``.
"""

from repro.catalog import Catalog, CatalogEntry
from repro.core.api import (
    METHODS,
    RelationalPathFinder,
    shortest_path,
    shortest_path_in_memory,
)
from repro.core.path import PathResult
from repro.core.segtable import SegTableConfig, build_segtable
from repro.core.sqlstyle import NSQL, TSQL
from repro.core.stats import BatchStats, QueryStats, SegTableBuildStats
from repro.core.store.base import IndexMode
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore
from repro.graph.datasets import (
    dblp_standin,
    googleweb_standin,
    list_datasets,
    livejournal_standin,
    load_dataset,
)
from repro.graph.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_graph,
    star_graph,
)
from repro.graph.fingerprint import fingerprint_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.model import Edge, Graph
from repro.memory.bidirectional import bidirectional_dijkstra
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.rdb.engine import Database
from repro.service import (
    BatchResult,
    PathService,
    QueryPlan,
    QuerySpec,
    Session,
    available_backends,
    register_backend,
    unregister_backend,
)

__version__ = "1.2.0"

__all__ = [
    "BatchResult",
    "BatchStats",
    "Catalog",
    "CatalogEntry",
    "Database",
    "Edge",
    "Graph",
    "IndexMode",
    "METHODS",
    "MiniDBGraphStore",
    "NSQL",
    "PathResult",
    "PathService",
    "QueryPlan",
    "QuerySpec",
    "QueryStats",
    "RelationalPathFinder",
    "SQLiteGraphStore",
    "SegTableBuildStats",
    "SegTableConfig",
    "Session",
    "TSQL",
    "__version__",
    "available_backends",
    "bidirectional_dijkstra",
    "build_segtable",
    "complete_graph",
    "dblp_standin",
    "dijkstra_shortest_path",
    "fingerprint_graph",
    "googleweb_standin",
    "grid_graph",
    "list_datasets",
    "livejournal_standin",
    "load_dataset",
    "path_graph",
    "power_law_graph",
    "random_graph",
    "read_edge_list",
    "register_backend",
    "shortest_path",
    "shortest_path_in_memory",
    "star_graph",
    "unregister_backend",
    "write_edge_list",
]
